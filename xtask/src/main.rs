//! Repository automation. `cargo xtask lint` enforces source invariants
//! that `rustc`/`clippy` cannot express (see `docs/LINTS.md`):
//!
//! 1. **No panics on engine hot paths** — `unwrap`/`expect`/`panic!` and
//!    friends are denied in `crates/exec` and `crates/storage` non-test
//!    code; deliberate sites carry a `// PANIC-OK: <reason>` waiver.
//! 2. **One env-var choke point** — `std::env::var` reads live only in
//!    `crates/types/src/knobs.rs` (and the vendored `crates/compat` shims);
//!    every `SNOWPRUNE_*` name in source must be registered there, and
//!    every registered knob must be documented in the README knob table.
//! 3. **No raw `std::sync` locks** — blocking primitives outside
//!    `crates/compat` must come from `parking_lot`; deliberate uses of
//!    poisoning semantics carry a `// STD-SYNC-OK: <reason>` waiver.
//! 4. **Crate attributes** — every crate forbids `unsafe_code`, and the
//!    public-API crates warn on `missing_docs`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    lint_no_panic(&root, &mut violations);
    lint_env_choke_point(&root, &mut violations);
    lint_knob_registry(&root, &mut violations);
    lint_std_sync(&root, &mut violations);
    lint_crate_attributes(&root, &mut violations);
    if violations.is_empty() {
        println!("xtask lint: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `cargo xtask` runs with the manifest dir of the
/// xtask package as `CARGO_MANIFEST_DIR`, one level below the root.
fn repo_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir)
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
        Err(_) => PathBuf::from("."),
    }
}

/// Every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target" || n == ".git") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Per-line classification of a source file: which lines belong to
/// `#[cfg(test)]`-gated modules (where every lint below is waived).
///
/// Text-based, not a full parser: a `#[cfg(test)]` attribute arms the
/// *next* block, and the block extends until its braces balance. This is
/// exact for the `#[cfg(test)] mod tests { ... }` idiom used throughout
/// the workspace.
fn test_region_mask(src: &str) -> Vec<bool> {
    let mut mask = Vec::with_capacity(src.lines().count());
    let mut armed = false;
    let mut depth: i64 = 0;
    let mut in_test = false;
    for line in src.lines() {
        let code = strip_comment(line);
        if !in_test && code.contains("#[cfg(test)]") {
            armed = true;
            mask.push(true);
            continue;
        }
        if armed {
            // Attribute lines (e.g. `#[allow(...)]`) between the cfg and
            // the item keep the arming.
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;
            if opens > 0 {
                in_test = true;
                armed = false;
                depth = opens - closes;
                mask.push(true);
                if depth <= 0 {
                    in_test = false;
                }
                continue;
            }
            mask.push(true);
            continue;
        }
        if in_test {
            depth += code.matches('{').count() as i64;
            depth -= code.matches('}').count() as i64;
            mask.push(true);
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        mask.push(false);
    }
    mask
}

/// Everything before a `//` comment (string-literal `//` is rare enough in
/// this codebase that the approximation has no false positives today; a
/// panic token inside a string would be a doc/message anyway).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does `lines[i]` carry a waiver — inline, or anywhere in the contiguous
/// comment block immediately above it?
fn waived(lines: &[&str], i: usize, marker: &str) -> bool {
    if lines[i].contains(marker) {
        return true;
    }
    let mut j = i;
    while j > 0 && lines[j - 1].trim_start().starts_with("//") {
        j -= 1;
        if lines[j].contains(marker) {
            return true;
        }
    }
    false
}

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Lint 1: no panic paths in exec/storage non-test code.
fn lint_no_panic(root: &Path, violations: &mut Vec<String>) {
    for dir in ["crates/exec/src", "crates/storage/src"] {
        for file in rust_files(&root.join(dir)) {
            let src = read(&file);
            let mask = test_region_mask(&src);
            let lines: Vec<&str> = src.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                if mask.get(i).copied().unwrap_or(false) {
                    continue;
                }
                let code = strip_comment(line);
                let hit = PANIC_TOKENS.iter().find(|t| code.contains(**t));
                if let Some(tok) = hit {
                    if !waived(&lines, i, "PANIC-OK:") {
                        violations.push(format!(
                            "{}:{}: `{}` on an engine hot path (add `// PANIC-OK: <reason>` \
                             if deliberate)",
                            rel(root, &file),
                            i + 1,
                            tok.trim_start_matches('.')
                        ));
                    }
                }
            }
        }
    }
}

/// Lint 2a: `std::env::var` reads only in the knobs registry and the
/// vendored compat shims.
fn lint_env_choke_point(root: &Path, violations: &mut Vec<String>) {
    let allowed = |p: &str| {
        p == "crates/types/src/knobs.rs"
            || p.starts_with("crates/compat/")
            || p.starts_with("xtask/")
    };
    for file in workspace_sources(root) {
        let p = rel(root, &file);
        if allowed(&p) {
            continue;
        }
        let src = read(&file);
        for (i, line) in src.lines().enumerate() {
            let code = strip_comment(line);
            // `set_var`/`remove_var` (test env fixtures) are fine; only
            // *reads* must go through the registry.
            if code.contains("env::var(") || code.contains("env::var_os(") {
                violations.push(format!(
                    "{}:{}: raw environment read; route it through \
                     snowprune_types::knobs",
                    p,
                    i + 1
                ));
            }
        }
    }
}

/// Lint 2b: every `SNOWPRUNE_*` string literal in source is a registered
/// knob, and every registered knob appears in the README knob table.
fn lint_knob_registry(root: &Path, violations: &mut Vec<String>) {
    let registry_src = read(&root.join("crates/types/src/knobs.rs"));
    let registered: Vec<String> = registry_src
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("name: \"")?;
            let end = rest.find('"')?;
            Some(rest[..end].to_string())
        })
        .collect();
    if registered.is_empty() {
        violations.push("crates/types/src/knobs.rs: could not parse any REGISTRY entries".into());
        return;
    }
    for file in workspace_sources(root) {
        let p = rel(root, &file);
        if p.starts_with("xtask/") {
            continue;
        }
        let src = read(&file);
        // Test modules may name deliberately-unregistered variables (the
        // registry's own negative tests); only shipping code is linted.
        let mask = test_region_mask(&src);
        for (i, line) in src.lines().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            for name in snowprune_vars(line) {
                if !registered.iter().any(|r| r == &name) {
                    violations.push(format!(
                        "{}:{}: `{}` is not registered in \
                         snowprune_types::knobs::REGISTRY",
                        p,
                        i + 1,
                        name
                    ));
                }
            }
        }
    }
    let readme = read(&root.join("README.md"));
    for name in &registered {
        if !readme.contains(name.as_str()) {
            violations.push(format!(
                "README.md: registered knob `{name}` is missing from the knob table"
            ));
        }
    }
}

/// `SNOWPRUNE_[A-Z0-9_]+` occurrences inside string literals on a line.
fn snowprune_vars(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(j) = line[i..].find("SNOWPRUNE_") {
        let start = i + j;
        // Only string literals count (a quote immediately before).
        let quoted = start > 0 && bytes[start - 1] == b'"';
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end] == b'_'
                || bytes[end].is_ascii_digit())
        {
            end += 1;
        }
        if quoted && end > start + "SNOWPRUNE_".len() {
            out.push(line[start..end].to_string());
        }
        i = end.max(start + 1);
    }
    out
}

const SYNC_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier"];

/// Lint 3: no `std::sync` blocking primitives outside `crates/compat`.
fn lint_std_sync(root: &Path, violations: &mut Vec<String>) {
    for file in workspace_sources(root) {
        let p = rel(root, &file);
        if p.starts_with("crates/compat/") || p.starts_with("xtask/") {
            continue;
        }
        let src = read(&file);
        let mask = test_region_mask(&src);
        let lines: Vec<&str> = src.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let code = strip_comment(line);
            if !code.contains("std::sync") {
                continue;
            }
            if SYNC_TOKENS.iter().any(|t| code.contains(t)) && !waived(&lines, i, "STD-SYNC-OK:") {
                violations.push(format!(
                    "{}:{}: std::sync blocking primitive outside crates/compat; use \
                     parking_lot (or add `// STD-SYNC-OK: <reason>`)",
                    p,
                    i + 1
                ));
            }
        }
    }
}

/// Crates whose public API must be fully documented.
const MISSING_DOCS_CRATES: &[&str] = &[
    "crates/ir",
    "crates/expr",
    "crates/storage",
    "crates/plan",
    "crates/analyze",
    "crates/core",
    "crates/cache",
    "crates/exec",
    "crates/sql",
    "crates/workload",
    "crates/bench",
];

/// Lint 4: crate-level attributes.
fn lint_crate_attributes(root: &Path, violations: &mut Vec<String>) {
    let mut lib_files: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for d in ["crates", "crates/compat"] {
        let Ok(entries) = std::fs::read_dir(root.join(d)) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                lib_files.push(lib);
            }
        }
    }
    lib_files.sort();
    for lib in &lib_files {
        if !read(lib).contains("#![forbid(unsafe_code)]") {
            violations.push(format!(
                "{}: missing `#![forbid(unsafe_code)]`",
                rel(root, lib)
            ));
        }
    }
    for krate in MISSING_DOCS_CRATES {
        let lib = root.join(krate).join("src/lib.rs");
        if !read(&lib).contains("#![warn(missing_docs)]") {
            violations.push(format!(
                "{}: missing `#![warn(missing_docs)]`",
                rel(root, &lib)
            ));
        }
    }
}

/// Every `.rs` file in the workspace's own source trees (crates, the root
/// facade, examples, integration tests, benches, xtask).
fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for d in ["src", "crates", "examples", "tests", "benches", "xtask"] {
        out.extend(rust_files(&root.join(d)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn test_region_mask_covers_cfg_test_module() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let mask = test_region_mask(src);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn snowprune_vars_only_matches_string_literals() {
        assert_eq!(
            snowprune_vars(r#"let x = var("SNOWPRUNE_SCAN_THREADS");"#),
            vec!["SNOWPRUNE_SCAN_THREADS".to_string()]
        );
        // Prose mention without quotes is not a knob reference.
        assert!(snowprune_vars("// SNOWPRUNE_SCAN_THREADS controls workers").is_empty());
    }

    #[test]
    fn strip_comment_drops_line_comments() {
        assert_eq!(strip_comment("code(); // x.unwrap()"), "code(); ");
        assert_eq!(strip_comment("plain"), "plain");
    }

    #[test]
    fn full_lint_run_on_this_repo_is_clean() {
        let root = repo_root();
        if !root.join("Cargo.toml").is_file() {
            return;
        }
        let mut violations = Vec::new();
        lint_no_panic(&root, &mut violations);
        lint_env_choke_point(&root, &mut violations);
        lint_knob_registry(&root, &mut violations);
        lint_std_sync(&root, &mut violations);
        lint_crate_attributes(&root, &mut violations);
        let mut msg = String::new();
        for v in &violations {
            let _ = writeln!(msg, "{v}");
        }
        assert!(violations.is_empty(), "\n{msg}");
    }
}
