//! Property suite for the predicate cache's DML correctness rules: for
//! random tables, random entries (top-k and filter shapes), and random DML
//! sequences (inserts, deletes, updates over random columns), a cache
//! lookup that still *hits* must never yield a partition set that loses an
//! oracle row — every row a cold full scan says belongs to the result must
//! live in a replayed partition. Misses/invalidations are always legal;
//! serving a stale or under-scanning partition set never is.
//!
//! The DML kinds fed to `on_dml` are *measured* (`update_rows_tracked`
//! reports the columns an update actually changed), mirroring how
//! `snowprune_exec::Session` drives the cache.

use proptest::prelude::*;
use snowprune_cache::{
    contributing_partitions_topk, CacheEntry, CacheLookup, DmlKind, EntryKind, PredicateCache,
    ShapeKey,
};
use snowprune_expr::dsl::{col, lit};
use snowprune_expr::{eval_truths, selection_indices, Expr};
use snowprune_storage::{Field, Layout, PartitionId, Schema, Table, TableBuilder};
use snowprune_types::{LiteralRange, RangeBound, ScalarType, Value};

/// The shape key of `w >= lo` (shared shape fingerprint for all
/// thresholds); `need` distinguishes filter entries from top-k ones.
fn w_ge_shape(lo: i64, need: Option<u64>) -> ShapeKey {
    ShapeKey {
        fingerprint: 0x5AFE,
        ranges: vec![LiteralRange {
            column: "w".into(),
            lo: Some(RangeBound {
                value: Value::Int(lo),
                inclusive: true,
            }),
            hi: None,
        }],
        need,
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("v", ScalarType::Int), // ordering column
        Field::new("w", ScalarType::Int), // predicate column
        Field::new("g", ScalarType::Int), // payload column
    ])
}

/// Rows are (v, noise) pairs; the predicate column is `w = v + noise`, so
/// `w` correlates with the clustering column. That correlation matters:
/// partitions matching `w >= threshold` and partitions holding a given
/// lower `w`-band are then *disjoint* sets, which is exactly the geometry
/// where an UPDATE fast path keyed on "did the statement rewrite a cached
/// partition?" silently under-scans.
fn build_table(rows: &[(i64, i64)], per_part: usize, clustered: bool) -> Table {
    let layout = if clustered {
        Layout::ClusterBy(vec!["v".into()])
    } else {
        Layout::Shuffle(17)
    };
    let mut b = TableBuilder::new("t", schema())
        .target_rows_per_partition(per_part)
        .layout(layout);
    for (i, (v, noise)) in rows.iter().enumerate() {
        b.push_row(vec![
            Value::Int(*v),
            Value::Int(*v + *noise),
            Value::Int(i as i64),
        ]);
    }
    b.build()
}

/// All (order value, partition) pairs of rows matching `pred`.
fn qualifying_pairs(table: &Table, pred: Option<&Expr>) -> Vec<(i64, PartitionId)> {
    let bound = pred.map(|p| p.bind(table.schema()).unwrap());
    let mut pairs = Vec::new();
    for id in table.partition_ids() {
        let part = table.partition(id).unwrap();
        let sel: Vec<usize> = match &bound {
            Some(p) => selection_indices(&eval_truths(p, &part)),
            None => (0..part.row_count()).collect(),
        };
        for i in sel {
            if let Value::Int(v) = part.column(0).value_at(i) {
                pairs.push((v, id));
            }
        }
    }
    pairs
}

/// Partitions holding at least one row matching `pred` (the filter oracle).
fn matching_partitions(table: &Table, pred: &Expr) -> Vec<PartitionId> {
    let mut out: Vec<PartitionId> = qualifying_pairs(table, Some(pred))
        .into_iter()
        .map(|(_, id)| id)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One random DML statement. Parameters are interpreted per `kind`.
#[derive(Clone, Debug)]
struct DmlOp {
    kind: u8,
    lo: i64,
    span: i64,
    delta: i64,
}

fn op_strategy() -> impl Strategy<Value = DmlOp> {
    (0u8..5, -60i64..60, 0i64..25, -30i64..30).prop_map(|(kind, lo, span, delta)| DmlOp {
        kind,
        lo,
        span,
        delta,
    })
}

/// Apply `op` to the table and feed the *measured* DML kind to the cache.
/// `threshold` anchors predicate-column updates near the predicate's
/// boundary, where moving rows into/out of the range actually changes
/// which partitions match.
fn apply_op(table: &mut Table, cache: &mut PredicateCache, op: &DmlOp, threshold: i64) {
    let in_range = |v: &Value| match v {
        Value::Int(x) => *x >= op.lo && *x <= op.lo + op.span,
        _ => false,
    };
    match op.kind {
        0 => {
            // INSERT a couple of fresh rows.
            let res = table.insert_rows(vec![
                vec![
                    Value::Int(op.lo),
                    Value::Int(op.delta),
                    Value::Int(1_000 + op.span),
                ],
                vec![
                    Value::Int(op.lo + op.span),
                    Value::Int(-op.delta),
                    Value::Int(2_000 + op.span),
                ],
            ]);
            cache.on_dml("t", &DmlKind::Insert, &res);
        }
        1 => {
            // DELETE rows whose order value falls in a band.
            let res = table.delete_rows(|row| in_range(&row[0]));
            cache.on_dml("t", &DmlKind::Delete, &res);
        }
        2 => {
            // UPDATE the predicate column, selecting *by* the predicate
            // column: shifts a whole w-band near the predicate boundary,
            // which can move rows into the predicate's range inside
            // partitions that never matched it — without touching any
            // partition that did (w correlates with the clustering key).
            let band_lo = threshold - 20 + op.lo.rem_euclid(25);
            let band_hi = band_lo + op.span;
            let (res, cols) = table.update_rows_tracked(|row| {
                let mut r = row.to_vec();
                if let Value::Int(w) = r[1] {
                    if w >= band_lo && w <= band_hi {
                        r[1] = Value::Int(w + op.delta);
                    }
                }
                r
            });
            cache.on_dml("t", &DmlKind::Update(cols), &res);
        }
        3 => {
            // UPDATE the payload column (never affects any entry's rows).
            let (res, cols) = table.update_rows_tracked(|row| {
                let mut r = row.to_vec();
                if in_range(&r[0]) {
                    if let Value::Int(g) = r[2] {
                        r[2] = Value::Int(g + 1);
                    }
                }
                r
            });
            cache.on_dml("t", &DmlKind::Update(cols), &res);
        }
        _ => {
            // UPDATE the ordering column (unsafe for top-k entries).
            let (res, cols) = table.update_rows_tracked(|row| {
                let mut r = row.to_vec();
                if in_range(&r[1]) {
                    if let Value::Int(v) = r[0] {
                        r[0] = Value::Int(v + op.delta);
                    }
                }
                r
            });
            cache.on_dml("t", &DmlKind::Update(cols), &res);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Top-k entries: after any DML sequence, a hit's partition set must
    /// cover every row a cold oracle scan puts in (or ties with) the
    /// top-k — including boundary ties spanning partitions.
    #[test]
    fn topk_hit_never_loses_an_oracle_row(
        rows in proptest::collection::vec((-60i64..60, -15i64..15), 1..120),
        per_part in prop_oneof![Just(5usize), Just(13), Just(40)],
        clustered in any::<bool>(),
        k in 1usize..8,
        desc in any::<bool>(),
        with_pred in any::<bool>(),
        threshold in 10i64..55,
        ops in proptest::collection::vec(op_strategy(), 0..5),
    ) {
        let mut table = build_table(&rows, per_part, clustered);
        let pred = with_pred.then(|| col("w").ge(lit(threshold)));
        let mut cache = PredicateCache::new(8);
        let parts =
            contributing_partitions_topk(&table, pred.as_ref(), "v", k, desc).unwrap();
        cache.insert(1, CacheEntry {
            kind: EntryKind::TopK { order_column: "v".into() },
            table: "t".into(),
            partitions: parts,
            predicate_columns: if with_pred { vec!["w".into()] } else { Vec::new() },
            table_version: table.version(),
            appended: Vec::new(),
            shape: None,
            saved_loads: 0,
            aux_tables: Vec::new(),
        });
        for op in &ops {
            apply_op(&mut table, &mut cache, op, threshold);
        }
        // A miss (invalidated or stale) is always legal; a hit must not
        // lose any oracle row.
        if let CacheLookup::Hit(replay) = cache.lookup(1, table.version()) {
            // Oracle: every qualifying row ranked at-or-better-than the
            // k-th best value must be replayable.
            let mut pairs = qualifying_pairs(&table, pred.as_ref());
            pairs.sort_by(|a, b| if desc { b.0.cmp(&a.0) } else { a.0.cmp(&b.0) });
            let required: Vec<(i64, PartitionId)> = if pairs.len() > k {
                let bound = pairs[k - 1].0;
                pairs
                    .into_iter()
                    .filter(|(v, _)| if desc { *v >= bound } else { *v <= bound })
                    .collect()
            } else {
                pairs
            };
            for (v, id) in required {
                prop_assert!(
                    replay.contains(&id),
                    "row v={v} in partition {id} lost by replay set {replay:?} \
                     (k={k} desc={desc} pred={with_pred} ops={ops:?})"
                );
            }
        }
    }

    /// Filter entries: a hit must cover every partition holding at least
    /// one matching row — in particular after UPDATEs of the predicate
    /// column that move rows into the range inside never-cached partitions.
    #[test]
    fn filter_hit_never_loses_a_matching_partition(
        rows in proptest::collection::vec((-60i64..60, -15i64..15), 1..120),
        per_part in prop_oneof![Just(5usize), Just(13), Just(40)],
        clustered in any::<bool>(),
        threshold in 10i64..55,
        ops in proptest::collection::vec(op_strategy(), 0..5),
    ) {
        let mut table = build_table(&rows, per_part, clustered);
        // A selective threshold leaves many partitions *outside* the
        // cached set — exactly where the UPDATE fast-path bug under-scans.
        let pred = col("w").ge(lit(threshold));
        let mut cache = PredicateCache::new(8);
        cache.insert(2, CacheEntry {
            kind: EntryKind::Filter,
            table: "t".into(),
            partitions: matching_partitions(&table, &pred),
            predicate_columns: vec!["w".into()],
            table_version: table.version(),
            appended: Vec::new(),
            shape: None,
            saved_loads: 0,
            aux_tables: Vec::new(),
        });
        for op in &ops {
            apply_op(&mut table, &mut cache, op, threshold);
        }
        if let CacheLookup::Hit(replay) = cache.lookup(2, table.version()) {
            for id in matching_partitions(&table, &pred) {
                prop_assert!(
                    replay.contains(&id),
                    "matching partition {id} lost by replay set {replay:?} (t={threshold} ops={ops:?})"
                );
            }
        }
    }

    /// Shape-mode filter subsumption: an entry recorded for `w >= t` may
    /// serve any narrowed query `w >= t + d` (d ≥ 0) via its shape key —
    /// after arbitrary DML, a shape hit must still cover every partition
    /// holding a row matching the *narrowed* predicate.
    #[test]
    fn filter_shape_hit_never_loses_a_matching_partition(
        rows in proptest::collection::vec((-60i64..60, -15i64..15), 1..120),
        per_part in prop_oneof![Just(5usize), Just(13), Just(40)],
        clustered in any::<bool>(),
        threshold in 10i64..40,
        delta in 0i64..30,
        ops in proptest::collection::vec(op_strategy(), 0..5),
    ) {
        let mut table = build_table(&rows, per_part, clustered);
        let entry_pred = col("w").ge(lit(threshold));
        let mut cache = PredicateCache::new(8);
        cache.insert(2, CacheEntry {
            kind: EntryKind::Filter,
            table: "t".into(),
            partitions: matching_partitions(&table, &entry_pred),
            predicate_columns: vec!["w".into()],
            table_version: table.version(),
            appended: Vec::new(),
            shape: Some(w_ge_shape(threshold, None)),
            saved_loads: 0,
            aux_tables: Vec::new(),
        });
        for op in &ops {
            apply_op(&mut table, &mut cache, op, threshold);
        }
        // The narrowed query has a different exact fingerprint (7) but the
        // same shape; a ShapeHit must cover the narrowed oracle.
        let query_pred = col("w").ge(lit(threshold + delta));
        let lookup = cache.lookup_with_shape(
            7,
            Some(&w_ge_shape(threshold + delta, None)),
            table.version(),
        );
        if let CacheLookup::ShapeHit(replay) = lookup {
            for id in matching_partitions(&table, &query_pred) {
                prop_assert!(
                    replay.contains(&id),
                    "narrowed-match partition {id} lost by shape replay {replay:?} \
                     (t={threshold} d={delta} ops={ops:?})"
                );
            }
        } else {
            prop_assert!(!matches!(lookup, CacheLookup::Hit(_)), "fp 7 never inserted");
        }
    }

    /// Shape-mode top-k subsumption: an entry recorded at `k_entry` may
    /// serve the same predicate at any `k_query <= k_entry` — after
    /// arbitrary DML, a shape hit must cover every row a cold oracle
    /// ranks in (or tied with) the smaller top-k.
    #[test]
    fn topk_shape_hit_never_loses_an_oracle_row(
        rows in proptest::collection::vec((-60i64..60, -15i64..15), 1..120),
        per_part in prop_oneof![Just(5usize), Just(13), Just(40)],
        clustered in any::<bool>(),
        k_entry in 2usize..8,
        k_delta in 0usize..6,
        desc in any::<bool>(),
        with_pred in any::<bool>(),
        threshold in 10i64..55,
        ops in proptest::collection::vec(op_strategy(), 0..5),
    ) {
        let k_query = k_entry.saturating_sub(k_delta).max(1);
        let mut table = build_table(&rows, per_part, clustered);
        let pred = with_pred.then(|| col("w").ge(lit(threshold)));
        let mut cache = PredicateCache::new(8);
        let parts =
            contributing_partitions_topk(&table, pred.as_ref(), "v", k_entry, desc).unwrap();
        // Shape fingerprint varies with predicate presence, as the real
        // extraction's constrained-column set would.
        let entry_shape = if with_pred {
            w_ge_shape(threshold, Some(k_entry as u64))
        } else {
            ShapeKey { fingerprint: 0xBA5E, ranges: Vec::new(), need: Some(k_entry as u64) }
        };
        let query_shape = if with_pred {
            w_ge_shape(threshold, Some(k_query as u64))
        } else {
            ShapeKey { fingerprint: 0xBA5E, ranges: Vec::new(), need: Some(k_query as u64) }
        };
        cache.insert(1, CacheEntry {
            kind: EntryKind::TopK { order_column: "v".into() },
            table: "t".into(),
            partitions: parts,
            predicate_columns: if with_pred { vec!["w".into()] } else { Vec::new() },
            table_version: table.version(),
            appended: Vec::new(),
            shape: Some(entry_shape),
            saved_loads: 0,
            aux_tables: Vec::new(),
        });
        for op in &ops {
            apply_op(&mut table, &mut cache, op, threshold);
        }
        let lookup = cache.lookup_with_shape(9, Some(&query_shape), table.version());
        if let CacheLookup::ShapeHit(replay) = lookup {
            let mut pairs = qualifying_pairs(&table, pred.as_ref());
            pairs.sort_by(|a, b| if desc { b.0.cmp(&a.0) } else { a.0.cmp(&b.0) });
            let required: Vec<(i64, PartitionId)> = if pairs.len() > k_query {
                let bound = pairs[k_query - 1].0;
                pairs
                    .into_iter()
                    .filter(|(v, _)| if desc { *v >= bound } else { *v <= bound })
                    .collect()
            } else {
                pairs
            };
            for (v, id) in required {
                prop_assert!(
                    replay.contains(&id),
                    "row v={v} in partition {id} lost by shape replay {replay:?} \
                     (k_entry={k_entry} k_query={k_query} desc={desc} pred={with_pred} ops={ops:?})"
                );
            }
        }
    }
}
