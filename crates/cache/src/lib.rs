//! Predicate caching (§8.2): cache the set of micro-partitions that
//! contributed to a query's result, keyed by exact plan fingerprint, and
//! replay it on repeat executions — Schmidt et al.'s predicate caching
//! extended to top-k queries with the paper's DML correctness rules:
//!
//! * **INSERT** — safe: partitions added after the entry was recorded are
//!   appended to the replayed scan set, so new rows can still enter the
//!   (top-k) result.
//! * **DELETE** — unsafe for top-k: the replacement (k+1-th) row may live
//!   outside the cached partitions → invalidate.
//! * **UPDATE of the ordering column or a predicate column** — unsafe for
//!   top-k → invalidate (a predicate-column update can disqualify a cached
//!   contributor, letting a row from a never-cached partition enter).
//! * **UPDATE of a filter entry's predicate columns** — the rewrite may
//!   move rows *into* the predicate's range inside a partition the entry
//!   never referenced, so the replacement partitions are appended
//!   unconditionally.
//! * **UPDATE of other columns / other DML for plain filter entries** —
//!   handled by rewriting partition ids (removed → added) when a cached
//!   partition was touched.
//!
//! Entries additionally carry the `table_version` they were recorded at;
//! a lookup against a diverged live version (DML the cache was never told
//! about) drops the entry and counts a `stale_rejections` instead of a hit.
//!
//! The cache is *populated by the engine*: `snowprune_exec::Executor`
//! records top-k heap survivors (plus boundary-tie partitions) and filter
//! scans' surviving partitions at query completion, and
//! `snowprune_exec::Session` owns the shared cache and routes DML results
//! into [`PredicateCache::on_dml`]. [`contributing_partitions_topk`]
//! remains as the offline/oracle population pass used by benches and the
//! property suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod populate;

pub use cache::{
    CacheEntry, CacheLookup, CacheStats, DmlKind, EntryKind, PredicateCache, ShapeKey,
};
pub use populate::contributing_partitions_topk;
