//! Predicate caching (§8.2): cache the set of micro-partitions that
//! contributed to a query's result, keyed by exact plan fingerprint, and
//! replay it on repeat executions — Schmidt et al.'s predicate caching
//! extended to top-k queries with the paper's DML correctness rules:
//!
//! * **INSERT** — safe: partitions added after the entry was recorded are
//!   appended to the replayed scan set, so new rows can still enter the
//!   (top-k) result.
//! * **DELETE** — unsafe for top-k: the replacement (k+1-th) row may live
//!   outside the cached partitions → invalidate.
//! * **UPDATE of the ordering column** — unsafe for top-k → invalidate.
//! * **UPDATE of other columns / any DML for plain filter entries** —
//!   handled by rewriting partition ids (removed → added).

pub mod cache;
pub mod populate;

pub use cache::{CacheEntry, CacheLookup, CacheStats, DmlKind, EntryKind, PredicateCache};
pub use populate::contributing_partitions_topk;
