//! Cache population: compute the partitions that contribute rows to a
//! top-k result, mimicking "recording partition information alongside each
//! tuple in the top-k heap during query processing" (§8.2).

use snowprune_expr::{eval_truths, selection_indices, Expr};
use snowprune_storage::{PartitionId, Table};
use snowprune_types::{Result, Value};

/// Exactly the partitions holding rows of the top-k result for
/// `ORDER BY order_column [DESC] LIMIT k` under `predicate`. A perfect
/// cache entry: replaying only these partitions reproduces the result (at
/// the recorded table version).
pub fn contributing_partitions_topk(
    table: &Table,
    predicate: Option<&Expr>,
    order_column: &str,
    k: usize,
    desc: bool,
) -> Result<Vec<PartitionId>> {
    let schema = table.schema();
    let order_idx = schema.index_of(order_column)?;
    let bound = predicate.map(|p| p.bind(schema)).transpose()?;
    // Gather qualifying (order_value, partition) pairs.
    let mut pairs: Vec<(Value, PartitionId)> = Vec::new();
    for id in table.partition_ids() {
        let part = table.partition(id)?;
        let selection: Vec<usize> = match &bound {
            Some(p) => selection_indices(&eval_truths(p, &part)),
            None => (0..part.row_count()).collect(),
        };
        for i in selection {
            let v = part.column(order_idx).value_at(i);
            if !v.is_null() {
                pairs.push((v, id));
            }
        }
    }
    pairs.sort_by(|a, b| {
        let ord = a.0.total_ord_cmp(&b.0);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    // Include every partition holding a row *equal to* the k-th order value,
    // not just the first k pairs: the engine breaks boundary ties by its own
    // processing order, which need not match this pass's stable sort — a
    // replay restricted to `take(k)`'s partitions could miss the partition
    // the engine actually draws a tied boundary row from.
    if k == 0 {
        return Ok(Vec::new());
    }
    let boundary = pairs.get(k - 1).map(|(v, _)| v.clone());
    let mut contributing: Vec<PartitionId> = Vec::new();
    for (i, (v, id)) in pairs.iter().enumerate() {
        if i < k {
            contributing.push(*id);
        } else {
            let Some(b) = &boundary else { break };
            if v.total_ord_cmp(b) != std::cmp::Ordering::Equal {
                break;
            }
            contributing.push(*id);
        }
    }
    contributing.sort_unstable();
    contributing.dedup();
    Ok(contributing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, Schema, TableBuilder};
    use snowprune_types::ScalarType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("v", ScalarType::Int),
            Field::new("g", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(10)
            .layout(Layout::ClusterBy(vec!["v".into()]));
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
        }
        b.build()
    }

    #[test]
    fn finds_top_partition_only() {
        let t = table();
        // Top-5 of v DESC: values 95..99, all in the last partition.
        let parts = contributing_partitions_topk(&t, None, "v", 5, true).unwrap();
        assert_eq!(parts, vec![9]);
    }

    #[test]
    fn respects_predicate() {
        let t = table();
        // Top-3 of v DESC among v < 50: values 47..49, partition 4.
        let pred = col("v").lt(lit(50i64));
        let parts = contributing_partitions_topk(&t, Some(&pred), "v", 3, true).unwrap();
        assert_eq!(parts, vec![4]);
    }

    #[test]
    fn ascending_and_spanning() {
        let t = table();
        // Bottom-15 ASC spans partitions 0 and 1.
        let parts = contributing_partitions_topk(&t, None, "v", 15, false).unwrap();
        assert_eq!(parts, vec![0, 1]);
    }

    #[test]
    fn boundary_tie_spanning_partitions_includes_both() {
        // THE regression for the `take(k)` tie bug: the k-th order value
        // (5) appears in two partitions. The old code kept only the first
        // k sorted pairs — partition 0 alone — so a replay could not see
        // the tied row in partition 1 even though the engine may draw the
        // boundary row from there.
        let schema = Schema::new(vec![Field::new("v", ScalarType::Int)]);
        let mut b = TableBuilder::new("t", schema).target_rows_per_partition(2);
        for v in [10i64, 5, 5, 1] {
            b.push_row(vec![Value::Int(v)]);
        }
        // Partitions: p0 = [10, 5], p1 = [5, 1].
        let t = b.build();
        let parts = contributing_partitions_topk(&t, None, "v", 2, true).unwrap();
        assert_eq!(parts, vec![0, 1], "tied boundary spans both partitions");
        // Without a tie at the boundary the set stays minimal.
        let top1 = contributing_partitions_topk(&t, None, "v", 1, true).unwrap();
        assert_eq!(top1, vec![0]);
        // k = 0 caches nothing.
        let none = contributing_partitions_topk(&t, None, "v", 0, true).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn tie_extension_respects_predicate() {
        // Tied rows that fail the predicate do not drag their partition in.
        let schema = Schema::new(vec![
            Field::new("v", ScalarType::Int),
            Field::new("w", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema).target_rows_per_partition(2);
        for (v, w) in [(10i64, 1i64), (5, 1), (5, 0), (1, 1)] {
            b.push_row(vec![Value::Int(v), Value::Int(w)]);
        }
        let t = b.build();
        let pred = col("w").ge(lit(1i64));
        // Qualifying pairs: (10, p0), (5, p0), (1, p1) — the tied 5 in p1
        // fails the predicate, so only p0 contributes to the top-2.
        let parts = contributing_partitions_topk(&t, Some(&pred), "v", 2, true).unwrap();
        assert_eq!(parts, vec![0]);
    }
}
