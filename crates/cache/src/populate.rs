//! Cache population: compute the partitions that contribute rows to a
//! top-k result, mimicking "recording partition information alongside each
//! tuple in the top-k heap during query processing" (§8.2).

use snowprune_expr::{eval_truths, selection_indices, Expr};
use snowprune_storage::{PartitionId, Table};
use snowprune_types::{Result, Value};

/// Exactly the partitions holding rows of the top-k result for
/// `ORDER BY order_column [DESC] LIMIT k` under `predicate`. A perfect
/// cache entry: replaying only these partitions reproduces the result (at
/// the recorded table version).
pub fn contributing_partitions_topk(
    table: &Table,
    predicate: Option<&Expr>,
    order_column: &str,
    k: usize,
    desc: bool,
) -> Result<Vec<PartitionId>> {
    let schema = table.schema();
    let order_idx = schema.index_of(order_column)?;
    let bound = predicate.map(|p| p.bind(schema)).transpose()?;
    // Gather qualifying (order_value, partition) pairs.
    let mut pairs: Vec<(Value, PartitionId)> = Vec::new();
    for id in table.partition_ids() {
        let part = table.partition(id)?;
        let selection: Vec<usize> = match &bound {
            Some(p) => selection_indices(&eval_truths(p, &part)),
            None => (0..part.row_count()).collect(),
        };
        for i in selection {
            let v = part.column(order_idx).value_at(i);
            if !v.is_null() {
                pairs.push((v, id));
            }
        }
    }
    pairs.sort_by(|a, b| {
        let ord = a.0.total_ord_cmp(&b.0);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    let mut contributing: Vec<PartitionId> = pairs.into_iter().take(k).map(|(_, id)| id).collect();
    contributing.sort_unstable();
    contributing.dedup();
    Ok(contributing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, Schema, TableBuilder};
    use snowprune_types::ScalarType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("v", ScalarType::Int),
            Field::new("g", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(10)
            .layout(Layout::ClusterBy(vec!["v".into()]));
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
        }
        b.build()
    }

    #[test]
    fn finds_top_partition_only() {
        let t = table();
        // Top-5 of v DESC: values 95..99, all in the last partition.
        let parts = contributing_partitions_topk(&t, None, "v", 5, true).unwrap();
        assert_eq!(parts, vec![9]);
    }

    #[test]
    fn respects_predicate() {
        let t = table();
        // Top-3 of v DESC among v < 50: values 47..49, partition 4.
        let pred = col("v").lt(lit(50i64));
        let parts = contributing_partitions_topk(&t, Some(&pred), "v", 3, true).unwrap();
        assert_eq!(parts, vec![4]);
    }

    #[test]
    fn ascending_and_spanning() {
        let t = table();
        // Bottom-15 ASC spans partitions 0 and 1.
        let parts = contributing_partitions_topk(&t, None, "v", 15, false).unwrap();
        assert_eq!(parts, vec![0, 1]);
    }
}
