//! The predicate cache proper: exact-fingerprint entries, the shape-mode
//! subsumption index, and the LRU/cost-aware eviction policy.

use std::collections::HashMap;

use snowprune_storage::{DmlResult, PartitionId};
/// Shape-mode cache key (see [`snowprune_types::ShapeKey`]): carried by
/// shape-eligible entries and matched by
/// [`PredicateCache::lookup_with_shape`]'s subsumption rules.
pub use snowprune_types::ShapeKey;

/// What kind of result the entry caches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Partitions containing rows matching a filter predicate.
    Filter,
    /// Partitions contributing rows to a top-k result over this ordering
    /// column.
    TopK {
        /// The ORDER BY column driving the top-k boundary.
        order_column: String,
    },
}

/// A cached contributing-partition set.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// What the partition set covers (filter survivors or top-k
    /// contributors).
    pub kind: EntryKind,
    /// The scanned table's name.
    pub table: String,
    /// Contributing partitions at record time.
    pub partitions: Vec<PartitionId>,
    /// Column names referenced by the plan's predicates. An UPDATE that
    /// touches any of these can move rows *into* the predicate's range
    /// inside a partition the entry never referenced, so such updates may
    /// not take the cached-partitions-only fast path (see
    /// [`PredicateCache::on_dml`]).
    pub predicate_columns: Vec<String>,
    /// Table version the entry was recorded at.
    pub table_version: u64,
    /// Partitions added by later (safe) DML, appended at lookup time.
    pub appended: Vec<PartitionId>,
    /// Shape-mode key, when the recording query was shape-eligible and the
    /// engine ran in shape mode; `None` entries serve exact lookups only.
    pub shape: Option<ShapeKey>,
    /// Auxiliary table dependencies, sorted and deduplicated: other tables
    /// the recording query scanned (a join's build or probe side) with the
    /// versions it saw. Replaying the entry's partition restriction is only
    /// sound while every auxiliary side of the join is byte-identical, so
    /// [`PredicateCache::lookup_with_aux`] rejects the entry once any
    /// auxiliary version moves, and [`PredicateCache::on_dml`] invalidates
    /// it eagerly when the DML'd table appears here. Empty for
    /// single-table entries.
    pub aux_tables: Vec<(String, u64)>,
    /// How many scan-set entries the recorded partition set saved on the
    /// recording run (total partitions minus cached contributors) — the
    /// cost signal for the eviction tiebreak: entries that save more loads
    /// evict last.
    pub saved_loads: u64,
}

/// Lookup outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    /// No servable entry.
    Miss,
    /// Exact-fingerprint hit: the partitions to scan — cached contributors
    /// plus any partitions added since (INSERT safety).
    Hit(Vec<PartitionId>),
    /// Shape-mode hit: a same-shape entry whose literal ranges subsume the
    /// query's served its (sound superset) partition set.
    ShapeHit(Vec<PartitionId>),
}

/// Classified DML statements, as the cache needs to distinguish them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmlKind {
    /// Row insertion (appends new partitions to every entry).
    Insert,
    /// Row deletion (invalidates top-k entries).
    Delete,
    /// Row update; carries the *measured* updated column names.
    Update(Vec<String>),
}

/// Hit/miss/invalidation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-fingerprint hits.
    pub hits: u64,
    /// Shape-mode subsumption hits (disjoint from `hits`).
    pub shape_hits: u64,
    /// Lookups that found no servable entry.
    pub misses: u64,
    /// Same-shape candidates examined whose stored ranges (or top-k row
    /// count) did not subsume the query's — each rejected candidate counts
    /// once.
    pub subsumption_rejections: u64,
    /// Entries recorded (including re-records of an existing fingerprint).
    pub insertions: u64,
    /// Entries dropped by the DML correctness rules.
    pub invalidations: u64,
    /// Entries dropped by the capacity policy (LRU with cost tiebreak).
    pub evictions: u64,
    /// Entries dropped because their recorded `table_version` fell out of
    /// step with the live table — DML happened that the cache was never
    /// told about. Detected both at lookup (counted as misses, never as
    /// hits; stale *shape candidates* included) and inside
    /// [`PredicateCache::on_dml`] (an entry whose version is not exactly
    /// one behind the statement's `new_version` missed an earlier
    /// statement).
    pub stale_rejections: u64,
}

/// Recency/ordering bookkeeping for one entry (parallel to `entries`).
#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    /// Tick of the entry's most recent hit (exact or shape); 0 = never hit.
    last_hit: u64,
    /// Monotone insertion sequence (final, deterministic tiebreak).
    seq: u64,
}

/// A bounded predicate cache keyed by exact plan fingerprints
/// (`snowprune_plan::fingerprint` in `Exact` mode), with an optional
/// shape-mode fallback index over literal-abstracted fingerprints
/// (`snowprune_plan::shape_signature`).
///
/// Eviction is LRU keyed on **hit recency** with a cost-aware tiebreak:
/// never-hit entries evict before any entry that has served a hit, and
/// among equally-recent entries the one whose recorded partition set saved
/// the fewest loads goes first (oldest insertion breaks remaining ties).
/// The entry being inserted is never its own victim.
#[derive(Debug)]
pub struct PredicateCache {
    capacity: usize,
    entries: HashMap<u64, CacheEntry>,
    meta: HashMap<u64, EntryMeta>,
    /// Shape fingerprint → exact fingerprints of entries with that shape,
    /// in insertion order (deterministic fallback scan).
    shape_index: HashMap<u64, Vec<u64>>,
    /// Monotone counter bumped on every insert and hit.
    tick: u64,
    stats: CacheStats,
}

impl PredicateCache {
    /// A cache holding at most `capacity` entries (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        PredicateCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            meta: HashMap::new(),
            shape_index: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact-fingerprint lookup against the live version of the entry's
    /// table. A hit returns the partitions to scan. An entry whose recorded
    /// `table_version` does not match `live_version` is unsound to replay
    /// (it missed at least one DML notification): it is dropped and the
    /// lookup counts as a stale rejection, not a hit.
    pub fn lookup(&mut self, fingerprint: u64, live_version: u64) -> CacheLookup {
        self.lookup_with_shape(fingerprint, None, live_version)
    }

    /// Exact lookup with shape-mode fallback: when `fingerprint` has no
    /// servable entry and `shape` is provided, entries sharing the shape
    /// fingerprint are scanned in insertion order for one whose stored key
    /// *subsumes* the query's —
    ///
    /// * **filter** entries: every stored interval contains the query's
    ///   interval for that column (`v >= 50` serves `v >= 60`;
    ///   `BETWEEN 10 AND 90` serves `BETWEEN 20 AND 80`), so the query
    ///   predicate implies the entry predicate and the entry's partitions
    ///   are a sound superset;
    /// * **top-k** entries: intervals exactly equal and
    ///   `entry.need >= query.need` — the entry's heap survivors plus its
    ///   boundary-tie partitions then cover the smaller top-k, ties
    ///   included. (A merely wider entry predicate is *not* sound here: its
    ///   top-k ranks over a larger row set, and the query's best rows may
    ///   not be among the entry's k survivors.)
    ///
    /// Candidates that fail the check count one `subsumption_rejections`
    /// each; stale candidates are dropped like stale exact entries.
    pub fn lookup_with_shape(
        &mut self,
        fingerprint: u64,
        shape: Option<&ShapeKey>,
        live_version: u64,
    ) -> CacheLookup {
        // No auxiliary-version resolver: entries *with* auxiliary
        // dependencies conservatively reject (their versions cannot be
        // verified), entries without pass vacuously.
        self.lookup_with_aux(fingerprint, shape, live_version, &|_| None)
    }

    /// [`Self::lookup_with_shape`] with auxiliary-table verification:
    /// `aux_live` resolves a table name to its live version (or `None`
    /// when the table is gone). An entry is servable only if the target
    /// version matches *and* every recorded auxiliary table still carries
    /// the version the entry saw — otherwise some other side of the
    /// recording join has changed, the cached contributor set may
    /// under-scan, and the entry is dropped as a stale rejection.
    pub fn lookup_with_aux(
        &mut self,
        fingerprint: u64,
        shape: Option<&ShapeKey>,
        live_version: u64,
        aux_live: &dyn Fn(&str) -> Option<u64>,
    ) -> CacheLookup {
        match self.entries.get(&fingerprint) {
            Some(entry) if entry.table_version != live_version || !aux_fresh(entry, aux_live) => {
                self.remove_entry(fingerprint);
                self.stats.stale_rejections += 1;
                // Fall through to the shape index: another same-shape entry
                // may have seen the DML this one missed.
            }
            Some(entry) => {
                let parts = replay_set(entry);
                self.stats.hits += 1;
                self.touch(fingerprint);
                return CacheLookup::Hit(parts);
            }
            None => {}
        }
        if let Some(query) = shape {
            if let Some(candidate) = self.find_subsuming(query, live_version, aux_live) {
                let parts = replay_set(&self.entries[&candidate]);
                self.stats.shape_hits += 1;
                self.touch(candidate);
                return CacheLookup::ShapeHit(parts);
            }
        }
        self.stats.misses += 1;
        CacheLookup::Miss
    }

    /// Scan the shape bucket for the first live candidate subsuming
    /// `query`, dropping stale candidates along the way.
    fn find_subsuming(
        &mut self,
        query: &ShapeKey,
        live_version: u64,
        aux_live: &dyn Fn(&str) -> Option<u64>,
    ) -> Option<u64> {
        let candidates = self.shape_index.get(&query.fingerprint)?.clone();
        let mut found = None;
        for fp in candidates {
            let Some(entry) = self.entries.get(&fp) else {
                continue;
            };
            if entry.table_version != live_version || !aux_fresh(entry, aux_live) {
                self.remove_entry(fp);
                self.stats.stale_rejections += 1;
                continue;
            }
            let Some(key) = &entry.shape else { continue };
            if subsumes(&entry.kind, key, query) {
                found = Some(fp);
                break;
            }
            self.stats.subsumption_rejections += 1;
        }
        found
    }

    /// Bump the recency of a just-hit entry.
    fn touch(&mut self, fingerprint: u64) {
        self.tick += 1;
        if let Some(m) = self.meta.get_mut(&fingerprint) {
            m.last_hit = self.tick;
        }
    }

    /// Record an entry, evicting per the LRU/cost policy when over
    /// capacity. Re-inserting an existing fingerprint replaces the entry
    /// and resets its recency (it is a fresh recording, not a hit).
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        self.tick += 1;
        let shape_fp = entry.shape.as_ref().map(|s| s.fingerprint);
        if let Some(old) = self.entries.insert(fingerprint, entry) {
            // Replacement: drop the old shape mapping; re-adding below
            // keeps bucket order deduplicated.
            self.unindex_shape(fingerprint, old.shape.as_ref().map(|s| s.fingerprint));
        }
        if let Some(sfp) = shape_fp {
            self.shape_index.entry(sfp).or_default().push(fingerprint);
        }
        self.meta.insert(
            fingerprint,
            EntryMeta {
                last_hit: 0,
                seq: self.tick,
            },
        );
        self.stats.insertions += 1;
        while self.entries.len() > self.capacity {
            // Victim: never-hit before hit (LRU on hit recency), then the
            // entry saving the fewest loads (cost tiebreak), then oldest
            // insertion. The just-inserted entry is never the victim.
            let victim = self
                .entries
                .iter()
                .filter(|(fp, _)| **fp != fingerprint)
                .map(|(fp, e)| {
                    let m = self.meta[fp];
                    (m.last_hit, e.saved_loads, m.seq, *fp)
                })
                .min();
            let Some((_, _, _, victim)) = victim else {
                break;
            };
            self.remove_entry(victim);
            self.stats.evictions += 1;
        }
    }

    /// Drop an entry and all its index bookkeeping.
    fn remove_entry(&mut self, fingerprint: u64) {
        let entry = self.entries.remove(&fingerprint);
        self.meta.remove(&fingerprint);
        self.unindex_shape(
            fingerprint,
            entry.and_then(|e| e.shape.map(|s| s.fingerprint)),
        );
    }

    /// Drop `fingerprint` from its shape bucket (`None` shape = no-op).
    fn unindex_shape(&mut self, fingerprint: u64, shape_fp: Option<u64>) {
        let Some(shape_fp) = shape_fp else { return };
        if let Some(bucket) = self.shape_index.get_mut(&shape_fp) {
            bucket.retain(|fp| *fp != fingerprint);
            if bucket.is_empty() {
                self.shape_index.remove(&shape_fp);
            }
        }
    }

    /// Apply a DML statement's effect to all entries of `table`, following
    /// the §8.2 correctness rules:
    ///
    /// * INSERT appends the new partitions to every entry (new rows may
    ///   enter any result).
    /// * DELETE invalidates top-k entries (the replacement k+1-th row may
    ///   live outside the cached partitions); filter entries just rewrite
    ///   removed partitions.
    /// * UPDATE of the ordering column — or of any column the entry's
    ///   predicate references — invalidates top-k entries: the update can
    ///   change which rows qualify or how they rank, and the new boundary
    ///   row may live in a never-cached, never-rewritten partition.
    /// * UPDATE touching a filter entry's predicate columns appends the
    ///   replacement partitions *unconditionally*: even when no cached
    ///   partition was rewritten, the update may have moved rows into the
    ///   predicate's range inside a previously non-matching partition.
    /// * All other updates (and filter-entry deletes) rewrite removed
    ///   partitions to their replacements only when a cached partition was
    ///   actually touched — untouched partitions keep their predicate
    ///   status, so adding replacements would be needlessly lossy.
    ///
    /// Shape-bearing entries follow the same rules: their
    /// `predicate_columns` cover every column their ranges constrain, so an
    /// entry kept alive here remains a sound shape-serving superset for any
    /// query it subsumes.
    ///
    /// Table versions advance by exactly one per DML statement, so an
    /// entry whose recorded version is not `result.new_version - 1` missed
    /// at least one notification (DML applied behind the cache's back).
    /// Stamping it with `new_version` would *resynchronize* it and defeat
    /// the lookup-time staleness check, so such entries are dropped here
    /// (counted as stale rejections).
    pub fn on_dml(&mut self, table: &str, kind: &DmlKind, result: &DmlResult) {
        let mut invalidated = Vec::new();
        let mut stale = Vec::new();
        for (fp, entry) in self.entries.iter_mut() {
            if entry.table != table {
                // DML on a table an entry recorded as an auxiliary join
                // dependency: the entry's target restriction was computed
                // against the old build/probe side, so it is invalidated
                // outright (the DML rules below only model single-table
                // effects, not how the join output shifts).
                if entry.aux_tables.iter().any(|(t, _)| t == table) {
                    invalidated.push(*fp);
                }
                continue;
            }
            if entry.table_version + 1 != result.new_version {
                stale.push(*fp);
                continue;
            }
            let predicate_hit = matches!(
                kind,
                DmlKind::Update(cols) if cols.iter().any(|c| entry.predicate_columns.contains(c))
            );
            let unsafe_for_topk = match (&entry.kind, kind) {
                (EntryKind::TopK { .. }, DmlKind::Delete) => true,
                (EntryKind::TopK { order_column }, DmlKind::Update(cols)) => {
                    predicate_hit || cols.iter().any(|c| c == order_column)
                }
                _ => false,
            };
            if unsafe_for_topk {
                invalidated.push(*fp);
                continue;
            }
            // Safe DML: rewrite removed partitions to their replacements and
            // append inserted partitions as additional candidates.
            let touched_cached = entry
                .partitions
                .iter()
                .chain(entry.appended.iter())
                .any(|p| result.partitions_removed.contains(p));
            entry
                .partitions
                .retain(|p| !result.partitions_removed.contains(p));
            entry
                .appended
                .retain(|p| !result.partitions_removed.contains(p));
            match kind {
                DmlKind::Insert => {
                    entry
                        .appended
                        .extend(result.partitions_added.iter().copied());
                }
                _ => {
                    // Rewrites: replacement partitions matter when a cached
                    // partition was rewritten — or when the update touched a
                    // predicate column, in which case a rewritten partition
                    // may hold newly-matching rows even though the entry
                    // never referenced it.
                    if touched_cached || predicate_hit {
                        entry
                            .appended
                            .extend(result.partitions_added.iter().copied());
                    }
                }
            }
            entry.table_version = result.new_version;
        }
        for fp in invalidated {
            self.remove_entry(fp);
            self.stats.invalidations += 1;
        }
        for fp in stale {
            self.remove_entry(fp);
            self.stats.stale_rejections += 1;
        }
    }

    /// Drop every entry for a table (e.g. table replaced).
    pub fn invalidate_table(&mut self, table: &str) {
        let doomed: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.table == table)
            .map(|(fp, _)| *fp)
            .collect();
        self.stats.invalidations += doomed.len() as u64;
        for fp in doomed {
            self.remove_entry(fp);
        }
    }
}

/// Every auxiliary table still carries the version the entry recorded.
/// Vacuously true for single-table entries, whatever the resolver.
fn aux_fresh(entry: &CacheEntry, aux_live: &dyn Fn(&str) -> Option<u64>) -> bool {
    entry
        .aux_tables
        .iter()
        .all(|(t, v)| aux_live(t) == Some(*v))
}

/// Cached contributors plus DML-appended partitions, sorted and deduped.
fn replay_set(entry: &CacheEntry) -> Vec<PartitionId> {
    let mut parts = entry.partitions.clone();
    parts.extend(entry.appended.iter().copied());
    parts.sort_unstable();
    parts.dedup();
    parts
}

/// The kind-dependent subsumption rule (range-compare over `Value` bounds).
fn subsumes(kind: &EntryKind, entry: &ShapeKey, query: &ShapeKey) -> bool {
    if entry.ranges.len() != query.ranges.len() {
        return false;
    }
    let columns_align = entry
        .ranges
        .iter()
        .zip(&query.ranges)
        .all(|(e, q)| e.column == q.column);
    if !columns_align {
        return false;
    }
    match kind {
        EntryKind::Filter => entry
            .ranges
            .iter()
            .zip(&query.ranges)
            .all(|(e, q)| e.contains(q)),
        EntryKind::TopK { .. } => {
            let (Some(have), Some(want)) = (entry.need, query.need) else {
                return false;
            };
            have >= want
                && entry
                    .ranges
                    .iter()
                    .zip(&query.ranges)
                    .all(|(e, q)| e.same_interval(q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_types::{LiteralRange, RangeBound, Value};

    fn topk_entry() -> CacheEntry {
        CacheEntry {
            kind: EntryKind::TopK {
                order_column: "num_sightings".into(),
            },
            table: "t".into(),
            partitions: vec![3, 7],
            predicate_columns: Vec::new(),
            table_version: 1,
            appended: Vec::new(),
            shape: None,
            saved_loads: 0,
            aux_tables: Vec::new(),
        }
    }

    fn ge_range(column: &str, lo: i64, inclusive: bool) -> LiteralRange {
        LiteralRange {
            column: column.into(),
            lo: Some(RangeBound {
                value: Value::Int(lo),
                inclusive,
            }),
            hi: None,
        }
    }

    fn filter_shape(lo: i64, inclusive: bool) -> ShapeKey {
        ShapeKey {
            fingerprint: 777,
            ranges: vec![ge_range("w", lo, inclusive)],
            need: None,
        }
    }

    fn shaped_filter_entry(lo: i64, inclusive: bool) -> CacheEntry {
        CacheEntry {
            kind: EntryKind::Filter,
            table: "t".into(),
            partitions: vec![1, 2],
            predicate_columns: vec!["w".into()],
            table_version: 1,
            appended: Vec::new(),
            shape: Some(filter_shape(lo, inclusive)),
            saved_loads: 0,
            aux_tables: Vec::new(),
        }
    }

    fn dml(added: Vec<u64>, removed: Vec<u64>) -> DmlResult {
        dml_at(added, removed, 2)
    }

    /// A DML result advancing the table to `new_version` (consecutive
    /// statements must advance by exactly one, as real tables do).
    fn dml_at(added: Vec<u64>, removed: Vec<u64>, new_version: u64) -> DmlResult {
        DmlResult {
            rows_affected: 1,
            partitions_added: added,
            partitions_removed: removed,
            new_version,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = PredicateCache::new(4);
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        c.insert(1, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Hit(vec![3, 7]));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn stale_version_rejects_and_drops_entry() {
        // A lookup against a table version the entry never saw (DML the
        // cache was not told about) must reject — and keep rejecting.
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        assert_eq!(c.lookup(1, 5), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.stats().hits, 0);
        // Dropped, not retried: even the recorded version now misses.
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn on_dml_drops_entries_that_missed_an_untracked_dml() {
        // Entry recorded at version 1; the table is mutated behind the
        // cache's back (version 1 -> 2), then a *tracked* DML lands
        // (2 -> 3). Stamping the entry with new_version 3 would
        // resynchronize it and serve a replay that misses the untracked
        // statement's partitions — it must be dropped instead.
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry()); // table_version 1
        let tracked = DmlResult {
            rows_affected: 1,
            partitions_added: vec![9],
            partitions_removed: vec![],
            new_version: 3, // implies an unseen version-2 statement
        };
        c.on_dml("t", &DmlKind::Insert, &tracked);
        assert_eq!(c.lookup(1, 3), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn on_dml_keeps_versions_in_sync() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Insert, &dml(vec![9], vec![]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7, 9]));
    }

    #[test]
    fn insert_appends_new_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Insert, &dml(vec![9], vec![]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7, 9]));
    }

    #[test]
    fn delete_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Delete, &dml(vec![10], vec![3]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn update_order_column_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["num_sightings".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
    }

    #[test]
    fn update_predicate_column_invalidates_topk() {
        // Regression companion: a top-k entry whose predicate references
        // `species` cannot survive an UPDATE of `species` — the update may
        // disqualify a cached contributor, loosening the boundary so that a
        // row from a never-cached, never-rewritten partition enters the
        // result.
        let mut c = PredicateCache::new(4);
        let mut e = topk_entry();
        e.predicate_columns = vec!["species".into()];
        c.insert(1, e);
        // The rewritten partition (5) is NOT cached: the old fast path
        // would have treated this as a no-op for the entry.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![11], vec![5]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn update_other_column_rewrites_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Partition 7 rewritten to 10 by an update of a non-ordering column.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 10]));
    }

    #[test]
    fn update_untouched_partition_is_noop_for_entry() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Rewrite of partition 5, which the entry does not reference, by an
        // update of a column the entry's predicate does not reference.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![11], vec![5]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn update_of_predicate_column_appends_replacements_for_filter_entry() {
        // THE regression for the `touched_cached` UPDATE fast-path bug: a
        // filter entry caching partitions {1, 2}; an UPDATE of the
        // predicate column rewrites *non-cached* partition 5 into 9,
        // moving rows into the predicate's range. The old code appended
        // nothing (no cached partition was touched), silently under-
        // scanning; the replacement must now be appended unconditionally.
        let mut c = PredicateCache::new(4);
        c.insert(2, shaped_filter_entry(50, true));
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["w".into()]),
            &dml(vec![9], vec![5]),
        );
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 2, 9]));
        // An update of an unrelated column keeps the old lossless fast
        // path: untouched entry, no appends.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["payload".into()]),
            &dml_at(vec![12], vec![6], 3),
        );
        assert_eq!(c.lookup(2, 3), CacheLookup::Hit(vec![1, 2, 9]));
    }

    #[test]
    fn filter_entries_survive_all_dml() {
        let mut c = PredicateCache::new(4);
        c.insert(
            2,
            CacheEntry {
                kind: EntryKind::Filter,
                table: "t".into(),
                partitions: vec![1, 2],
                predicate_columns: Vec::new(),
                table_version: 1,
                appended: Vec::new(),
                shape: None,
                saved_loads: 0,
                aux_tables: Vec::new(),
            },
        );
        c.on_dml("t", &DmlKind::Delete, &dml(vec![5], vec![2]));
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 5]));
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["x".into()]),
            &dml_at(vec![6], vec![1], 3),
        );
        assert_eq!(c.lookup(2, 3), CacheLookup::Hit(vec![5, 6]));
    }

    #[test]
    fn other_tables_unaffected() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("other", &DmlKind::Delete, &dml(vec![], vec![3]));
        assert_eq!(c.lookup(1, 1), CacheLookup::Hit(vec![3, 7]));
    }

    // ---- auxiliary join dependencies -------------------------------------

    fn aux_entry() -> CacheEntry {
        let mut e = topk_entry();
        e.aux_tables = vec![("dim".into(), 4)];
        e
    }

    #[test]
    fn aux_versions_verified_at_lookup() {
        let mut c = PredicateCache::new(4);
        c.insert(1, aux_entry());
        // Matching auxiliary version: serves.
        let fresh = |t: &str| (t == "dim").then_some(4);
        assert_eq!(
            c.lookup_with_aux(1, None, 1, &fresh),
            CacheLookup::Hit(vec![3, 7])
        );
        // Auxiliary table moved on (version 5): the join's other side
        // changed, the entry is dropped as stale.
        let moved = |t: &str| (t == "dim").then_some(5);
        assert_eq!(c.lookup_with_aux(1, None, 1, &moved), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn aux_entry_rejected_without_resolver() {
        // `lookup`/`lookup_with_shape` cannot verify auxiliary versions, so
        // aux-bearing entries conservatively reject there; aux-free entries
        // are unaffected.
        let mut c = PredicateCache::new(4);
        c.insert(1, aux_entry());
        c.insert(2, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.lookup(2, 1), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn dml_on_aux_table_invalidates_dependent_entry() {
        // THE regression for join-shape admission: an entry over table "t"
        // recorded through a join against "dim" must die when "dim" is
        // mutated, even though the entry's own table never changed.
        let mut c = PredicateCache::new(4);
        c.insert(1, aux_entry());
        c.insert(2, topk_entry()); // no aux: must survive
        c.on_dml("dim", &DmlKind::Insert, &dml(vec![42], vec![]));
        let fresh = |t: &str| (t == "dim").then_some(5);
        assert_eq!(c.lookup_with_aux(1, None, 1, &fresh), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.lookup(2, 1), CacheLookup::Hit(vec![3, 7]));
    }

    // ---- shape-mode subsumption -----------------------------------------

    #[test]
    fn shape_hit_serves_subsumed_filter_range() {
        let mut c = PredicateCache::new(4);
        // Entry for `w >= 50`; query `w >= 60` has a different exact
        // fingerprint but the same shape, and [60, inf) ⊆ [50, inf).
        c.insert(10, shaped_filter_entry(50, true));
        let query = filter_shape(60, true);
        assert_eq!(
            c.lookup_with_shape(99, Some(&query), 1),
            CacheLookup::ShapeHit(vec![1, 2])
        );
        let s = c.stats();
        assert_eq!((s.hits, s.shape_hits, s.misses), (0, 1, 0));
        // The reverse direction must NOT serve: [50, inf) ⊄ [60, inf).
        let mut c = PredicateCache::new(4);
        c.insert(10, shaped_filter_entry(60, true));
        assert_eq!(
            c.lookup_with_shape(99, Some(&filter_shape(50, true)), 1),
            CacheLookup::Miss
        );
        let s = c.stats();
        assert_eq!(
            (s.shape_hits, s.subsumption_rejections, s.misses),
            (0, 1, 1)
        );
    }

    #[test]
    fn shape_hit_equal_boundary_inclusivity() {
        // `w >= 50` entry serves `w > 50` (strictly narrower at the
        // shared endpoint) but `w > 50` must never serve `w >= 50`.
        let mut c = PredicateCache::new(4);
        c.insert(10, shaped_filter_entry(50, true));
        assert_eq!(
            c.lookup_with_shape(99, Some(&filter_shape(50, false)), 1),
            CacheLookup::ShapeHit(vec![1, 2])
        );
        let mut c = PredicateCache::new(4);
        c.insert(10, shaped_filter_entry(50, false));
        assert_eq!(
            c.lookup_with_shape(99, Some(&filter_shape(50, true)), 1),
            CacheLookup::Miss
        );
        assert_eq!(c.stats().subsumption_rejections, 1);
    }

    #[test]
    fn exact_hit_takes_precedence_over_shape() {
        let mut c = PredicateCache::new(4);
        c.insert(10, shaped_filter_entry(50, true));
        let mut wider = shaped_filter_entry(40, true);
        wider.partitions = vec![8, 9];
        c.insert(11, wider);
        // Fingerprint 10 exists: exact hit, even though 11 also subsumes.
        assert_eq!(
            c.lookup_with_shape(10, Some(&filter_shape(50, true)), 1),
            CacheLookup::Hit(vec![1, 2])
        );
        assert_eq!(c.stats().shape_hits, 0);
    }

    fn shaped_topk_entry(need: u64, lo: i64) -> CacheEntry {
        CacheEntry {
            kind: EntryKind::TopK {
                order_column: "v".into(),
            },
            table: "t".into(),
            partitions: vec![3, 7],
            predicate_columns: vec!["w".into()],
            table_version: 1,
            appended: Vec::new(),
            shape: Some(ShapeKey {
                fingerprint: 888,
                ranges: vec![ge_range("w", lo, true)],
                need: Some(need),
            }),
            saved_loads: 0,
            aux_tables: Vec::new(),
        }
    }

    fn topk_shape(need: u64, lo: i64) -> ShapeKey {
        ShapeKey {
            fingerprint: 888,
            ranges: vec![ge_range("w", lo, true)],
            need: Some(need),
        }
    }

    #[test]
    fn topk_shape_hit_requires_equal_ranges_and_covering_k() {
        let mut c = PredicateCache::new(4);
        c.insert(20, shaped_topk_entry(10, 50));
        // Same predicate range, smaller k: the recorded survivors + tie
        // log cover the smaller top-k.
        assert_eq!(
            c.lookup_with_shape(99, Some(&topk_shape(3, 50)), 1),
            CacheLookup::ShapeHit(vec![3, 7])
        );
        // Larger k cannot be served.
        assert_eq!(
            c.lookup_with_shape(98, Some(&topk_shape(12, 50)), 1),
            CacheLookup::Miss
        );
        // A narrower predicate range is NOT sound for top-k even though it
        // would be for a filter entry: the entry ranked its k over a
        // different row set.
        assert_eq!(
            c.lookup_with_shape(97, Some(&topk_shape(3, 60)), 1),
            CacheLookup::Miss
        );
        assert_eq!(c.stats().subsumption_rejections, 2);
        assert_eq!(c.stats().shape_hits, 1);
    }

    #[test]
    fn stale_shape_candidate_dropped_and_live_one_serves() {
        let mut c = PredicateCache::new(4);
        let mut stale = shaped_filter_entry(40, true);
        stale.table_version = 1;
        c.insert(30, stale);
        let mut live = shaped_filter_entry(45, true);
        live.table_version = 2;
        live.partitions = vec![5];
        c.insert(31, live);
        // At live version 2, candidate 30 is stale (dropped, counted) and
        // candidate 31 serves.
        assert_eq!(
            c.lookup_with_shape(99, Some(&filter_shape(60, true)), 2),
            CacheLookup::ShapeHit(vec![5])
        );
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dml_invalidates_shape_serving_topk_while_exact_filter_survives() {
        // A top-k entry serving shape lookups is invalidated by DELETE; a
        // filter entry for the same table keeps serving its exact
        // fingerprint, and the shape lookup that used to hit now misses.
        let mut c = PredicateCache::new(4);
        c.insert(20, shaped_topk_entry(10, 50));
        c.insert(2, shaped_filter_entry(50, true));
        assert_eq!(
            c.lookup_with_shape(99, Some(&topk_shape(3, 50)), 1),
            CacheLookup::ShapeHit(vec![3, 7])
        );
        c.on_dml("t", &DmlKind::Delete, &dml(vec![], vec![3]));
        assert_eq!(
            c.lookup_with_shape(99, Some(&topk_shape(3, 50)), 2),
            CacheLookup::Miss,
            "DELETE must invalidate the shape-serving top-k entry"
        );
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 2]));
        assert_eq!(c.stats().invalidations, 1);
    }

    // ---- eviction policy -------------------------------------------------

    #[test]
    fn never_hit_entries_evict_in_insertion_order() {
        // With no hits and equal cost, the policy degenerates to FIFO.
        let mut c = PredicateCache::new(2);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.insert(3, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(2, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(3, 1), CacheLookup::Miss);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_hit_recency_protects_hot_entries() {
        let mut c = PredicateCache::new(2);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        // Hit 1: it becomes the protected entry even though it is older.
        assert_ne!(c.lookup(1, 1), CacheLookup::Miss);
        c.insert(3, topk_entry());
        assert_eq!(c.lookup(2, 1), CacheLookup::Miss, "cold entry evicted");
        assert_ne!(c.lookup(1, 1), CacheLookup::Miss, "hot entry retained");
        assert_ne!(c.lookup(3, 1), CacheLookup::Miss);
        // Least-*recently* hit goes first among hit entries: 1 was hit
        // before 3, so inserting 4 evicts 1.
        c.insert(4, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(3, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(4, 1), CacheLookup::Miss);
    }

    #[test]
    fn cost_breaks_ties_among_never_hit_entries() {
        // Among never-hit entries, the one whose partition set saved the
        // fewest loads evicts first — regardless of insertion order.
        let mut c = PredicateCache::new(2);
        let with_cost = |saved: u64| {
            let mut e = topk_entry();
            e.saved_loads = saved;
            e
        };
        c.insert(1, with_cost(10));
        c.insert(2, with_cost(0));
        c.insert(3, with_cost(5));
        // Victim among {1 (saved 10), 2 (saved 0)}: 2.
        assert_eq!(c.lookup(2, 1), CacheLookup::Miss);
        // 1 and 3 survive; next insert evicts 3 (saved 5 < 10) even though
        // 1 is the oldest.
        c.insert(4, with_cost(0));
        assert_eq!(c.lookup(3, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(1, 1), CacheLookup::Miss);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn reinsert_refreshes_entry_and_resets_recency() {
        let mut c = PredicateCache::new(3);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.insert(3, topk_entry());
        // Re-record 1: fresh recording, never hit — but newest seq, so 2 is
        // now the oldest never-hit entry and evicts first.
        c.insert(1, topk_entry());
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 0);
        c.insert(4, topk_entry());
        assert_eq!(c.lookup(2, 1), CacheLookup::Miss, "2 evicted first");
        assert_ne!(c.lookup(1, 1), CacheLookup::Miss, "re-inserted 1 retained");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn evicted_shape_entry_leaves_no_dangling_index() {
        let mut c = PredicateCache::new(1);
        c.insert(10, shaped_filter_entry(50, true));
        c.insert(11, shaped_filter_entry(40, true));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 1);
        // Entry 10 is gone; only 11 can serve the shape lookup.
        assert_eq!(
            c.lookup_with_shape(99, Some(&filter_shape(60, true)), 1),
            CacheLookup::ShapeHit(vec![1, 2])
        );
        assert_eq!(c.stats().shape_hits, 1);
    }

    #[test]
    fn invalidate_table_drops_all() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.invalidate_table("t");
        assert!(c.is_empty());
        // Eviction bookkeeping stays consistent after the wipe.
        c.insert(3, topk_entry());
        c.insert(4, topk_entry());
        c.insert(5, topk_entry());
        c.insert(6, topk_entry());
        assert_eq!(c.len(), 4);
    }
}
