//! The predicate cache proper.

use std::collections::{HashMap, VecDeque};

use snowprune_storage::{DmlResult, PartitionId};

/// What kind of result the entry caches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Partitions containing rows matching a filter predicate.
    Filter,
    /// Partitions contributing rows to a top-k result over this ordering
    /// column.
    TopK { order_column: String },
}

/// A cached contributing-partition set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    pub kind: EntryKind,
    pub table: String,
    /// Contributing partitions at record time.
    pub partitions: Vec<PartitionId>,
    /// Column names referenced by the plan's predicates. An UPDATE that
    /// touches any of these can move rows *into* the predicate's range
    /// inside a partition the entry never referenced, so such updates may
    /// not take the cached-partitions-only fast path (see [`Self::on_dml`]
    /// via [`PredicateCache::on_dml`]).
    pub predicate_columns: Vec<String>,
    /// Table version the entry was recorded at.
    pub table_version: u64,
    /// Partitions added by later (safe) DML, appended at lookup time.
    pub appended: Vec<PartitionId>,
}

/// Lookup outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    Miss,
    /// The partitions to scan: cached contributors plus any partitions
    /// added since (INSERT safety).
    Hit(Vec<PartitionId>),
}

/// Classified DML statements, as the cache needs to distinguish them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmlKind {
    Insert,
    Delete,
    /// Updated column names.
    Update(Vec<String>),
}

/// Hit/miss/invalidation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub invalidations: u64,
    pub evictions: u64,
    /// Lookups rejected (and entries dropped) because the entry's recorded
    /// `table_version` no longer matches the live table — DML happened that
    /// the cache was never told about. Counted as misses, never as hits.
    pub stale_rejections: u64,
}

/// A bounded predicate cache keyed by exact plan fingerprints
/// (`snowprune_plan::fingerprint` with [`snowprune_plan::FingerprintMode::Exact`]).
#[derive(Debug)]
pub struct PredicateCache {
    capacity: usize,
    entries: HashMap<u64, CacheEntry>,
    /// First-insertion order for FIFO eviction (front = oldest). A
    /// re-insert of an existing fingerprint keeps its original slot.
    order: VecDeque<u64>,
    stats: CacheStats,
}

impl PredicateCache {
    pub fn new(capacity: usize) -> Self {
        PredicateCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a fingerprint against the live version of the entry's table.
    /// A hit returns the partitions to scan. An entry whose recorded
    /// `table_version` does not match `live_version` is unsound to replay
    /// (it missed at least one DML notification): it is dropped and the
    /// lookup counts as a stale rejection, not a hit.
    pub fn lookup(&mut self, fingerprint: u64, live_version: u64) -> CacheLookup {
        match self.entries.get(&fingerprint) {
            Some(entry) if entry.table_version != live_version => {
                self.entries.remove(&fingerprint);
                self.order.retain(|f| *f != fingerprint);
                self.stats.stale_rejections += 1;
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(entry) => {
                self.stats.hits += 1;
                let mut parts = entry.partitions.clone();
                parts.extend(entry.appended.iter().copied());
                parts.sort_unstable();
                parts.dedup();
                CacheLookup::Hit(parts)
            }
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Record an entry (evicting FIFO when over capacity).
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        if self.entries.insert(fingerprint, entry).is_none() {
            self.order.push_back(fingerprint);
        }
        self.stats.insertions += 1;
        while self.entries.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    /// Apply a DML statement's effect to all entries of `table`, following
    /// the §8.2 correctness rules:
    ///
    /// * INSERT appends the new partitions to every entry (new rows may
    ///   enter any result).
    /// * DELETE invalidates top-k entries (the replacement k+1-th row may
    ///   live outside the cached partitions); filter entries just rewrite
    ///   removed partitions.
    /// * UPDATE of the ordering column — or of any column the entry's
    ///   predicate references — invalidates top-k entries: the update can
    ///   change which rows qualify or how they rank, and the new boundary
    ///   row may live in a never-cached, never-rewritten partition.
    /// * UPDATE touching a filter entry's predicate columns appends the
    ///   replacement partitions *unconditionally*: even when no cached
    ///   partition was rewritten, the update may have moved rows into the
    ///   predicate's range inside a previously non-matching partition.
    /// * All other updates (and filter-entry deletes) rewrite removed
    ///   partitions to their replacements only when a cached partition was
    ///   actually touched — untouched partitions keep their predicate
    ///   status, so adding replacements would be needlessly lossy.
    pub fn on_dml(&mut self, table: &str, kind: &DmlKind, result: &DmlResult) {
        let mut invalidated = Vec::new();
        for (fp, entry) in self.entries.iter_mut() {
            if entry.table != table {
                continue;
            }
            let predicate_hit = matches!(
                kind,
                DmlKind::Update(cols) if cols.iter().any(|c| entry.predicate_columns.contains(c))
            );
            let unsafe_for_topk = match (&entry.kind, kind) {
                (EntryKind::TopK { .. }, DmlKind::Delete) => true,
                (EntryKind::TopK { order_column }, DmlKind::Update(cols)) => {
                    predicate_hit || cols.iter().any(|c| c == order_column)
                }
                _ => false,
            };
            if unsafe_for_topk {
                invalidated.push(*fp);
                continue;
            }
            // Safe DML: rewrite removed partitions to their replacements and
            // append inserted partitions as additional candidates.
            let touched_cached = entry
                .partitions
                .iter()
                .chain(entry.appended.iter())
                .any(|p| result.partitions_removed.contains(p));
            entry
                .partitions
                .retain(|p| !result.partitions_removed.contains(p));
            entry
                .appended
                .retain(|p| !result.partitions_removed.contains(p));
            match kind {
                DmlKind::Insert => {
                    entry
                        .appended
                        .extend(result.partitions_added.iter().copied());
                }
                _ => {
                    // Rewrites: replacement partitions matter when a cached
                    // partition was rewritten — or when the update touched a
                    // predicate column, in which case a rewritten partition
                    // may hold newly-matching rows even though the entry
                    // never referenced it.
                    if touched_cached || predicate_hit {
                        entry
                            .appended
                            .extend(result.partitions_added.iter().copied());
                    }
                }
            }
            entry.table_version = result.new_version;
        }
        for fp in invalidated {
            self.entries.remove(&fp);
            self.order.retain(|f| *f != fp);
            self.stats.invalidations += 1;
        }
    }

    /// Drop every entry for a table (e.g. table replaced).
    pub fn invalidate_table(&mut self, table: &str) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.table != table);
        let entries = &self.entries;
        self.order.retain(|fp| entries.contains_key(fp));
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk_entry() -> CacheEntry {
        CacheEntry {
            kind: EntryKind::TopK {
                order_column: "num_sightings".into(),
            },
            table: "t".into(),
            partitions: vec![3, 7],
            predicate_columns: Vec::new(),
            table_version: 1,
            appended: Vec::new(),
        }
    }

    fn dml(added: Vec<u64>, removed: Vec<u64>) -> DmlResult {
        DmlResult {
            rows_affected: 1,
            partitions_added: added,
            partitions_removed: removed,
            new_version: 2,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = PredicateCache::new(4);
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        c.insert(1, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Hit(vec![3, 7]));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn stale_version_rejects_and_drops_entry() {
        // A lookup against a table version the entry never saw (DML the
        // cache was not told about) must reject — and keep rejecting.
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        assert_eq!(c.lookup(1, 5), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert_eq!(c.stats().hits, 0);
        // Dropped, not retried: even the recorded version now misses.
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_eq!(c.stats().stale_rejections, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn on_dml_keeps_versions_in_sync() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Insert, &dml(vec![9], vec![]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7, 9]));
    }

    #[test]
    fn insert_appends_new_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Insert, &dml(vec![9], vec![]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7, 9]));
    }

    #[test]
    fn delete_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Delete, &dml(vec![10], vec![3]));
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn update_order_column_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["num_sightings".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
    }

    #[test]
    fn update_predicate_column_invalidates_topk() {
        // Regression companion: a top-k entry whose predicate references
        // `species` cannot survive an UPDATE of `species` — the update may
        // disqualify a cached contributor, loosening the boundary so that a
        // row from a never-cached, never-rewritten partition enters the
        // result.
        let mut c = PredicateCache::new(4);
        let mut e = topk_entry();
        e.predicate_columns = vec!["species".into()];
        c.insert(1, e);
        // The rewritten partition (5) is NOT cached: the old fast path
        // would have treated this as a no-op for the entry.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![11], vec![5]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn update_other_column_rewrites_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Partition 7 rewritten to 10 by an update of a non-ordering column.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 10]));
    }

    #[test]
    fn update_untouched_partition_is_noop_for_entry() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Rewrite of partition 5, which the entry does not reference, by an
        // update of a column the entry's predicate does not reference.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![11], vec![5]),
        );
        assert_eq!(c.lookup(1, 2), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn update_of_predicate_column_appends_replacements_for_filter_entry() {
        // THE regression for the `touched_cached` UPDATE fast-path bug: a
        // filter entry caching partitions {1, 2}; an UPDATE of the
        // predicate column rewrites *non-cached* partition 5 into 9,
        // moving rows into the predicate's range. The old code appended
        // nothing (no cached partition was touched), silently under-
        // scanning; the replacement must now be appended unconditionally.
        let mut c = PredicateCache::new(4);
        c.insert(
            2,
            CacheEntry {
                kind: EntryKind::Filter,
                table: "t".into(),
                partitions: vec![1, 2],
                predicate_columns: vec!["w".into()],
                table_version: 1,
                appended: Vec::new(),
            },
        );
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["w".into()]),
            &dml(vec![9], vec![5]),
        );
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 2, 9]));
        // An update of an unrelated column keeps the old lossless fast
        // path: untouched entry, no appends.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["payload".into()]),
            &dml(vec![12], vec![6]),
        );
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 2, 9]));
    }

    #[test]
    fn filter_entries_survive_all_dml() {
        let mut c = PredicateCache::new(4);
        c.insert(
            2,
            CacheEntry {
                kind: EntryKind::Filter,
                table: "t".into(),
                partitions: vec![1, 2],
                predicate_columns: Vec::new(),
                table_version: 1,
                appended: Vec::new(),
            },
        );
        c.on_dml("t", &DmlKind::Delete, &dml(vec![5], vec![2]));
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![1, 5]));
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["x".into()]),
            &dml(vec![6], vec![1]),
        );
        assert_eq!(c.lookup(2, 2), CacheLookup::Hit(vec![5, 6]));
    }

    #[test]
    fn other_tables_unaffected() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("other", &DmlKind::Delete, &dml(vec![], vec![3]));
        assert_eq!(c.lookup(1, 1), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = PredicateCache::new(2);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.insert(3, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(2, 1), CacheLookup::Miss);
        assert_ne!(c.lookup(3, 1), CacheLookup::Miss);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_order_is_first_insertion_even_after_reinsert() {
        // Pins the FIFO policy across the Vec -> VecDeque switch:
        // re-inserting fingerprint 1 must NOT refresh its eviction slot —
        // order is by *first* insertion, so 1 is still the oldest and the
        // next overflow evicts it (then 2, then 3).
        let mut c = PredicateCache::new(3);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.insert(3, topk_entry());
        c.insert(1, topk_entry()); // refresh contents, keep slot
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 0);
        c.insert(4, topk_entry());
        assert_eq!(c.lookup(1, 1), CacheLookup::Miss, "1 evicted first");
        assert_ne!(c.lookup(2, 1), CacheLookup::Miss);
        c.insert(5, topk_entry());
        assert_eq!(c.lookup(2, 1), CacheLookup::Miss, "then 2");
        for fp in [3u64, 4, 5] {
            assert_ne!(c.lookup(fp, 1), CacheLookup::Miss, "fp {fp} retained");
        }
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn invalidate_table_drops_all() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.invalidate_table("t");
        assert!(c.is_empty());
        // Eviction bookkeeping stays consistent after the wipe.
        c.insert(3, topk_entry());
        c.insert(4, topk_entry());
        c.insert(5, topk_entry());
        c.insert(6, topk_entry());
        assert_eq!(c.len(), 4);
    }
}
