//! The predicate cache proper.

use std::collections::HashMap;

use snowprune_storage::{DmlResult, PartitionId};

/// What kind of result the entry caches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// Partitions containing rows matching a filter predicate.
    Filter,
    /// Partitions contributing rows to a top-k result over this ordering
    /// column.
    TopK { order_column: String },
}

/// A cached contributing-partition set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    pub kind: EntryKind,
    pub table: String,
    /// Contributing partitions at record time.
    pub partitions: Vec<PartitionId>,
    /// Table version the entry was recorded at.
    pub table_version: u64,
    /// Partitions added by later (safe) DML, appended at lookup time.
    pub appended: Vec<PartitionId>,
}

/// Lookup outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    Miss,
    /// The partitions to scan: cached contributors plus any partitions
    /// added since (INSERT safety).
    Hit(Vec<PartitionId>),
}

/// Classified DML statements, as the cache needs to distinguish them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmlKind {
    Insert,
    Delete,
    /// Updated column names.
    Update(Vec<String>),
}

/// Hit/miss/invalidation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub invalidations: u64,
    pub evictions: u64,
}

/// A bounded predicate cache keyed by exact plan fingerprints
/// (`snowprune_plan::fingerprint` with [`snowprune_plan::FingerprintMode::Exact`]).
#[derive(Debug)]
pub struct PredicateCache {
    capacity: usize,
    entries: HashMap<u64, CacheEntry>,
    /// Insertion order for FIFO eviction.
    order: Vec<u64>,
    stats: CacheStats,
}

impl PredicateCache {
    pub fn new(capacity: usize) -> Self {
        PredicateCache {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            order: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a fingerprint. A hit returns the partitions to scan.
    pub fn lookup(&mut self, fingerprint: u64) -> CacheLookup {
        match self.entries.get(&fingerprint) {
            Some(entry) => {
                self.stats.hits += 1;
                let mut parts = entry.partitions.clone();
                parts.extend(entry.appended.iter().copied());
                parts.sort_unstable();
                parts.dedup();
                CacheLookup::Hit(parts)
            }
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
        }
    }

    /// Record an entry (evicting FIFO when over capacity).
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        if self.entries.insert(fingerprint, entry).is_none() {
            self.order.push(fingerprint);
        }
        self.stats.insertions += 1;
        while self.entries.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    /// Apply a DML statement's effect to all entries of `table`, following
    /// the §8.2 correctness rules.
    pub fn on_dml(&mut self, table: &str, kind: &DmlKind, result: &DmlResult) {
        let mut invalidated = Vec::new();
        for (fp, entry) in self.entries.iter_mut() {
            if entry.table != table {
                continue;
            }
            let unsafe_for_topk = match (&entry.kind, kind) {
                (EntryKind::TopK { .. }, DmlKind::Delete) => true,
                (EntryKind::TopK { order_column }, DmlKind::Update(cols)) => {
                    cols.iter().any(|c| c == order_column)
                }
                _ => false,
            };
            if unsafe_for_topk {
                invalidated.push(*fp);
                continue;
            }
            // Safe DML: rewrite removed partitions to their replacements and
            // append inserted partitions as additional candidates.
            let touched_cached = entry
                .partitions
                .iter()
                .chain(entry.appended.iter())
                .any(|p| result.partitions_removed.contains(p));
            entry
                .partitions
                .retain(|p| !result.partitions_removed.contains(p));
            entry
                .appended
                .retain(|p| !result.partitions_removed.contains(p));
            match kind {
                DmlKind::Insert => {
                    entry
                        .appended
                        .extend(result.partitions_added.iter().copied());
                }
                _ => {
                    // Rewrites: the replacement partitions matter only if a
                    // cached partition was rewritten; adding them otherwise
                    // would be correct but needlessly lossy.
                    if touched_cached {
                        entry
                            .appended
                            .extend(result.partitions_added.iter().copied());
                    }
                }
            }
            entry.table_version = result.new_version;
        }
        for fp in invalidated {
            self.entries.remove(&fp);
            self.order.retain(|f| *f != fp);
            self.stats.invalidations += 1;
        }
    }

    /// Drop every entry for a table (e.g. table replaced).
    pub fn invalidate_table(&mut self, table: &str) {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.table != table);
        self.order = self
            .order
            .iter()
            .copied()
            .filter(|fp| self.entries.contains_key(fp))
            .collect();
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topk_entry() -> CacheEntry {
        CacheEntry {
            kind: EntryKind::TopK {
                order_column: "num_sightings".into(),
            },
            table: "t".into(),
            partitions: vec![3, 7],
            table_version: 1,
            appended: Vec::new(),
        }
    }

    fn dml(added: Vec<u64>, removed: Vec<u64>) -> DmlResult {
        DmlResult {
            rows_affected: 1,
            partitions_added: added,
            partitions_removed: removed,
            new_version: 2,
        }
    }

    #[test]
    fn hit_and_miss() {
        let mut c = PredicateCache::new(4);
        assert_eq!(c.lookup(1), CacheLookup::Miss);
        c.insert(1, topk_entry());
        assert_eq!(c.lookup(1), CacheLookup::Hit(vec![3, 7]));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn insert_appends_new_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Insert, &dml(vec![9], vec![]));
        assert_eq!(c.lookup(1), CacheLookup::Hit(vec![3, 7, 9]));
    }

    #[test]
    fn delete_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("t", &DmlKind::Delete, &dml(vec![10], vec![3]));
        assert_eq!(c.lookup(1), CacheLookup::Miss);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn update_order_column_invalidates_topk() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["num_sightings".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1), CacheLookup::Miss);
    }

    #[test]
    fn update_other_column_rewrites_partitions() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Partition 7 rewritten to 10 by an update of a non-ordering column.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![10], vec![7]),
        );
        assert_eq!(c.lookup(1), CacheLookup::Hit(vec![3, 10]));
    }

    #[test]
    fn update_untouched_partition_is_noop_for_entry() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        // Rewrite of partition 5, which the entry does not reference.
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["species".into()]),
            &dml(vec![11], vec![5]),
        );
        assert_eq!(c.lookup(1), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn filter_entries_survive_all_dml() {
        let mut c = PredicateCache::new(4);
        c.insert(
            2,
            CacheEntry {
                kind: EntryKind::Filter,
                table: "t".into(),
                partitions: vec![1, 2],
                table_version: 1,
                appended: Vec::new(),
            },
        );
        c.on_dml("t", &DmlKind::Delete, &dml(vec![5], vec![2]));
        assert_eq!(c.lookup(2), CacheLookup::Hit(vec![1, 5]));
        c.on_dml(
            "t",
            &DmlKind::Update(vec!["x".into()]),
            &dml(vec![6], vec![1]),
        );
        assert_eq!(c.lookup(2), CacheLookup::Hit(vec![5, 6]));
    }

    #[test]
    fn other_tables_unaffected() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.on_dml("other", &DmlKind::Delete, &dml(vec![], vec![3]));
        assert_eq!(c.lookup(1), CacheLookup::Hit(vec![3, 7]));
    }

    #[test]
    fn fifo_eviction() {
        let mut c = PredicateCache::new(2);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.insert(3, topk_entry());
        assert_eq!(c.lookup(1), CacheLookup::Miss);
        assert_ne!(c.lookup(2), CacheLookup::Miss);
        assert_ne!(c.lookup(3), CacheLookup::Miss);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_table_drops_all() {
        let mut c = PredicateCache::new(4);
        c.insert(1, topk_entry());
        c.insert(2, topk_entry());
        c.invalidate_table("t");
        assert!(c.is_empty());
    }
}
