//! Metadata-only expression evaluation: the machinery of §3.1.
//!
//! Two mutually recursive analyses over an expression and the zone maps of
//! one micro-partition:
//!
//! * [`derive_range`] — the image of a *value* expression as a
//!   [`ValueRange`] ("every function must provide a mechanism to derive
//!   transformed min/max ranges from its input").
//! * [`prune_eval`] — the [`Verdict`] of a *predicate*: conservative facts
//!   about the truth values it takes across the partition's rows.
//!
//! Everything here must be conservative: `!may_true` ⇒ the partition truly
//! contains no qualifying row, and `all_true` ⇒ every row truly qualifies.
//! These invariants are property-tested in `tests/prop_pruning.rs`.

use std::cmp::Ordering;

use snowprune_types::{Value, ValueRange, Verdict, ZoneMap};

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::rewrite::{analyze_like, prefix_successor, LikeShape};

/// Derive the possible value range of `expr` on a partition described by
/// `meta` (one zone map per schema column, indexed by bound column index).
pub fn derive_range(expr: &Expr, meta: &[ZoneMap]) -> ValueRange {
    match expr {
        Expr::Literal(v) => {
            if v.is_null() {
                ValueRange::null()
            } else {
                ValueRange::point(v.clone())
            }
        }
        Expr::Column(c) => ValueRange::from_zone_map(&meta[c.index]),
        Expr::Arith(op, a, b) => {
            let (ra, rb) = (derive_range(a, meta), derive_range(b, meta));
            match op {
                ArithOp::Add => ra.add(&rb),
                ArithOp::Sub => ra.sub(&rb),
                ArithOp::Mul => ra.mul(&rb),
                ArithOp::Div => ra.div(&rb),
            }
        }
        Expr::Neg(x) => derive_range(x, meta).neg(),
        Expr::Abs(x) => abs_range(&derive_range(x, meta)),
        Expr::If(cond, then, els) => {
            // §3.1: conservatively union both branches; if metadata proves
            // the condition always (or never) holds, use only one branch.
            let vc = prune_eval(cond, meta);
            let rt = derive_range(then, meta);
            let re = derive_range(els, meta);
            if vc.all_true {
                rt
            } else if !vc.may_true {
                // Rows where the condition is FALSE *or* NULL take `else`.
                re
            } else {
                rt.union(&re)
            }
        }
        Expr::Coalesce(xs) => {
            let mut acc: Option<ValueRange> = None;
            let mut may_null = true;
            let mut all_null = true;
            for x in xs {
                let r = derive_range(x, meta);
                may_null &= r.may_null;
                all_null &= r.all_null;
                acc = Some(match acc {
                    None => r,
                    Some(prev) => prev.union(&r),
                });
                if !may_null {
                    break;
                }
            }
            let mut r = acc.unwrap_or_else(ValueRange::null);
            r.may_null = may_null;
            r.all_null = all_null;
            r
        }
        // Boolean-valued expressions: summarize the verdict as a bool range.
        Expr::Cmp(..)
        | Expr::And(_)
        | Expr::Or(_)
        | Expr::Not(_)
        | Expr::IsNull(_)
        | Expr::Like(..)
        | Expr::StartsWith(..)
        | Expr::InList(..) => bool_range(prune_eval(expr, meta)),
    }
}

fn abs_range(r: &ValueRange) -> ValueRange {
    let zero = Value::Int(0);
    if r.certainly_ge(&zero) {
        return r.clone();
    }
    if r.certainly_le(&zero) {
        return r.neg();
    }
    // Straddles zero: [0, max(|lo|, |hi|)]; either side may be unbounded.
    let hi = match (&r.lo, &r.hi) {
        (Some(lo), Some(hi)) => {
            let nlo = snowprune_types::arith::neg(lo).unwrap_or(Value::Null);
            if nlo.is_null() || hi.is_null() {
                None
            } else {
                match nlo.sql_cmp(hi) {
                    Some(Ordering::Greater) => Some(nlo),
                    Some(_) => Some(hi.clone()),
                    None => None,
                }
            }
        }
        _ => None,
    };
    ValueRange {
        lo: Some(zero),
        hi,
        may_null: r.may_null,
        all_null: r.all_null,
    }
}

fn bool_range(v: Verdict) -> ValueRange {
    let lo = if v.may_false {
        Value::Bool(false)
    } else {
        Value::Bool(true)
    };
    let hi = if v.may_true {
        Value::Bool(true)
    } else {
        Value::Bool(false)
    };
    // may be UNKNOWN (NULL) when neither "all" fact holds.
    let may_null = !(v.all_true || v.all_false);
    ValueRange {
        lo: Some(lo),
        hi: Some(hi),
        may_null,
        all_null: !v.may_true && !v.may_false && may_null,
    }
}

/// Evaluate a predicate against partition metadata, yielding a [`Verdict`].
pub fn prune_eval(expr: &Expr, meta: &[ZoneMap]) -> Verdict {
    match expr {
        Expr::Literal(Value::Bool(true)) => Verdict::ALWAYS_TRUE,
        Expr::Literal(Value::Bool(false)) => Verdict::ALWAYS_FALSE,
        Expr::Literal(Value::Null) => Verdict::ALWAYS_UNKNOWN,
        Expr::Literal(_) => Verdict::TOP,
        Expr::Column(c) => {
            // A bare boolean column as predicate.
            let r = ValueRange::from_zone_map(&meta[c.index]);
            if r.all_null {
                return Verdict::ALWAYS_UNKNOWN;
            }
            let t = Value::Bool(true);
            let f = Value::Bool(false);
            leaf_verdict(
                r.possibly_eq(&t),
                r.certainly_eq(&t),
                r.possibly_eq(&f),
                r.certainly_eq(&f),
                r.may_null,
            )
        }
        Expr::And(xs) => xs
            .iter()
            .map(|x| prune_eval(x, meta))
            .fold(Verdict::ALWAYS_TRUE, Verdict::and),
        Expr::Or(xs) => xs
            .iter()
            .map(|x| prune_eval(x, meta))
            .fold(Verdict::ALWAYS_FALSE, Verdict::or),
        Expr::Not(x) => prune_eval(x, meta).not(),
        Expr::IsNull(x) => {
            let r = derive_range(x, meta);
            Verdict {
                may_true: r.may_null,
                all_true: r.all_null,
                may_false: !r.all_null,
                all_false: !r.may_null,
            }
        }
        Expr::Cmp(op, a, b) => {
            let (ra, rb) = (derive_range(a, meta), derive_range(b, meta));
            cmp_verdict(*op, &ra, &rb)
        }
        Expr::Like(x, pattern) => like_verdict(x, pattern, meta),
        Expr::StartsWith(x, prefix) => prefix_verdict(&derive_range(x, meta), prefix, true),
        Expr::InList(x, vals) => in_list_verdict(&derive_range(x, meta), vals),
        Expr::If(c, t, e) => {
            let vc = prune_eval(c, meta);
            let vt = prune_eval(t, meta);
            let ve = prune_eval(e, meta);
            if_verdict(vc, vt, ve)
        }
        // Value-typed nodes used as predicates: no information.
        Expr::Arith(..) | Expr::Neg(_) | Expr::Abs(_) | Expr::Coalesce(_) => Verdict::TOP,
    }
}

/// Assemble a verdict from truth-possibility facts at a leaf.
/// `may_t`/`all_t` ignore NULL; NULL possibility strips the "all" claims.
fn leaf_verdict(may_t: bool, all_t: bool, may_f: bool, all_f: bool, may_null: bool) -> Verdict {
    Verdict {
        may_true: may_t,
        all_true: all_t && !may_null,
        may_false: may_f,
        all_false: all_f && !may_null,
    }
}

fn cmp_verdict(op: CmpOp, a: &ValueRange, b: &ValueRange) -> Verdict {
    if a.all_null || b.all_null {
        return Verdict::ALWAYS_UNKNOWN;
    }
    let may_null = a.may_null || b.may_null;
    let (may_t, all_t) = (exists_pair(op, a, b), forall_pair(op, a, b));
    let neg = op.negate();
    let (may_f, all_f) = (exists_pair(neg, a, b), forall_pair(neg, a, b));
    leaf_verdict(may_t, all_t, may_f, all_f, may_null)
}

/// ∃ a ∈ A, b ∈ B (non-null) with `a op b`? Conservative `true` on
/// incomparable or unbounded inputs.
fn exists_pair(op: CmpOp, a: &ValueRange, b: &ValueRange) -> bool {
    match op {
        CmpOp::Lt => {
            cmp_bounds(&a.lo, &b.hi) != Some(Ordering::Greater)
                && cmp_bounds(&a.lo, &b.hi) != Some(Ordering::Equal)
        }
        CmpOp::Le => cmp_bounds(&a.lo, &b.hi) != Some(Ordering::Greater),
        CmpOp::Gt => {
            cmp_bounds(&a.hi, &b.lo) != Some(Ordering::Less)
                && cmp_bounds(&a.hi, &b.lo) != Some(Ordering::Equal)
        }
        CmpOp::Ge => cmp_bounds(&a.hi, &b.lo) != Some(Ordering::Less),
        CmpOp::Eq => a.overlaps(b),
        CmpOp::Ne => !forall_pair(CmpOp::Eq, a, b),
    }
}

/// ∀ a ∈ A, b ∈ B (non-null): `a op b`? Conservative `false`.
fn forall_pair(op: CmpOp, a: &ValueRange, b: &ValueRange) -> bool {
    match op {
        CmpOp::Lt => cmp_bounds(&a.hi, &b.lo) == Some(Ordering::Less),
        CmpOp::Le => matches!(
            cmp_bounds(&a.hi, &b.lo),
            Some(Ordering::Less | Ordering::Equal)
        ),
        CmpOp::Gt => cmp_bounds(&a.lo, &b.hi) == Some(Ordering::Greater),
        CmpOp::Ge => matches!(
            cmp_bounds(&a.lo, &b.hi),
            Some(Ordering::Greater | Ordering::Equal)
        ),
        CmpOp::Eq => {
            // Both ranges the same single point.
            matches!(
                (
                    cmp_bounds(&a.lo, &a.hi),
                    cmp_bounds(&b.lo, &b.hi),
                    cmp_bounds(&a.lo, &b.lo)
                ),
                (
                    Some(Ordering::Equal),
                    Some(Ordering::Equal),
                    Some(Ordering::Equal)
                )
            )
        }
        CmpOp::Ne => !a.overlaps(b),
    }
}

/// Compare two optional bounds; `None` (unbounded or incomparable types)
/// yields `None`, which callers must treat conservatively.
fn cmp_bounds(a: &Option<Value>, b: &Option<Value>) -> Option<Ordering> {
    match (a, b) {
        (Some(x), Some(y)) => x.sql_cmp(y),
        _ => None,
    }
}

fn like_verdict(x: &Expr, pattern: &str, meta: &[ZoneMap]) -> Verdict {
    let r = derive_range(x, meta);
    if r.all_null {
        return Verdict::ALWAYS_UNKNOWN;
    }
    match analyze_like(pattern) {
        LikeShape::Exact(s) => cmp_verdict(CmpOp::Eq, &r, &ValueRange::point(Value::Str(s))),
        LikeShape::Prefix(p) => prefix_verdict(&r, &p, true),
        // Widened: the prefix region over-approximates matches, so only the
        // may_true/all_false facts carry over; all_true must not (§3.1:
        // widening relaxes the suffix constraint).
        LikeShape::WidenedPrefix(p) => {
            let v = prefix_verdict(&r, &p, false);
            Verdict {
                all_true: false,
                ..v
            }
        }
        LikeShape::Opaque => leaf_verdict(true, false, true, false, r.may_null),
    }
}

/// Verdict for `expr STARTSWITH prefix` given the expression's range.
/// `exact` marks that the predicate *is* the prefix test (not a widened
/// stand-in), enabling the all_true claim.
fn prefix_verdict(r: &ValueRange, prefix: &str, exact: bool) -> Verdict {
    if r.all_null {
        return Verdict::ALWAYS_UNKNOWN;
    }
    let p = Value::Str(prefix.to_owned());
    let succ = prefix_successor(prefix).map(Value::Str);
    // may_true: [min, max] intersects [prefix, succ(prefix)).
    let below = match &succ {
        Some(s) => r.certainly_ge(s),
        None => false,
    };
    let may_t = r.possibly_ge(&p) && !below && string_possible(r);
    // all_true: min >= prefix and max < succ (every string in between
    // starts with the prefix).
    let all_t = exact && r.certainly_ge(&p) && succ.as_ref().is_some_and(|s| r.certainly_lt(s));
    leaf_verdict(may_t, all_t, !all_t, !may_t, r.may_null)
}

/// Whether a range can contain string values at all.
fn string_possible(r: &ValueRange) -> bool {
    let is_str = |v: &Option<Value>| v.as_ref().map(|x| matches!(x, Value::Str(_)));
    !matches!((is_str(&r.lo), is_str(&r.hi)), (Some(false), Some(false)))
}

fn in_list_verdict(r: &ValueRange, vals: &[Value]) -> Verdict {
    if r.all_null {
        return Verdict::ALWAYS_UNKNOWN;
    }
    let list_has_null = vals.iter().any(Value::is_null);
    let non_null: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();
    let may_t = non_null.iter().any(|v| r.possibly_eq(v));
    // all_true: the whole range is one point equal to a list element.
    let all_t = non_null.iter().any(|v| r.certainly_eq(v));
    // FALSE requires a definite non-match AND no NULL in the list
    // (`x IN (1, NULL)` is TRUE or UNKNOWN, never FALSE).
    let may_f = !list_has_null && !all_t;
    let all_f = !list_has_null && !may_t;
    leaf_verdict(may_t, all_t, may_f, all_f, r.may_null)
}

/// Verdict of `IF(c, t, e)` as a predicate: rows where `c` is TRUE take
/// `t`'s truth value, all other rows (FALSE or NULL condition) take `e`'s.
fn if_verdict(c: Verdict, t: Verdict, e: Verdict) -> Verdict {
    let c_may_take_then = c.may_true;
    let c_may_take_else = !c.all_true;
    Verdict {
        may_true: (c_may_take_then && t.may_true) || (c_may_take_else && e.may_true),
        all_true: (c.all_true && t.all_true)
            || (!c.may_true && e.all_true)
            || (t.all_true && e.all_true),
        may_false: (c_may_take_then && t.may_false) || (c_may_take_else && e.may_false),
        all_false: (c.all_true && t.all_false)
            || (!c.may_true && e.all_false)
            || (t.all_false && e.all_false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use snowprune_storage::{Field, Schema};
    use snowprune_types::{MatchClass, ScalarType};

    fn zm(min: Value, max: Value, nulls: u64, rows: u64) -> ZoneMap {
        ZoneMap {
            min: Some(min),
            max: Some(max),
            min_exact: true,
            max_exact: true,
            null_count: nulls,
            row_count: rows,
        }
    }

    /// The paper's §3.1 metadata table: unit in ["feet","meters"],
    /// altit in [934, 7674], name in ["Basecamp-...","Unmarked-..."].
    fn paper_meta() -> Vec<ZoneMap> {
        vec![
            zm(
                Value::Str("feet".into()),
                Value::Str("meters".into()),
                0,
                100,
            ),
            zm(Value::Int(934), Value::Int(7674), 0, 100),
            zm(
                Value::Str("Basecamp-Trail-1".into()),
                Value::Str("Unmarked-Ridge-9".into()),
                0,
                100,
            ),
        ]
    }

    fn paper_schema() -> Schema {
        Schema::new(vec![
            Field::new("unit", ScalarType::Str),
            Field::new("altit", ScalarType::Int),
            Field::new("name", ScalarType::Str),
        ])
    }

    fn paper_predicate() -> Expr {
        if_(
            col("unit").eq(lit("feet")),
            col("altit").mul(lit(0.3048)),
            col("altit"),
        )
        .gt(lit(1500i64))
        .and(col("name").like("Marked-%-Ridge"))
        .bind(&paper_schema())
        .unwrap()
    }

    #[test]
    fn paper_example_not_pruned() {
        // §3.1 concludes: "the micro-partition should not be pruned".
        let v = prune_eval(&paper_predicate(), &paper_meta());
        assert!(v.may_true);
        assert!(!v.all_true);
        assert_eq!(v.classify(100), MatchClass::PartiallyMatching);
    }

    #[test]
    fn paper_example_pruned_when_name_out_of_range() {
        let mut meta = paper_meta();
        meta[2] = zm(
            Value::Str("Np-Trail".into()),
            Value::Str("Zz-Trail".into()),
            0,
            100,
        );
        let v = prune_eval(&paper_predicate(), &meta);
        assert!(v.prunable(), "name range excludes 'Marked-' prefix");
    }

    #[test]
    fn paper_example_pruned_when_altitude_low_and_meters() {
        // unit always 'meters' -> IF takes raw altit; altit max 1200 < 1500.
        let mut meta = paper_meta();
        meta[0] = zm(
            Value::Str("meters".into()),
            Value::Str("meters".into()),
            0,
            100,
        );
        meta[1] = zm(Value::Int(934), Value::Int(1200), 0, 100);
        meta[2] = zm(
            Value::Str("Marked-A-Ridge".into()),
            Value::Str("Marked-Z-Ridge".into()),
            0,
            100,
        );
        let v = prune_eval(&paper_predicate(), &meta);
        assert!(v.prunable());
    }

    #[test]
    fn unit_all_feet_refines_range() {
        // unit always 'feet' -> scaled range [284.68, 2339.04]; altit above
        // 4921 ft (1500m) cannot be ruled out when max is 7674 ft.
        let mut meta = paper_meta();
        meta[0] = zm(Value::Str("feet".into()), Value::Str("feet".into()), 0, 100);
        meta[2] = zm(
            Value::Str("Marked-A-Ridge".into()),
            Value::Str("Marked-Z-Ridge".into()),
            0,
            100,
        );
        let v = prune_eval(&paper_predicate(), &meta);
        assert!(v.may_true);
        // And with a low max altitude, the scaled range drops below 1500.
        meta[1] = zm(Value::Int(934), Value::Int(4000), 0, 100);
        let v2 = prune_eval(&paper_predicate(), &meta);
        assert!(v2.prunable(), "4000ft = 1219m < 1500m");
    }

    #[test]
    fn fully_matching_detection() {
        let schema = Schema::new(vec![
            Field::new("species", ScalarType::Str),
            Field::new("s", ScalarType::Int),
        ]);
        // Figure 5, partition 3: species all 'Alpine*', s in [76, 101].
        let meta = vec![
            zm(
                Value::Str("Alpine Goat".into()),
                Value::Str("Alpine Sheep".into()),
                0,
                3,
            ),
            zm(Value::Int(76), Value::Int(101), 0, 3),
        ];
        let pred = col("species")
            .like("Alpine%")
            .and(col("s").ge(lit(50i64)))
            .bind(&schema)
            .unwrap();
        let v = prune_eval(&pred, &meta);
        assert!(v.fully_matching(), "{v:?}");
        assert_eq!(v.classify(3), MatchClass::FullyMatching);
        // Partition 2 (Figure 5): species in [Alpine Bat, Red Fox], s in [6, 70].
        let meta2 = vec![
            zm(
                Value::Str("Alpine Bat".into()),
                Value::Str("Red Fox".into()),
                0,
                3,
            ),
            zm(Value::Int(6), Value::Int(70), 0, 3),
        ];
        let v2 = prune_eval(&pred, &meta2);
        assert_eq!(v2.classify(3), MatchClass::PartiallyMatching);
        // Partition 1 (Figure 5): species in [Brown Bear, Snow Vole] - prunable.
        let meta1 = vec![
            zm(
                Value::Str("Brown Bear".into()),
                Value::Str("Snow Vole".into()),
                0,
                3,
            ),
            zm(Value::Int(7), Value::Int(133), 0, 3),
        ];
        assert_eq!(
            prune_eval(&pred, &meta1).classify(3),
            MatchClass::NotMatching
        );
    }

    #[test]
    fn nulls_block_fully_matching() {
        let schema = Schema::new(vec![Field::new("s", ScalarType::Int)]);
        let pred = col("s").ge(lit(50i64)).bind(&schema).unwrap();
        let no_nulls = vec![zm(Value::Int(60), Value::Int(90), 0, 10)];
        assert!(prune_eval(&pred, &no_nulls).fully_matching());
        let with_nulls = vec![zm(Value::Int(60), Value::Int(90), 1, 10)];
        let v = prune_eval(&pred, &with_nulls);
        assert!(!v.fully_matching(), "a NULL row does not satisfy s >= 50");
        assert!(v.may_true);
    }

    #[test]
    fn is_null_verdicts() {
        let schema = Schema::new(vec![Field::new("s", ScalarType::Int)]);
        let pred = col("s").is_null().bind(&schema).unwrap();
        let all_null = vec![ZoneMap {
            min: None,
            max: None,
            min_exact: false,
            max_exact: false,
            null_count: 5,
            row_count: 5,
        }];
        assert!(prune_eval(&pred, &all_null).fully_matching());
        let none_null = vec![zm(Value::Int(1), Value::Int(2), 0, 5)];
        assert!(prune_eval(&pred, &none_null).prunable());
        let not_null_pred = col("s").is_not_null().bind(&schema).unwrap();
        assert!(prune_eval(&not_null_pred, &none_null).fully_matching());
        assert!(prune_eval(&not_null_pred, &all_null).prunable());
    }

    #[test]
    fn ne_and_eq_verdicts() {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let meta = vec![zm(Value::Int(5), Value::Int(5), 0, 4)];
        let eq = col("x").eq(lit(5i64)).bind(&schema).unwrap();
        assert!(prune_eval(&eq, &meta).fully_matching());
        let ne = col("x").ne(lit(5i64)).bind(&schema).unwrap();
        assert!(prune_eval(&ne, &meta).prunable());
        let ne2 = col("x").ne(lit(7i64)).bind(&schema).unwrap();
        assert!(prune_eval(&ne2, &meta).fully_matching());
    }

    #[test]
    fn in_list_verdicts() {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let meta = vec![zm(Value::Int(10), Value::Int(20), 0, 4)];
        let pred = col("x")
            .in_list(vec![Value::Int(1), Value::Int(15)])
            .bind(&schema)
            .unwrap();
        assert!(prune_eval(&pred, &meta).may_true);
        let miss = col("x")
            .in_list(vec![Value::Int(1), Value::Int(2)])
            .bind(&schema)
            .unwrap();
        assert!(prune_eval(&miss, &meta).prunable());
        // NULL in list: misses become UNKNOWN, so NOT IN cannot match either.
        let miss_null = col("x")
            .in_list(vec![Value::Int(1), Value::Null])
            .bind(&schema)
            .unwrap();
        let v = prune_eval(&miss_null, &meta);
        assert!(v.prunable());
        assert!(prune_eval(&miss_null.not(), &meta).prunable());
    }

    #[test]
    fn truncated_string_metadata_stays_sound() {
        let schema = Schema::new(vec![Field::new("name", ScalarType::Str)]);
        // Stored bounds truncated to 3 chars: min "Mar" (prefix of true min
        // "Marked-A"), max "Mas" (increment of "Mar", above true max).
        let meta = vec![ZoneMap {
            min: Some(Value::Str("Mar".into())),
            max: Some(Value::Str("Mas".into())),
            min_exact: false,
            max_exact: false,
            null_count: 0,
            row_count: 10,
        }];
        let pred = col("name").starts_with("Marked-").bind(&schema).unwrap();
        let v = prune_eval(&pred, &meta);
        // Must not prune (partition may contain Marked-*), and must not
        // claim fully matching (bounds are wider than the prefix region).
        assert!(v.may_true);
        assert!(!v.all_true);
    }

    #[test]
    fn startswith_fully_matching() {
        let schema = Schema::new(vec![Field::new("name", ScalarType::Str)]);
        let meta = vec![zm(
            Value::Str("Alpine Goat".into()),
            Value::Str("Alpine Sheep".into()),
            0,
            3,
        )];
        let pred = col("name").starts_with("Alpine").bind(&schema).unwrap();
        assert!(prune_eval(&pred, &meta).fully_matching());
        let pred2 = col("name")
            .starts_with("Alpine Goat x")
            .bind(&schema)
            .unwrap();
        let v2 = prune_eval(&pred2, &meta);
        assert!(!v2.fully_matching());
    }

    #[test]
    fn derive_range_through_if_and_abs() {
        let schema = Schema::new(vec![
            Field::new("unit", ScalarType::Str),
            Field::new("x", ScalarType::Int),
        ]);
        let meta = vec![
            zm(Value::Str("a".into()), Value::Str("b".into()), 0, 10),
            zm(Value::Int(-8), Value::Int(3), 0, 10),
        ];
        let e = col("x").abs().bind(&schema).unwrap();
        let r = derive_range(&e, &meta);
        assert_eq!(r.lo, Some(Value::Int(0)));
        assert_eq!(r.hi, Some(Value::Int(8)));
        let e2 = if_(col("unit").eq(lit("a")), col("x"), col("x").mul(lit(2i64)))
            .bind(&schema)
            .unwrap();
        let r2 = derive_range(&e2, &meta);
        assert_eq!(r2.lo, Some(Value::Int(-16)));
        assert_eq!(r2.hi, Some(Value::Int(6)));
    }

    #[test]
    fn coalesce_range_strips_null_when_fallback_is_literal() {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let meta = vec![zm(Value::Int(5), Value::Int(9), 3, 10)];
        let e = coalesce(vec![col("x"), lit(0i64)]).bind(&schema).unwrap();
        let r = derive_range(&e, &meta);
        assert!(!r.may_null);
        assert_eq!(r.lo, Some(Value::Int(0)));
        assert_eq!(r.hi, Some(Value::Int(9)));
    }
}
