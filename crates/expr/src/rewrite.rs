//! Imprecise filter rewrites (§3.1) and expression simplification.
//!
//! "Predicates can be widened to facilitate more coarse-grained pruning":
//! a `LIKE` pattern that cannot be evaluated against min/max metadata is
//! analyzed into a *shape*; if it has a literal prefix, pruning can use the
//! widened predicate `STARTSWITH(prefix)` instead.

use snowprune_types::Value;

use crate::ast::{dsl, Expr};
use crate::eval::eval_value;

/// Structure of a LIKE pattern as far as pruning is concerned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LikeShape {
    /// No wildcards at all: equivalent to equality with the literal.
    Exact(String),
    /// `prefix%`: exactly a prefix test (no widening needed).
    Prefix(String),
    /// A literal prefix followed by further constraints (e.g.
    /// `Marked-%-Ridge`): pruning may use the prefix, but a match is not
    /// guaranteed within the prefix region (the rewrite *widened* the
    /// predicate).
    WidenedPrefix(String),
    /// Starts with a wildcard: no metadata-usable structure.
    Opaque,
}

/// Analyze a LIKE pattern. `%` matches any run, `_` any single character.
pub fn analyze_like(pattern: &str) -> LikeShape {
    let mut prefix = String::new();
    let mut rest = pattern.chars().peekable();
    while let Some(&c) = rest.peek() {
        if c == '%' || c == '_' {
            break;
        }
        prefix.push(c);
        rest.next();
    }
    let remainder: String = rest.collect();
    if remainder.is_empty() {
        return LikeShape::Exact(prefix);
    }
    if prefix.is_empty() {
        return LikeShape::Opaque;
    }
    if remainder == "%" {
        return LikeShape::Prefix(prefix);
    }
    LikeShape::WidenedPrefix(prefix)
}

/// The smallest string greater than every string starting with `prefix`
/// (exclusive upper bound of the prefix region): increment the last
/// character, carrying leftwards. `None` means unbounded (all chars were
/// `char::MAX`).
pub fn prefix_successor(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(&c) = chars.last() {
        // Skip the surrogate gap when incrementing.
        let bump = if c as u32 == 0xD7FF {
            Some('\u{E000}')
        } else {
            char::from_u32(c as u32 + 1)
        };
        if let Some(next) = bump {
            *chars.last_mut().unwrap() = next;
            return Some(chars.into_iter().collect());
        }
        chars.pop();
    }
    None
}

/// Render the widened pruning predicate for display/EXPLAIN purposes, as
/// the paper does for `name LIKE 'Marked-%-Ridge'` →
/// `STARTSWITH(name, 'Marked-')`. Returns `None` when no widening applies.
pub fn widen_for_pruning(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::Like(inner, pattern) => match analyze_like(pattern) {
            LikeShape::Exact(s) => Some(inner.as_ref().clone().eq(dsl::lit(s))),
            LikeShape::Prefix(p) | LikeShape::WidenedPrefix(p) => {
                Some(inner.as_ref().clone().starts_with(p))
            }
            LikeShape::Opaque => None,
        },
        _ => None,
    }
}

/// Constant folding: collapse literal-only subtrees using the scalar
/// evaluator. Sound because evaluation of a literal subtree is row
/// independent.
pub fn fold_constants(expr: &Expr) -> Expr {
    fn is_literal_only(e: &Expr) -> bool {
        let mut ok = true;
        e.visit(&mut |x| {
            if matches!(x, Expr::Column(_)) {
                ok = false;
            }
        });
        ok
    }
    fn fold(e: &Expr) -> Expr {
        if is_literal_only(e) {
            return Expr::Literal(eval_value(e, &[]));
        }
        match e {
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(fold(a)), Box::new(fold(b))),
            Expr::And(xs) => {
                let folded: Vec<Expr> = xs.iter().map(fold).collect();
                // TRUE conjuncts drop; a FALSE conjunct collapses the AND.
                if folded
                    .iter()
                    .any(|x| matches!(x, Expr::Literal(Value::Bool(false))))
                {
                    return Expr::Literal(Value::Bool(false));
                }
                let kept: Vec<Expr> = folded
                    .into_iter()
                    .filter(|x| !matches!(x, Expr::Literal(Value::Bool(true))))
                    .collect();
                match kept.len() {
                    0 => Expr::Literal(Value::Bool(true)),
                    1 => kept.into_iter().next().unwrap(),
                    _ => Expr::And(kept),
                }
            }
            Expr::Or(xs) => {
                let folded: Vec<Expr> = xs.iter().map(fold).collect();
                if folded
                    .iter()
                    .any(|x| matches!(x, Expr::Literal(Value::Bool(true))))
                {
                    return Expr::Literal(Value::Bool(true));
                }
                let kept: Vec<Expr> = folded
                    .into_iter()
                    .filter(|x| !matches!(x, Expr::Literal(Value::Bool(false))))
                    .collect();
                match kept.len() {
                    0 => Expr::Literal(Value::Bool(false)),
                    1 => kept.into_iter().next().unwrap(),
                    _ => Expr::Or(kept),
                }
            }
            Expr::Not(x) => Expr::Not(Box::new(fold(x))),
            Expr::IsNull(x) => Expr::IsNull(Box::new(fold(x))),
            Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(fold(a)), Box::new(fold(b))),
            Expr::Neg(x) => Expr::Neg(Box::new(fold(x))),
            Expr::If(c, t, el) => {
                Expr::If(Box::new(fold(c)), Box::new(fold(t)), Box::new(fold(el)))
            }
            Expr::Like(x, p) => Expr::Like(Box::new(fold(x)), p.clone()),
            Expr::StartsWith(x, p) => Expr::StartsWith(Box::new(fold(x)), p.clone()),
            Expr::InList(x, vs) => Expr::InList(Box::new(fold(x)), vs.clone()),
            Expr::Coalesce(xs) => Expr::Coalesce(xs.iter().map(fold).collect()),
            Expr::Abs(x) => Expr::Abs(Box::new(fold(x))),
            leaf => leaf.clone(),
        }
    }
    fold(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;

    #[test]
    fn like_shapes() {
        assert_eq!(
            analyze_like("Marked-%-Ridge"),
            LikeShape::WidenedPrefix("Marked-".into())
        );
        assert_eq!(analyze_like("Alpine%"), LikeShape::Prefix("Alpine".into()));
        assert_eq!(analyze_like("exact"), LikeShape::Exact("exact".into()));
        assert_eq!(analyze_like("%suffix"), LikeShape::Opaque);
        assert_eq!(analyze_like("_x%"), LikeShape::Opaque);
        assert_eq!(analyze_like("ab_c%"), LikeShape::WidenedPrefix("ab".into()));
    }

    #[test]
    fn prefix_successor_basic() {
        assert_eq!(prefix_successor("Marked-").unwrap(), "Marked.");
        assert_eq!(prefix_successor("az").unwrap(), "a{");
        // Every string starting with the prefix is below the successor.
        let succ = prefix_successor("abc").unwrap();
        assert!("abc" < succ.as_str());
        assert!("abczzzzzz" < succ.as_str());
        assert!("abd" >= succ.as_str());
    }

    #[test]
    fn prefix_successor_carry() {
        let max2 = format!("a{}", char::MAX);
        assert_eq!(prefix_successor(&max2).unwrap(), "b");
        let all_max: String = std::iter::repeat_n(char::MAX, 3).collect();
        assert_eq!(prefix_successor(&all_max), None);
    }

    #[test]
    fn widening_produces_startswith() {
        let e = col("name").like("Marked-%-Ridge");
        let w = widen_for_pruning(&e).unwrap();
        assert_eq!(w.to_string(), "STARTSWITH(name, 'Marked-')");
    }

    #[test]
    fn folding_collapses_literal_subtrees() {
        let e = col("x").gt(lit(100i64).mul(lit(15i64)));
        let f = fold_constants(&e);
        assert_eq!(f.to_string(), "(x > 1500)");
    }

    #[test]
    fn folding_short_circuits_booleans() {
        let e = lit(true).and(col("x").gt(lit(1i64)));
        assert_eq!(fold_constants(&e).to_string(), "(x > 1)");
        let e2 = lit(false).and(col("x").gt(lit(1i64)));
        assert_eq!(fold_constants(&e2).to_string(), "FALSE");
        let e3 = lit(true).or(col("x").gt(lit(1i64)));
        assert_eq!(fold_constants(&e3).to_string(), "TRUE");
    }
}
