//! Expressions for `snowprune`: predicate/scalar ASTs, three-valued
//! evaluation (scalar and vectorized), min/max range derivation through
//! complex expressions, imprecise filter rewrites, pruning verdicts, and
//! predicate inversion for fully-matching detection.
//!
//! The modules map directly onto §3.1 and §4.2 of the paper:
//!
//! * [`ast`] — expression trees with a small builder DSL.
//! * [`eval`] — Kleene-logic evaluation used by the execution engine.
//! * [`pruneval`] — metadata-only evaluation: [`pruneval::derive_range`]
//!   and [`pruneval::prune_eval`].
//! * [`rewrite`] — `LIKE`→prefix widening and constant folding.
//! * [`invert`] — the two-pass inverted-predicate method for identifying
//!   fully-matching partitions.
//! * [`kernel`] — selection-vector predicate kernels for batch execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod invert;
pub mod kernel;
pub mod pruneval;
pub mod rewrite;

pub use ast::{dsl, ArithOp, CmpOp, ColumnRef, Expr};
pub use eval::{
    eval_predicate, eval_truths, eval_truths_range, eval_value, like_match, selection_indices,
    Truth,
};
pub use invert::{fully_matching_two_pass, invert_predicate};
pub use pruneval::{derive_range, prune_eval};
pub use rewrite::{analyze_like, fold_constants, prefix_successor, widen_for_pruning, LikeShape};
