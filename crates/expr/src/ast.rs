//! The expression tree used for predicates and scalar computations.
//!
//! Expressions are built unbound (columns referenced by name) and bound
//! against a table [`Schema`] before evaluation, which resolves column
//! indices. The `Display` impl renders SQL-ish text used for query
//! classification (Table 1 of the paper) and plan fingerprints.

use std::fmt;

use snowprune_storage::Schema;
use snowprune_types::{Error, Result, Value};

/// A column reference. `index` is `UNRESOLVED` until [`Expr::bind`] runs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Resolved column position, or [`ColumnRef::UNRESOLVED`].
    pub index: usize,
    /// Column name as written in the plan.
    pub name: String,
}

impl ColumnRef {
    /// Sentinel index of a reference that has not been bound yet.
    pub const UNRESOLVED: usize = usize::MAX;
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with operands swapped (`a < b` == `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// SQL negation (`NOT (a < b)` == `a >= b`), ignoring NULLs — callers
    /// must handle three-valued logic separately.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator's SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// The operator's SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A constant value.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// A binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// SQL `AND` over all operands (Kleene three-valued).
    And(Vec<Expr>),
    /// SQL `OR` over all operands (Kleene three-valued).
    Or(Vec<Expr>),
    /// SQL `NOT`.
    Not(Box<Expr>),
    /// SQL `IS NULL`.
    IsNull(Box<Expr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `IF(cond, then, else)` — the paper's §3.1 running example.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// SQL `LIKE` with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// `STARTSWITH(expr, prefix)` — the target of the imprecise rewrite.
    StartsWith(Box<Expr>, String),
    /// SQL `IN (v1, v2, …)`.
    InList(Box<Expr>, Vec<Value>),
    /// SQL `COALESCE` — first non-null operand.
    Coalesce(Vec<Expr>),
    /// Absolute value.
    Abs(Box<Expr>),
}

impl Expr {
    /// Resolve all column references against `schema`. Fails on unknown
    /// columns; already-bound indices are re-resolved by name.
    pub fn bind(&self, schema: &Schema) -> Result<Expr> {
        let mut e = self.clone();
        e.bind_in_place(schema)?;
        Ok(e)
    }

    fn bind_in_place(&mut self, schema: &Schema) -> Result<()> {
        self.try_visit_mut(&mut |e| {
            if let Expr::Column(c) = e {
                c.index = schema.index_of(&c.name)?;
            }
            Ok(())
        })
    }

    /// True when every column reference has a resolved index.
    pub fn is_bound(&self) -> bool {
        let mut ok = true;
        self.visit(&mut |e| {
            if let Expr::Column(c) = e {
                ok &= c.index != ColumnRef::UNRESOLVED;
            }
        });
        ok
    }

    /// All distinct column indices referenced (bound expressions only).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(c) = e {
                if !cols.contains(&c.index) {
                    cols.push(c.index);
                }
            }
        });
        cols.sort_unstable();
        cols
    }

    /// Pre-order immutable traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::And(xs) | Expr::Or(xs) | Expr::Coalesce(xs) => {
                for x in xs {
                    x.visit(f);
                }
            }
            Expr::Not(x)
            | Expr::IsNull(x)
            | Expr::Neg(x)
            | Expr::Abs(x)
            | Expr::Like(x, _)
            | Expr::StartsWith(x, _)
            | Expr::InList(x, _) => x.visit(f),
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
        }
    }

    /// Pre-order mutable traversal that can fail.
    pub fn try_visit_mut(&mut self, f: &mut impl FnMut(&mut Expr) -> Result<()>) -> Result<()> {
        f(self)?;
        match self {
            Expr::Literal(_) | Expr::Column(_) => Ok(()),
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.try_visit_mut(f)?;
                b.try_visit_mut(f)
            }
            Expr::And(xs) | Expr::Or(xs) | Expr::Coalesce(xs) => {
                for x in xs {
                    x.try_visit_mut(f)?;
                }
                Ok(())
            }
            Expr::Not(x)
            | Expr::IsNull(x)
            | Expr::Neg(x)
            | Expr::Abs(x)
            | Expr::Like(x, _)
            | Expr::StartsWith(x, _)
            | Expr::InList(x, _) => x.try_visit_mut(f),
            Expr::If(c, t, e) => {
                c.try_visit_mut(f)?;
                t.try_visit_mut(f)?;
                e.try_visit_mut(f)
            }
        }
    }

    /// Rewrite bound column indices through `map`: a reference to output
    /// column `i` becomes a reference to `map[i]`. Used by the vectorized
    /// chain to re-express post-projection filters directly against the
    /// underlying partition's column layout. Panics on unbound references
    /// or indices outside `map` — callers remap only bound chain filters.
    pub fn remap_columns(&self, map: &[usize]) -> Expr {
        let mut e = self.clone();
        e.try_visit_mut(&mut |x| {
            if let Expr::Column(c) = x {
                c.index = map[c.index];
            }
            Ok(())
        })
        .expect("infallible remap");
        e
    }

    /// Conjunction splitting: `a AND b AND c` → `[a, b, c]`.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        match self {
            Expr::And(xs) => xs.iter().flat_map(|x| x.split_conjunction()).collect(),
            other => vec![other],
        }
    }

    /// Ensure the expression can serve as a predicate (best-effort check).
    pub fn expect_boolean(&self) -> Result<()> {
        match self {
            Expr::Cmp(..)
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::IsNull(_)
            | Expr::Like(..)
            | Expr::StartsWith(..)
            | Expr::InList(..)
            | Expr::If(..)
            | Expr::Column(_)
            | Expr::Coalesce(_) => Ok(()),
            Expr::Literal(Value::Bool(_)) | Expr::Literal(Value::Null) => Ok(()),
            other => Err(Error::Invalid(format!("not a boolean expression: {other}"))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{}", c.name),
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.sql()),
            Expr::And(xs) => write_joined(f, xs, " AND "),
            Expr::Or(xs) => write_joined(f, xs, " OR "),
            Expr::Not(x) => write!(f, "(NOT {x})"),
            Expr::IsNull(x) => write!(f, "({x} IS NULL)"),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.sql()),
            Expr::Neg(x) => write!(f, "(-{x})"),
            Expr::If(c, t, e) => write!(f, "IF({c}, {t}, {e})"),
            Expr::Like(x, p) => write!(f, "({x} LIKE '{}')", p.replace('\'', "''")),
            Expr::StartsWith(x, p) => write!(f, "STARTSWITH({x}, '{}')", p.replace('\'', "''")),
            Expr::InList(x, vs) => {
                write!(f, "({x} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::Coalesce(xs) => {
                write!(f, "COALESCE(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Abs(x) => write!(f, "ABS({x})"),
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, xs: &[Expr], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{x}")?;
    }
    write!(f, ")")
}

/// Ergonomic constructors for building expressions.
#[allow(clippy::should_implement_trait)] // `add`/`mul`/`not`/... mirror SQL, not std ops
pub mod dsl {
    use super::*;

    /// An unbound column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef {
            index: ColumnRef::UNRESOLVED,
            name: name.into(),
        })
    }

    /// A literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `IF(cond, then, else)`.
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// `COALESCE(x1, x2, …)`.
    pub fn coalesce(xs: Vec<Expr>) -> Expr {
        Expr::Coalesce(xs)
    }

    impl Expr {
        /// `self = rhs`.
        pub fn eq(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
        }
        /// `self <> rhs`.
        pub fn ne(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
        }
        /// `self < rhs`.
        pub fn lt(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
        }
        /// `self <= rhs`.
        pub fn le(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
        }
        /// `self > rhs`.
        pub fn gt(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
        }
        /// `self >= rhs`.
        pub fn ge(self, rhs: Expr) -> Expr {
            Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
        }
        /// `self AND rhs`, flattening nested ANDs.
        pub fn and(self, rhs: Expr) -> Expr {
            match self {
                Expr::And(mut xs) => {
                    xs.push(rhs);
                    Expr::And(xs)
                }
                other => Expr::And(vec![other, rhs]),
            }
        }
        /// `self OR rhs`, flattening nested ORs.
        pub fn or(self, rhs: Expr) -> Expr {
            match self {
                Expr::Or(mut xs) => {
                    xs.push(rhs);
                    Expr::Or(xs)
                }
                other => Expr::Or(vec![other, rhs]),
            }
        }
        /// `NOT self`.
        #[allow(clippy::should_implement_trait)]
        pub fn not(self) -> Expr {
            Expr::Not(Box::new(self))
        }
        /// `self IS NULL`.
        pub fn is_null(self) -> Expr {
            Expr::IsNull(Box::new(self))
        }
        /// `self IS NOT NULL`.
        pub fn is_not_null(self) -> Expr {
            Expr::Not(Box::new(Expr::IsNull(Box::new(self))))
        }
        /// `self + rhs`.
        pub fn add(self, rhs: Expr) -> Expr {
            Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
        }
        /// `self - rhs`.
        pub fn sub(self, rhs: Expr) -> Expr {
            Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
        }
        /// `self * rhs`.
        pub fn mul(self, rhs: Expr) -> Expr {
            Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
        }
        /// `self / rhs`.
        pub fn div(self, rhs: Expr) -> Expr {
            Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
        }
        /// `-self`.
        pub fn neg(self) -> Expr {
            Expr::Neg(Box::new(self))
        }
        /// `self LIKE pattern`.
        pub fn like(self, pattern: impl Into<String>) -> Expr {
            Expr::Like(Box::new(self), pattern.into())
        }
        /// `STARTSWITH(self, prefix)`.
        pub fn starts_with(self, prefix: impl Into<String>) -> Expr {
            Expr::StartsWith(Box::new(self), prefix.into())
        }
        /// `self IN (vals…)`.
        pub fn in_list(self, vals: Vec<Value>) -> Expr {
            Expr::InList(Box::new(self), vals)
        }
        /// `ABS(self)`.
        pub fn abs(self) -> Expr {
            Expr::Abs(Box::new(self))
        }
        /// `self BETWEEN lo AND hi` (inclusive both ends).
        pub fn between(self, lo: Expr, hi: Expr) -> Expr {
            self.clone().ge(lo).and(self.le(hi))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("unit", ScalarType::Str),
            Field::new("altit", ScalarType::Int),
            Field::new("name", ScalarType::Str),
        ])
    }

    #[test]
    fn bind_resolves_columns() {
        let e = col("altit")
            .gt(lit(1500i64))
            .and(col("name").like("Marked-%-Ridge"));
        assert!(!e.is_bound());
        let b = e.bind(&schema()).unwrap();
        assert!(b.is_bound());
        assert_eq!(b.referenced_columns(), vec![1, 2]);
    }

    #[test]
    fn bind_fails_on_unknown_column() {
        assert!(col("missing").eq(lit(1i64)).bind(&schema()).is_err());
    }

    #[test]
    fn display_renders_paper_example() {
        let e = if_(
            col("unit").eq(lit("feet")),
            col("altit").mul(lit(0.3048)),
            col("altit"),
        )
        .gt(lit(1500i64))
        .and(col("name").like("Marked-%-Ridge"));
        let s = e.to_string();
        assert!(
            s.contains("IF((unit = 'feet'), (altit * 0.3048), altit)"),
            "{s}"
        );
        assert!(s.contains("LIKE 'Marked-%-Ridge'"), "{s}");
    }

    #[test]
    fn split_conjunction_flattens() {
        let e = col("a")
            .gt(lit(1i64))
            .and(col("b").lt(lit(2i64)))
            .and(col("c").eq(lit(3i64)));
        assert_eq!(e.split_conjunction().len(), 3);
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }
}
