//! Selection-vector predicate kernels: tight typed loops over column
//! slices that refine a [`SelVec`] in place.
//!
//! This is the batch-at-a-time counterpart of
//! [`eval_truths`](crate::eval_truths): instead of materializing a
//! `Vec<Truth>`
//! per row, a predicate is split into conjuncts
//! ([`Expr::split_conjunction`]) and each conjunct *filters* the current
//! selection. Eligible conjuncts (`column <op> literal` on primitive
//! types, `column IS NULL`) run as monomorphized loops directly over the
//! typed column vectors with the validity check hoisted; everything else
//! falls back to scalar row-at-a-time evaluation of just that conjunct on
//! just the still-selected rows.
//!
//! Equivalence contract (checked by `tests/prop_kernel.rs`): for any bound
//! predicate `p`, partition `part`, and row window `start..start+len`,
//!
//! ```text
//! select_range(p, part, start, len).to_vec()
//!   == selection_indices(eval_truths_range(p, part, start, len))
//!         .map(|j| j + start)
//! ```
//!
//! Under SQL WHERE semantics only `TRUE` qualifies, so refining by each
//! conjunct in turn (keep a row iff the conjunct is `TRUE` on it) is
//! exactly Kleene `AND` followed by qualification.

use snowprune_storage::{Bitmap, ColumnValues, MicroPartition};
use snowprune_types::{SelVec, Value};

use crate::ast::{CmpOp, Expr};
use crate::eval::{cmp_holds, eval_cmp, eval_predicate};

/// Evaluate `pred` over partition rows `start..start + len` and return the
/// qualifying rows as a selection vector (absolute row indices).
pub fn select_range(pred: &Expr, part: &MicroPartition, start: usize, len: usize) -> SelVec {
    let mut sel = SelVec::All(start..start + len);
    refine(pred, part, &mut sel);
    sel
}

/// Refine an existing selection in place: keep only rows on which `pred`
/// evaluates to SQL `TRUE`. This is how chained filters (post-scan WHERE
/// stages) compose with the scan predicate's selection without ever
/// materializing intermediate rows.
pub fn refine(pred: &Expr, part: &MicroPartition, sel: &mut SelVec) {
    for conjunct in pred.split_conjunction() {
        if sel.is_empty() {
            return;
        }
        refine_conjunct(conjunct, part, sel);
    }
}

fn refine_conjunct(conjunct: &Expr, part: &MicroPartition, sel: &mut SelVec) {
    match conjunct {
        Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => refine_cmp(part, c.index, *op, v, sel),
            (Expr::Literal(v), Expr::Column(c)) => refine_cmp(part, c.index, op.flip(), v, sel),
            _ => refine_scalar(conjunct, part, sel),
        },
        Expr::IsNull(inner) => {
            if let Expr::Column(c) = inner.as_ref() {
                let chunk = part.column(c.index);
                keep(sel, |i| !chunk.is_valid(i));
            } else {
                refine_scalar(conjunct, part, sel);
            }
        }
        _ => refine_scalar(conjunct, part, sel),
    }
}

/// Scalar fallback for non-eligible conjuncts: row-at-a-time Kleene
/// evaluation on the still-selected rows only.
fn refine_scalar(conjunct: &Expr, part: &MicroPartition, sel: &mut SelVec) {
    keep(sel, |i| eval_predicate(conjunct, &part.row(i)).qualifies());
}

/// `column <op> literal` kernels. The arm order mirrors
/// `eval::cmp_column_literal` exactly so vectorized and truth-vector
/// evaluation agree on every input, including NaN (`total_cmp`) and
/// int/float cross-type comparisons.
fn refine_cmp(part: &MicroPartition, col: usize, op: CmpOp, lit: &Value, sel: &mut SelVec) {
    let chunk = part.column(col);
    if lit.is_null() {
        // NULL literal: UNKNOWN on every row, nothing qualifies.
        *sel = SelVec::empty();
        return;
    }
    let validity = chunk.validity();
    match (chunk.values(), lit) {
        (ColumnValues::Int(vals), Value::Int(l)) => {
            let l = *l;
            keep_valid(sel, validity, |i| cmp_holds(op, vals[i].cmp(&l)));
        }
        (ColumnValues::Date(vals), Value::Date(l)) => {
            let l = *l;
            keep_valid(sel, validity, |i| cmp_holds(op, vals[i].cmp(&l)));
        }
        (ColumnValues::Timestamp(vals), Value::Timestamp(l)) => {
            let l = *l;
            keep_valid(sel, validity, |i| cmp_holds(op, vals[i].cmp(&l)));
        }
        (ColumnValues::Float(vals), _) if lit.as_f64().is_some() => {
            let l = lit.as_f64().unwrap();
            keep_valid(sel, validity, |i| cmp_holds(op, vals[i].total_cmp(&l)));
        }
        (ColumnValues::Int(vals), Value::Float(_)) => {
            keep_valid(sel, validity, |i| {
                eval_cmp(op, &Value::Int(vals[i]), lit).qualifies()
            });
        }
        (ColumnValues::Str(vals), Value::Str(l)) => {
            keep_valid(sel, validity, |i| {
                cmp_holds(op, vals[i].as_str().cmp(l.as_str()))
            });
        }
        // Generic: value_at maps invalid slots to Null, which compares to
        // UNKNOWN — no separate validity hoist.
        _ => keep(sel, |i| eval_cmp(op, &chunk.value_at(i), lit).qualifies()),
    }
}

/// Drop rows whose value in column `col` is NULL. This is the Kleene
/// join-key kernel: an equi-join key compares `UNKNOWN` against every
/// build value when NULL, so NULL-key probe rows can be discarded before
/// any hash or Bloom lookup. The dense (no-nulls) case is a no-op that
/// keeps the selection's allocation-free `All` form.
pub fn refine_valid(part: &MicroPartition, col: usize, sel: &mut SelVec) {
    match part.column(col).validity() {
        None => {}
        Some(bits) => keep(sel, |i| bits.get(i)),
    }
}

/// Hoist the validity check out of the row loop: the dense (no-nulls) case
/// runs `test` alone, the sparse case masks through the bitmap first.
#[inline]
fn keep_valid(sel: &mut SelVec, validity: Option<&Bitmap>, test: impl Fn(usize) -> bool) {
    match validity {
        None => keep(sel, test),
        Some(bits) => keep(sel, |i| bits.get(i) && test(i)),
    }
}

/// Retain only rows passing `test`. Monomorphized per call site so each
/// typed kernel compiles to a tight loop over its concrete column slice.
#[inline]
fn keep(sel: &mut SelVec, test: impl Fn(usize) -> bool) {
    sel.retain(test);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::eval::{eval_truths_range, selection_indices};
    use snowprune_storage::{ColumnBuilder, Field, Schema};
    use snowprune_types::ScalarType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("x", ScalarType::Int),
            Field::new("f", ScalarType::Float),
            Field::new("s", ScalarType::Str),
        ])
    }

    fn part() -> MicroPartition {
        let mut xs = ColumnBuilder::new(ScalarType::Int);
        let mut fs = ColumnBuilder::new(ScalarType::Float);
        let mut ss = ColumnBuilder::new(ScalarType::Str);
        for (x, f, s) in [
            (Some(1i64), Some(0.5f64), Some("alpha")),
            (Some(5), None, None),
            (None, Some(f64::NAN), Some("beta")),
            (Some(9), Some(-2.0), Some("alpine")),
            (Some(12), Some(3.25), Some("gamma")),
        ] {
            xs.push(x.map_or(Value::Null, Value::Int));
            fs.push(f.map_or(Value::Null, Value::Float));
            ss.push(s.map_or(Value::Null, |v| Value::Str(v.into())));
        }
        MicroPartition::from_chunks(0, &schema(), vec![xs.finish(), fs.finish(), ss.finish()])
    }

    fn oracle(pred: &Expr, part: &MicroPartition, start: usize, len: usize) -> Vec<usize> {
        selection_indices(&eval_truths_range(pred, part, start, len))
            .into_iter()
            .map(|j| j + start)
            .collect()
    }

    #[test]
    fn typed_kernels_match_truth_vectors() {
        let p = part();
        let s = schema();
        let preds = [
            col("x").gt(lit(2i64)).bind(&s).unwrap(),
            col("f").le(lit(1.0)).bind(&s).unwrap(),
            col("s").ge(lit("b")).bind(&s).unwrap(),
            col("x").between(lit(2i64), lit(10i64)).bind(&s).unwrap(),
            col("x").is_null().bind(&s).unwrap(),
            lit(3i64).lt(col("x")).bind(&s).unwrap(),
        ];
        for pred in &preds {
            for (start, len) in [(0, 5), (1, 3), (4, 1), (2, 0)] {
                assert_eq!(
                    select_range(pred, &p, start, len).to_vec(),
                    oracle(pred, &p, start, len),
                    "pred {pred} window {start}+{len}"
                );
            }
        }
    }

    #[test]
    fn scalar_fallback_matches_on_complex_conjuncts() {
        let p = part();
        let s = schema();
        let pred = col("s")
            .like("al%")
            .or(col("f").is_null())
            .and(col("x").mul(lit(2i64)).lt(lit(20i64)))
            .bind(&s)
            .unwrap();
        assert_eq!(
            select_range(&pred, &p, 0, 5).to_vec(),
            oracle(&pred, &p, 0, 5)
        );
    }

    #[test]
    fn null_literal_selects_nothing() {
        let p = part();
        let s = schema();
        let pred = col("x").gt(Expr::Literal(Value::Null)).bind(&s).unwrap();
        assert!(select_range(&pred, &p, 0, 5).is_empty());
    }

    #[test]
    fn fully_matching_window_stays_contiguous() {
        let p = part();
        let s = schema();
        let pred = col("x").gt(lit(0i64)).bind(&s).unwrap();
        // Rows 3..5 both have x > 0 and are valid: selection stays All.
        assert_eq!(select_range(&pred, &p, 3, 2), SelVec::All(3..5));
    }

    #[test]
    fn refine_valid_drops_null_rows_only() {
        let p = part();
        // Column x has a NULL at row 2; column s at row 1.
        let mut sel = SelVec::All(0..5);
        refine_valid(&p, 0, &mut sel);
        assert_eq!(sel.to_vec(), vec![0, 1, 3, 4]);
        refine_valid(&p, 2, &mut sel);
        assert_eq!(sel.to_vec(), vec![0, 3, 4]);
    }

    #[test]
    fn refine_composes_filters() {
        let p = part();
        let s = schema();
        let mut sel = select_range(&col("x").gt(lit(0i64)).bind(&s).unwrap(), &p, 0, 5);
        refine(&col("s").like("a%").bind(&s).unwrap(), &p, &mut sel);
        assert_eq!(sel.to_vec(), vec![0, 3]);
    }
}
