//! Expression evaluation: row-at-a-time scalar evaluation and vectorized
//! predicate evaluation over micro-partitions, both under SQL's Kleene
//! three-valued logic.

use std::cmp::Ordering;

use snowprune_storage::{ColumnValues, MicroPartition};
use snowprune_types::{arith, Value};

use crate::ast::{ArithOp, CmpOp, Expr};

/// Kleene truth value of a predicate on one row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truth {
    /// SQL TRUE.
    True,
    /// SQL FALSE.
    False,
    /// SQL NULL/UNKNOWN.
    Unknown,
}

impl Truth {
    /// Lift a two-valued bool into a definite truth value.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Kleene AND.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene OR.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation; named after the SQL operator rather than the
    /// `std::ops::Not` trait (Truth is not a bool-like operator type).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// SQL WHERE semantics: only TRUE qualifies.
    pub fn qualifies(self) -> bool {
        self == Truth::True
    }

    fn from_value(v: &Value) -> Truth {
        match v {
            Value::Bool(true) => Truth::True,
            Value::Bool(false) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    fn to_value(self) -> Value {
        match self {
            Truth::True => Value::Bool(true),
            Truth::False => Value::Bool(false),
            Truth::Unknown => Value::Null,
        }
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char). Iterative
/// matcher with greedy `%` backtracking.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Evaluate an expression on one row, producing a value (`Null` stands for
/// SQL NULL / UNKNOWN). The expression must be bound.
pub fn eval_value(expr: &Expr, row: &[Value]) -> Value {
    match expr {
        Expr::Literal(v) => v.clone(),
        Expr::Column(c) => row[c.index].clone(),
        Expr::Cmp(op, a, b) => {
            let (av, bv) = (eval_value(a, row), eval_value(b, row));
            eval_cmp(*op, &av, &bv).to_value()
        }
        Expr::And(xs) => xs
            .iter()
            .map(|x| Truth::from_value(&eval_value(x, row)))
            .fold(Truth::True, Truth::and)
            .to_value(),
        Expr::Or(xs) => xs
            .iter()
            .map(|x| Truth::from_value(&eval_value(x, row)))
            .fold(Truth::False, Truth::or)
            .to_value(),
        Expr::Not(x) => Truth::from_value(&eval_value(x, row)).not().to_value(),
        Expr::IsNull(x) => Value::Bool(eval_value(x, row).is_null()),
        Expr::Arith(op, a, b) => {
            let (av, bv) = (eval_value(a, row), eval_value(b, row));
            match op {
                ArithOp::Add => arith::add(&av, &bv),
                ArithOp::Sub => arith::sub(&av, &bv),
                ArithOp::Mul => arith::mul(&av, &bv),
                ArithOp::Div => arith::div(&av, &bv),
            }
            .unwrap_or(Value::Null)
        }
        Expr::Neg(x) => arith::neg(&eval_value(x, row)).unwrap_or(Value::Null),
        Expr::If(c, t, e) => match Truth::from_value(&eval_value(c, row)) {
            Truth::True => eval_value(t, row),
            // SQL IF: a NULL condition takes the else branch.
            Truth::False | Truth::Unknown => eval_value(e, row),
        },
        Expr::Like(x, p) => match eval_value(x, row) {
            Value::Null => Value::Null,
            Value::Str(s) => Value::Bool(like_match(&s, p)),
            _ => Value::Null,
        },
        Expr::StartsWith(x, p) => match eval_value(x, row) {
            Value::Null => Value::Null,
            Value::Str(s) => Value::Bool(s.starts_with(p.as_str())),
            _ => Value::Null,
        },
        Expr::InList(x, vals) => {
            let v = eval_value(x, row);
            if v.is_null() {
                return Value::Null;
            }
            let mut saw_unknown = false;
            for cand in vals {
                match v.sql_eq(cand) {
                    Some(true) => return Value::Bool(true),
                    Some(false) => {}
                    None => saw_unknown = true,
                }
            }
            if saw_unknown {
                Value::Null
            } else {
                Value::Bool(false)
            }
        }
        Expr::Coalesce(xs) => xs
            .iter()
            .map(|x| eval_value(x, row))
            .find(|v| !v.is_null())
            .unwrap_or(Value::Null),
        Expr::Abs(x) => match eval_value(x, row) {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(i.saturating_abs()),
            Value::Float(f) => Value::Float(f.abs()),
            _ => Value::Null,
        },
    }
}

/// Evaluate a predicate on one row.
pub fn eval_predicate(expr: &Expr, row: &[Value]) -> Truth {
    Truth::from_value(&eval_value(expr, row))
}

pub(crate) fn eval_cmp(op: CmpOp, a: &Value, b: &Value) -> Truth {
    match a.sql_cmp(b) {
        None => Truth::Unknown,
        Some(ord) => Truth::from_bool(cmp_holds(op, ord)),
    }
}

#[inline]
pub(crate) fn cmp_holds(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Vectorized predicate evaluation over a micro-partition: one [`Truth`]
/// per row. Common shapes (`column <op> literal` on primitive types,
/// boolean combinators) take typed fast paths; everything else falls back
/// to row-at-a-time evaluation.
pub fn eval_truths(expr: &Expr, part: &MicroPartition) -> Vec<Truth> {
    eval_truths_range(expr, part, 0, part.row_count())
}

/// Range-restricted [`eval_truths`]: evaluate the predicate on partition
/// rows `start..start + len`. The returned vector has length `len`;
/// element `j` is the truth value of row `start + j`. This is the engine
/// of batch-at-a-time execution — batches evaluate only their own row
/// window instead of the whole partition.
pub fn eval_truths_range(
    expr: &Expr,
    part: &MicroPartition,
    start: usize,
    len: usize,
) -> Vec<Truth> {
    match expr {
        Expr::And(xs) => {
            let mut acc = vec![Truth::True; len];
            for x in xs {
                let t = eval_truths_range(x, part, start, len);
                for (a, b) in acc.iter_mut().zip(t) {
                    *a = a.and(b);
                }
            }
            acc
        }
        Expr::Or(xs) => {
            let mut acc = vec![Truth::False; len];
            for x in xs {
                let t = eval_truths_range(x, part, start, len);
                for (a, b) in acc.iter_mut().zip(t) {
                    *a = a.or(b);
                }
            }
            acc
        }
        Expr::Not(x) => {
            let mut t = eval_truths_range(x, part, start, len);
            for v in &mut t {
                *v = v.not();
            }
            t
        }
        Expr::IsNull(inner) => {
            if let Expr::Column(c) = inner.as_ref() {
                let chunk = part.column(c.index);
                return (start..start + len)
                    .map(|i| Truth::from_bool(!chunk.is_valid(i)))
                    .collect();
            }
            fallback_truths(expr, part, start, len)
        }
        Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => {
                cmp_column_literal(part, c.index, *op, v, start, len)
            }
            (Expr::Literal(v), Expr::Column(c)) => {
                cmp_column_literal(part, c.index, op.flip(), v, start, len)
            }
            _ => fallback_truths(expr, part, start, len),
        },
        _ => fallback_truths(expr, part, start, len),
    }
}

fn fallback_truths(expr: &Expr, part: &MicroPartition, start: usize, len: usize) -> Vec<Truth> {
    (start..start + len)
        .map(|i| {
            let row = part.row(i);
            eval_predicate(expr, &row)
        })
        .collect()
}

fn cmp_column_literal(
    part: &MicroPartition,
    col: usize,
    op: CmpOp,
    lit: &Value,
    start: usize,
    len: usize,
) -> Vec<Truth> {
    let chunk = part.column(col);
    if lit.is_null() {
        return vec![Truth::Unknown; len];
    }
    let rows = start..start + len;
    macro_rules! typed_loop {
        ($vals:expr, $litv:expr) => {{
            let lv = $litv;
            rows.map(|i| {
                if !chunk.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(cmp_holds(op, $vals[i].partial_cmp(&lv).unwrap()))
                }
            })
            .collect()
        }};
    }
    match (chunk.values(), lit) {
        (ColumnValues::Int(vals), Value::Int(l)) => typed_loop!(vals, *l),
        (ColumnValues::Date(vals), Value::Date(l)) => typed_loop!(vals, *l),
        (ColumnValues::Timestamp(vals), Value::Timestamp(l)) => typed_loop!(vals, *l),
        (ColumnValues::Float(vals), _) if lit.as_f64().is_some() => {
            let l = lit.as_f64().unwrap();
            rows.map(|i| {
                if !chunk.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(cmp_holds(op, vals[i].total_cmp(&l)))
                }
            })
            .collect()
        }
        (ColumnValues::Int(vals), Value::Float(_)) => {
            let l = lit.clone();
            rows.map(|i| {
                if !chunk.is_valid(i) {
                    Truth::Unknown
                } else {
                    eval_cmp(op, &Value::Int(vals[i]), &l)
                }
            })
            .collect()
        }
        (ColumnValues::Str(vals), Value::Str(l)) => rows
            .map(|i| {
                if !chunk.is_valid(i) {
                    Truth::Unknown
                } else {
                    Truth::from_bool(cmp_holds(op, vals[i].as_str().cmp(l.as_str())))
                }
            })
            .collect(),
        _ => rows
            .map(|i| eval_cmp(op, &chunk.value_at(i), lit))
            .collect(),
    }
}

/// Indices of rows whose truth value qualifies (TRUE).
pub fn selection_indices(truths: &[Truth]) -> Vec<usize> {
    truths
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.qualifies().then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use snowprune_storage::{ColumnBuilder, Field, Schema};
    use snowprune_types::ScalarType;

    #[test]
    fn like_matcher() {
        assert!(like_match("Marked-Alps-Ridge", "Marked-%-Ridge"));
        assert!(!like_match("Marked-Alps-Valley", "Marked-%-Ridge"));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b")); // literal traversal through %
        assert!(like_match("xxabyy", "%ab%"));
        assert!(like_match("ab", "%%ab"));
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("x", ScalarType::Int),
            Field::new("s", ScalarType::Str),
        ])
    }

    fn part() -> MicroPartition {
        let mut xs = ColumnBuilder::new(ScalarType::Int);
        let mut ss = ColumnBuilder::new(ScalarType::Str);
        for (x, s) in [
            (Some(1i64), Some("alpha")),
            (Some(5), None),
            (None, Some("beta")),
            (Some(9), Some("alpine")),
        ] {
            xs.push(x.map_or(Value::Null, Value::Int));
            ss.push(s.map_or(Value::Null, |v| Value::Str(v.into())));
        }
        MicroPartition::from_chunks(0, &schema(), vec![xs.finish(), ss.finish()])
    }

    #[test]
    fn three_valued_where() {
        let p = part();
        let e = col("x").gt(lit(2i64)).bind(&schema()).unwrap();
        let t = eval_truths(&e, &p);
        assert_eq!(
            t,
            vec![Truth::False, Truth::True, Truth::Unknown, Truth::True]
        );
        assert_eq!(selection_indices(&t), vec![1, 3]);
    }

    #[test]
    fn null_propagates_through_and_or() {
        let p = part();
        // x > 2 AND s LIKE 'al%':
        // row 1: TRUE AND unknown = unknown;
        // row 2: unknown AND FALSE = FALSE (Kleene short-circuit).
        let e = col("x")
            .gt(lit(2i64))
            .and(col("s").like("al%"))
            .bind(&schema())
            .unwrap();
        let t = eval_truths(&e, &p);
        assert_eq!(
            t,
            vec![Truth::False, Truth::Unknown, Truth::False, Truth::True]
        );
        // NOT of unknown is unknown; selection excludes it either way.
        let ne = e.not();
        let nt = eval_truths(&ne, &p);
        assert_eq!(
            nt,
            vec![Truth::True, Truth::Unknown, Truth::True, Truth::False]
        );
    }

    #[test]
    fn vectorized_matches_rowwise_on_complex_expr() {
        let p = part();
        let e = if_(col("s").like("alp%"), col("x").mul(lit(10i64)), col("x"))
            .ge(lit(10i64))
            .bind(&schema())
            .unwrap();
        let fast = eval_truths(&e, &p);
        let slow: Vec<Truth> = (0..p.row_count())
            .map(|i| eval_predicate(&e, &p.row(i)))
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn in_list_with_null_semantics() {
        let row = vec![Value::Int(3), Value::Null];
        let schema = schema();
        let e = col("x")
            .in_list(vec![Value::Int(1), Value::Int(2)])
            .bind(&schema)
            .unwrap();
        assert_eq!(eval_predicate(&e, &row), Truth::False);
        let e2 = col("x")
            .in_list(vec![Value::Int(1), Value::Null])
            .bind(&schema)
            .unwrap();
        // 3 IN (1, NULL) -> unknown, not false.
        assert_eq!(eval_predicate(&e2, &row), Truth::Unknown);
        let e3 = col("x")
            .in_list(vec![Value::Int(3), Value::Null])
            .bind(&schema)
            .unwrap();
        assert_eq!(eval_predicate(&e3, &row), Truth::True);
    }

    #[test]
    fn coalesce_and_abs() {
        let schema = schema();
        let row = vec![Value::Null, Value::Str("z".into())];
        let e = coalesce(vec![col("x"), lit(-7i64)])
            .abs()
            .bind(&schema)
            .unwrap();
        assert_eq!(eval_value(&e, &row), Value::Int(7));
    }

    #[test]
    fn if_null_condition_takes_else() {
        let schema = schema();
        let row = vec![Value::Null, Value::Null];
        // IF(x > 0, 1, 2) with x NULL -> 2.
        let e = if_(col("x").gt(lit(0i64)), lit(1i64), lit(2i64))
            .bind(&schema)
            .unwrap();
        assert_eq!(eval_value(&e, &row), Value::Int(2));
    }

    #[test]
    fn division_by_zero_is_null() {
        let schema = schema();
        let row = vec![Value::Int(4), Value::Null];
        let e = col("x").div(lit(0i64)).bind(&schema).unwrap();
        assert_eq!(eval_value(&e, &row), Value::Null);
    }
}
