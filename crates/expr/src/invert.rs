//! Predicate inversion for the two-pass fully-matching detection of §4.2.
//!
//! The paper identifies fully-matching partitions by "including a second
//! pass with the inverted predicate": a partition is fully matching iff the
//! inverted pass proves it contains no row *failing* the original
//! predicate. A row fails `p` when `p` evaluates to FALSE **or UNKNOWN**
//! (SQL WHERE only keeps TRUE), so the inversion must fold NULL handling in
//! — `s >= 50` inverts to `s < 50 OR s IS NULL`, not just `s < 50`.
//!
//! Not every predicate shape is invertible; [`invert_predicate`] returns
//! `None` for unsupported shapes, which surfaces in the paper's Table 2 as
//! the "unsupported shapes" category.

use snowprune_types::{Value, Verdict, ZoneMap};

use crate::ast::{CmpOp, Expr};
use crate::pruneval::prune_eval;

/// Build the *failure predicate* of `p`: an expression that is TRUE exactly
/// on the rows where `p` is FALSE or UNKNOWN. Returns `None` when `p` has a
/// shape we cannot invert soundly.
pub fn invert_predicate(p: &Expr) -> Option<Expr> {
    match p {
        Expr::Literal(Value::Bool(true)) => Some(Expr::Literal(Value::Bool(false))),
        Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => {
            Some(Expr::Literal(Value::Bool(true)))
        }
        // p1 AND p2 is TRUE iff both TRUE; it fails iff either fails.
        Expr::And(xs) => {
            let inv: Option<Vec<Expr>> = xs.iter().map(invert_predicate).collect();
            Some(Expr::Or(inv?))
        }
        // p1 OR p2 fails iff every disjunct fails.
        Expr::Or(xs) => {
            let inv: Option<Vec<Expr>> = xs.iter().map(invert_predicate).collect();
            Some(Expr::And(inv?))
        }
        // NOT x is TRUE iff x is FALSE; it fails iff x is TRUE or UNKNOWN.
        Expr::Not(x) => truthy_or_unknown(x),
        // a <op> b fails iff the negated comparison holds or either side is NULL.
        Expr::Cmp(op, a, b) => Some(or_nulls(
            Expr::Cmp(op.negate(), a.clone(), b.clone()),
            [a.as_ref(), b.as_ref()],
        )),
        // IS NULL is two-valued: it fails iff it is FALSE.
        Expr::IsNull(x) => Some(Expr::Not(Box::new(Expr::IsNull(x.clone())))),
        Expr::Like(x, pat) => Some(or_nulls(
            Expr::Not(Box::new(Expr::Like(x.clone(), pat.clone()))),
            [x.as_ref()],
        )),
        Expr::StartsWith(x, p) => Some(or_nulls(
            Expr::Not(Box::new(Expr::StartsWith(x.clone(), p.clone()))),
            [x.as_ref()],
        )),
        Expr::InList(x, vals) => {
            if vals.iter().any(Value::is_null) {
                // With a NULL in the list the predicate is never FALSE; it
                // fails iff it is not TRUE, i.e. iff no element matches —
                // which we cannot express better than NOT IN ... OR NULL.
                // NOT (x IN (..)) is UNKNOWN on exactly the failing rows,
                // so the failure predicate is `NOT(x = v1 OR x = v2 ...)`
                // over non-null values, OR x IS NULL.
                let eqs: Vec<Expr> = vals
                    .iter()
                    .filter(|v| !v.is_null())
                    .map(|v| Expr::Cmp(CmpOp::Eq, x.clone(), Box::new(Expr::Literal(v.clone()))))
                    .collect();
                let no_match = if eqs.is_empty() {
                    Expr::Literal(Value::Bool(true))
                } else {
                    Expr::And(
                        eqs.into_iter()
                            .map(|e| {
                                or_nulls_noexpand(Expr::Cmp(CmpOp::Ne, cmp_lhs(&e), cmp_rhs(&e)))
                            })
                            .collect(),
                    )
                };
                Some(or_nulls(no_match, [x.as_ref()]))
            } else {
                Some(or_nulls(
                    Expr::Not(Box::new(Expr::InList(x.clone(), vals.clone()))),
                    [x.as_ref()],
                ))
            }
        }
        // Bare boolean column: fails iff FALSE or NULL.
        Expr::Column(c) => Some(or_nulls(
            Expr::Not(Box::new(Expr::Column(c.clone()))),
            [&Expr::Column(c.clone())],
        )),
        // IF-predicates, arithmetic-as-boolean, COALESCE, and non-boolean
        // literals: unsupported.
        Expr::If(..)
        | Expr::Arith(..)
        | Expr::Neg(_)
        | Expr::Abs(_)
        | Expr::Coalesce(_)
        | Expr::Literal(_) => None,
    }
}

fn cmp_lhs(e: &Expr) -> Box<Expr> {
    match e {
        Expr::Cmp(_, a, _) => a.clone(),
        _ => unreachable!(),
    }
}

fn cmp_rhs(e: &Expr) -> Box<Expr> {
    match e {
        Expr::Cmp(_, _, b) => b.clone(),
        _ => unreachable!(),
    }
}

fn or_nulls_noexpand(e: Expr) -> Expr {
    match &e {
        Expr::Cmp(_, a, b) => or_nulls(e.clone(), [a.as_ref(), b.as_ref()]),
        _ => e,
    }
}

/// `e OR x1 IS NULL OR x2 IS NULL ...` skipping literal operands (which are
/// never NULL unless they are the NULL literal).
fn or_nulls<'a>(e: Expr, operands: impl IntoIterator<Item = &'a Expr>) -> Expr {
    let mut disjuncts = vec![e];
    for op in operands {
        match op {
            Expr::Literal(v) if !v.is_null() => {}
            _ => disjuncts.push(Expr::IsNull(Box::new(op.clone()))),
        }
    }
    if disjuncts.len() == 1 {
        disjuncts.pop().unwrap()
    } else {
        Expr::Or(disjuncts)
    }
}

/// An expression that is TRUE exactly where `x` is TRUE or UNKNOWN (used to
/// invert `NOT x`).
fn truthy_or_unknown(x: &Expr) -> Option<Expr> {
    // x is TRUE-or-UNKNOWN iff x does not fail... iff NOT(fails(x)) — but we
    // need an *expression*. fails(x) is exactly what invert_predicate
    // builds, and "TRUE or UNKNOWN" == NOT FALSE. A row has x FALSE iff
    // NOT x is TRUE, i.e. iff fails(NOT x)... to avoid infinite regress we
    // handle the leaf cases directly.
    match x {
        Expr::Cmp(op, a, b) => Some(or_nulls(
            Expr::Cmp(*op, a.clone(), b.clone()),
            [a.as_ref(), b.as_ref()],
        )),
        Expr::Like(inner, p) => Some(or_nulls(
            Expr::Like(inner.clone(), p.clone()),
            [inner.as_ref()],
        )),
        Expr::StartsWith(inner, p) => Some(or_nulls(
            Expr::StartsWith(inner.clone(), p.clone()),
            [inner.as_ref()],
        )),
        Expr::IsNull(inner) => Some(Expr::IsNull(inner.clone())),
        Expr::Not(inner) => {
            // NOT (NOT y) fails iff NOT y is T or U iff y is F or U == fails(y).
            invert_predicate(inner)
        }
        Expr::And(xs) => {
            // AND is T-or-U iff no conjunct is FALSE iff every conjunct is T-or-U.
            let parts: Option<Vec<Expr>> = xs.iter().map(truthy_or_unknown).collect();
            Some(Expr::And(parts?))
        }
        Expr::Or(xs) => {
            // OR is FALSE iff all disjuncts FALSE; T-or-U iff some disjunct T-or-U.
            let parts: Option<Vec<Expr>> = xs.iter().map(truthy_or_unknown).collect();
            Some(Expr::Or(parts?))
        }
        Expr::Literal(Value::Bool(b)) => Some(Expr::Literal(Value::Bool(*b))),
        Expr::Literal(Value::Null) => Some(Expr::Literal(Value::Bool(true))),
        _ => None,
    }
}

/// The paper's two-pass fully-matching check: run filter pruning with the
/// inverted predicate and see whether the partition is *not matching* under
/// it. Returns `None` for unsupported shapes.
pub fn fully_matching_two_pass(p: &Expr, meta: &[ZoneMap]) -> Option<bool> {
    let inverted = invert_predicate(p)?;
    let v: Verdict = prune_eval(&inverted, meta);
    Some(v.prunable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::dsl::*;
    use crate::eval::{eval_predicate, Truth};
    use snowprune_storage::{Field, Schema};
    use snowprune_types::ScalarType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("species", ScalarType::Str),
            Field::new("s", ScalarType::Int),
        ])
    }

    #[test]
    fn paper_inversion_example() {
        // §4.2: species LIKE 'Alpine%' AND s >= 50 inverts to
        // species NOT LIKE 'Alpine%' OR s < 50 (plus NULL guards).
        let p = col("species")
            .like("Alpine%")
            .and(col("s").ge(lit(50i64)))
            .bind(&schema())
            .unwrap();
        let inv = invert_predicate(&p).unwrap();
        let s = inv.to_string();
        assert!(s.contains("NOT (species LIKE 'Alpine%')"), "{s}");
        assert!(s.contains("(s < 50)"), "{s}");
        assert!(s.contains("IS NULL"), "{s}");
    }

    /// The failure predicate must be TRUE exactly where the original is not
    /// TRUE, row by row.
    fn check_pointwise(p: &Expr, rows: &[Vec<Value>]) {
        let inv = invert_predicate(p).expect("invertible");
        for row in rows {
            let orig = eval_predicate(p, row);
            let fails = eval_predicate(&inv, row);
            assert_eq!(
                fails == Truth::True,
                orig != Truth::True,
                "row {row:?}: orig={orig:?} fails={fails:?} inv={inv}"
            );
        }
    }

    #[test]
    fn inversion_is_pointwise_complement_with_nulls() {
        let s = schema();
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Str("Alpine Ibex".into()), Value::Int(101)],
            vec![Value::Str("Alpine Bat".into()), Value::Int(6)],
            vec![Value::Str("Red Fox".into()), Value::Int(40)],
            vec![Value::Null, Value::Int(60)],
            vec![Value::Str("Alpine Goat".into()), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        let preds = vec![
            col("species").like("Alpine%").and(col("s").ge(lit(50i64))),
            col("s")
                .lt(lit(50i64))
                .or(col("species").eq(lit("Red Fox"))),
            col("s").is_null(),
            col("s").is_not_null(),
            col("species").like("Alpine%").not(),
            col("s").in_list(vec![Value::Int(6), Value::Int(101)]),
            col("s").in_list(vec![Value::Int(6), Value::Null]),
            col("s").ge(lit(10i64)).not().or(col("s").gt(lit(90i64))),
        ];
        for p in preds {
            check_pointwise(&p.bind(&s).unwrap(), &rows);
        }
    }

    #[test]
    fn unsupported_shapes_return_none() {
        let s = schema();
        let p = if_(col("s").gt(lit(0i64)), lit(true), lit(false))
            .bind(&s)
            .unwrap();
        assert!(invert_predicate(&p).is_none());
    }

    #[test]
    fn two_pass_agrees_with_lattice_on_figure5() {
        let s = schema();
        let pred = col("species")
            .like("Alpine%")
            .and(col("s").ge(lit(50i64)))
            .bind(&s)
            .unwrap();
        let zm = |lo: &str, hi: &str, slo: i64, shi: i64| {
            vec![
                ZoneMap {
                    min: Some(Value::Str(lo.into())),
                    max: Some(Value::Str(hi.into())),
                    min_exact: true,
                    max_exact: true,
                    null_count: 0,
                    row_count: 3,
                },
                ZoneMap {
                    min: Some(Value::Int(slo)),
                    max: Some(Value::Int(shi)),
                    min_exact: true,
                    max_exact: true,
                    null_count: 0,
                    row_count: 3,
                },
            ]
        };
        // Partition 3 of Figure 5: fully matching under both methods.
        let p3 = zm("Alpine Goat", "Alpine Sheep", 76, 101);
        assert_eq!(fully_matching_two_pass(&pred, &p3), Some(true));
        assert!(prune_eval(&pred, &p3).fully_matching());
        // Partition 2: not fully matching under both.
        let p2 = zm("Alpine Bat", "Red Fox", 6, 70);
        assert_eq!(fully_matching_two_pass(&pred, &p2), Some(false));
        assert!(!prune_eval(&pred, &p2).fully_matching());
    }
}
