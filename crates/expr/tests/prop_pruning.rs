//! Property tests for the pruning soundness invariants:
//!
//! 1. A pruned partition (`!may_true`) never contains a qualifying row
//!    (the paper's "no false negatives" guarantee, §2.1).
//! 2. A fully-matching partition (`all_true`) never contains a
//!    non-qualifying row (§4.2).
//! 3. The dual facts (`may_false` / `all_false`) are likewise conservative,
//!    which is what makes verdicts sound under `NOT`.
//! 4. The two-pass inverted-predicate method agrees with ground truth.
//! 5. Ranges derived for value expressions contain every row's value.
//!
//! All hold for arbitrary data, arbitrary (generated) predicates, and
//! arbitrary string-metadata truncation.

use proptest::prelude::*;

use snowprune_expr::ast::{dsl, CmpOp, Expr};
use snowprune_expr::{
    derive_range, eval_predicate, eval_value, fully_matching_two_pass, prune_eval, Truth,
};
use snowprune_types::{Value, ZoneMap};

const COLS: [&str; 4] = ["a", "b", "s", "f"];

fn col_idx(name: &str) -> usize {
    COLS.iter().position(|c| *c == name).unwrap()
}

fn bound_col(name: &str) -> Expr {
    Expr::Column(snowprune_expr::ColumnRef {
        index: col_idx(name),
        name: name.to_owned(),
    })
}

/// One generated row: (a: Int?, b: Int?, s: Str?, f: Float?).
fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    let int = prop_oneof![
        3 => (-20i64..20).prop_map(Value::Int),
        1 => Just(Value::Null),
    ];
    let int2 = prop_oneof![
        3 => (-20i64..20).prop_map(Value::Int),
        1 => Just(Value::Null),
    ];
    let string = prop_oneof![
        2 => "[a-c]{0,6}".prop_map(Value::Str),
        1 => Just(Value::Str("Alpine Ibex".into())),
        1 => Just(Value::Str("Marked-A-Ridge".into())),
        1 => Just(Value::Null),
    ];
    let float = prop_oneof![
        3 => (-100i32..100).prop_map(|i| Value::Float(i as f64 / 4.0)),
        1 => Just(Value::Null),
    ];
    (int, int2, string, float).prop_map(|(a, b, s, f)| vec![a, b, s, f])
}

fn int_col() -> impl Strategy<Value = Expr> {
    prop_oneof![Just(bound_col("a")), Just(bound_col("b"))]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Value expressions over the int/float columns.
fn value_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        int_col(),
        Just(bound_col("f")),
        (-25i64..25).prop_map(dsl::lit),
        (-40i32..40).prop_map(|i| dsl::lit(i as f64 / 8.0)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            inner.clone().prop_map(|a| a.neg()),
            inner.clone().prop_map(|a| a.abs()),
            (
                inner.clone(),
                inner.clone(),
                inner.clone(),
                cmp_op(),
                inner.clone()
            )
                .prop_map(|(c1, c2, t, op, e)| dsl::if_(
                    Expr::Cmp(op, Box::new(c1), Box::new(c2)),
                    t,
                    e
                )),
            proptest::collection::vec(inner, 1..3).prop_map(dsl::coalesce),
        ]
    })
}

/// Predicate expressions.
fn predicate() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (value_expr(), cmp_op(), value_expr()).prop_map(|(a, op, b)| Expr::Cmp(
            op,
            Box::new(a),
            Box::new(b)
        )),
        "[a-cAIM%_-]{0,5}".prop_map(|p| bound_col("s").like(p)),
        Just(bound_col("s").like("Alpine%")),
        Just(bound_col("s").like("Marked-%-Ridge")),
        "[a-cA]{0,3}".prop_map(|p| bound_col("s").starts_with(p)),
        int_col().prop_map(|c| c.is_null()),
        Just(bound_col("s").is_null()),
        (
            int_col(),
            proptest::collection::vec(
                prop_oneof![3 => (-20i64..20).prop_map(Value::Int), 1 => Just(Value::Null)],
                0..4
            )
        )
            .prop_map(|(c, vs)| c.in_list(vs)),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn zone_maps(rows: &[Vec<Value>], string_prefix: usize) -> Vec<ZoneMap> {
    (0..COLS.len())
        .map(|c| {
            let vals: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            ZoneMap::build(vals.iter(), string_prefix)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Invariants 1-3: verdicts are conservative w.r.t. per-row evaluation.
    #[test]
    fn verdict_soundness(
        rows in proptest::collection::vec(row_strategy(), 1..24),
        pred in predicate(),
        prefix in prop_oneof![Just(2usize), Just(3), Just(32)],
    ) {
        let meta = zone_maps(&rows, prefix);
        let verdict = prune_eval(&pred, &meta);
        let truths: Vec<Truth> = rows.iter().map(|r| eval_predicate(&pred, r)).collect();
        let any_true = truths.contains(&Truth::True);
        let all_true = truths.iter().all(|t| *t == Truth::True);
        let any_false = truths.contains(&Truth::False);
        let all_false = truths.iter().all(|t| *t == Truth::False);

        if !verdict.may_true {
            prop_assert!(!any_true,
                "pruned partition contains qualifying row: pred={pred} verdict={verdict:?}");
        }
        if verdict.all_true {
            prop_assert!(all_true,
                "fully-matching partition contains non-qualifying row: pred={pred}");
        }
        if !verdict.may_false {
            prop_assert!(!any_false, "may_false unsound: pred={pred}");
        }
        if verdict.all_false {
            prop_assert!(all_false, "all_false unsound: pred={pred}");
        }
    }

    /// Invariant 4: the two-pass inverted-predicate method is conservative,
    /// and its claims match ground truth exactly like the lattice's.
    #[test]
    fn two_pass_soundness(
        rows in proptest::collection::vec(row_strategy(), 1..24),
        pred in predicate(),
        prefix in prop_oneof![Just(2usize), Just(32)],
    ) {
        let meta = zone_maps(&rows, prefix);
        let truths: Vec<Truth> = rows.iter().map(|r| eval_predicate(&pred, r)).collect();
        let all_true = truths.iter().all(|t| *t == Truth::True);
        if let Some(fm) = fully_matching_two_pass(&pred, &meta) {
            if fm {
                prop_assert!(all_true,
                    "two-pass claimed fully-matching falsely: pred={pred}");
            }
        }
        // The single-pass lattice must make the same guarantee.
        if prune_eval(&pred, &meta).all_true {
            prop_assert!(all_true);
        }
    }

    /// Invariant 5: derived ranges contain every row's evaluated value.
    #[test]
    fn range_derivation_soundness(
        rows in proptest::collection::vec(row_strategy(), 1..24),
        expr in value_expr(),
    ) {
        let meta = zone_maps(&rows, 32);
        let range = derive_range(&expr, &meta);
        for row in &rows {
            let v = eval_value(&expr, row);
            if v.is_null() {
                prop_assert!(range.may_null,
                    "row produced NULL but range says no nulls: expr={expr}");
            } else {
                prop_assert!(!range.all_null, "non-null value from all-null range: {expr}");
                if let Some(lo) = &range.lo {
                    if let Some(ord) = v.sql_cmp(lo) {
                        prop_assert!(ord != std::cmp::Ordering::Less,
                            "value {v} below derived lo {lo} for {expr}");
                    }
                }
                if let Some(hi) = &range.hi {
                    if let Some(ord) = v.sql_cmp(hi) {
                        prop_assert!(ord != std::cmp::Ordering::Greater,
                            "value {v} above derived hi {hi} for {expr}");
                    }
                }
            }
        }
    }

    /// Constant folding must not change row-level results.
    #[test]
    fn folding_preserves_semantics(
        rows in proptest::collection::vec(row_strategy(), 1..8),
        pred in predicate(),
    ) {
        let folded = snowprune_expr::fold_constants(&pred);
        for row in &rows {
            prop_assert_eq!(eval_predicate(&pred, row), eval_predicate(&folded, row),
                "folding changed semantics: {} vs {}", &pred, &folded);
        }
    }
}
