//! Property test for the selection-vector predicate kernels: on random
//! typed columns with NULLs (all six scalar types), arbitrary generated
//! predicates, and arbitrary row windows, the batch kernel path
//! ([`snowprune_expr::kernel::select_range`] — typed loops plus the
//! scalar fallback) must agree *exactly* with scalar Kleene evaluation
//! ([`eval_truths_range`] + [`selection_indices`]), including NaN
//! ordering, int/float cross-type comparisons, and NULL literals. The
//! compositional form ([`snowprune_expr::kernel::refine`] conjunct by
//! conjunct) must agree with the one-shot form.

use proptest::prelude::*;

use snowprune_expr::ast::{CmpOp, Expr};
use snowprune_expr::kernel::{refine, select_range};
use snowprune_expr::{eval_truths_range, selection_indices};
use snowprune_storage::{ColumnBuilder, Field, MicroPartition, Schema};
use snowprune_types::{ScalarType, Value};

const COLS: [(&str, ScalarType); 6] = [
    ("a", ScalarType::Int),
    ("b", ScalarType::Int),
    ("s", ScalarType::Str),
    ("f", ScalarType::Float),
    ("d", ScalarType::Date),
    ("t", ScalarType::Timestamp),
];

fn schema() -> Schema {
    Schema::new(COLS.iter().map(|(n, ty)| Field::new(*n, *ty)).collect())
}

fn bound_col(name: &str) -> Expr {
    Expr::Column(snowprune_expr::ColumnRef {
        index: COLS.iter().position(|(n, _)| *n == name).unwrap(),
        name: name.to_owned(),
    })
}

/// One generated row covering every scalar type, each nullable.
fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    let int = |range: std::ops::Range<i64>| {
        prop_oneof![
            3 => range.prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
    };
    let string = prop_oneof![
        3 => "[a-c]{0,5}".prop_map(Value::Str),
        1 => Just(Value::Null),
    ];
    let float = prop_oneof![
        4 => (-60i32..60).prop_map(|i| Value::Float(i as f64 / 4.0)),
        1 => Just(Value::Float(f64::NAN)),
        1 => Just(Value::Null),
    ];
    let date = prop_oneof![
        3 => (18_000i32..18_030).prop_map(Value::Date),
        1 => Just(Value::Null),
    ];
    let ts = prop_oneof![
        3 => (0i64..5_000).prop_map(Value::Timestamp),
        1 => Just(Value::Null),
    ];
    (int(-20i64..20), int(-500i64..500), string, float, date, ts)
        .prop_map(|(a, b, s, f, d, t)| vec![a, b, s, f, d, t])
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Predicates biased toward kernel-eligible conjuncts
/// (`column <op> literal`, `IS NULL`) but including flipped operand
/// order, NULL literals, cross-type int/float comparisons, and
/// arithmetic/LIKE/IN shapes that must take the scalar fallback.
fn predicate() -> impl Strategy<Value = Expr> {
    let cmp = |c: Expr, lit_strat: BoxedStrategy<Value>| {
        let flip = prop_oneof![Just(false), Just(true)];
        (cmp_op(), lit_strat, flip).prop_map(move |(op, l, flip)| {
            if flip {
                Expr::Cmp(op, Box::new(Expr::Literal(l)), Box::new(c.clone()))
            } else {
                Expr::Cmp(op, Box::new(c.clone()), Box::new(Expr::Literal(l)))
            }
        })
    };
    let int_lit = prop_oneof![
        6 => (-25i64..25).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
    .boxed();
    let float_lit = prop_oneof![
        5 => (-70i32..70).prop_map(|i| Value::Float(i as f64 / 4.0)),
        1 => Just(Value::Float(f64::NAN)),
        1 => Just(Value::Null),
    ]
    .boxed();
    let str_lit = prop_oneof![
        5 => "[a-c]{0,4}".prop_map(Value::Str),
        1 => Just(Value::Null),
    ]
    .boxed();
    let leaf = prop_oneof![
        cmp(bound_col("a"), int_lit.clone()),
        cmp(bound_col("b"), int_lit.clone()),
        // Cross-type comparisons: int column vs float literal and the
        // float column vs int literal both have dedicated kernel arms.
        cmp(bound_col("a"), float_lit.clone()),
        cmp(bound_col("f"), float_lit),
        cmp(bound_col("f"), int_lit.clone()),
        cmp(bound_col("s"), str_lit),
        cmp(
            bound_col("d"),
            (18_000i32..18_030).prop_map(Value::Date).boxed()
        ),
        cmp(
            bound_col("t"),
            (0i64..5_000).prop_map(Value::Timestamp).boxed()
        ),
        prop_oneof![
            Just(bound_col("a")),
            Just(bound_col("s")),
            Just(bound_col("f"))
        ]
        .prop_map(|c| c.is_null()),
        "[a-c%_]{0,4}".prop_map(|p| bound_col("s").like(p)),
        "[a-c]{0,2}".prop_map(|p| bound_col("s").starts_with(p)),
        proptest::collection::vec(int_lit, 0..4).prop_map(|vs| bound_col("a").in_list(vs)),
        // Arithmetic comparand: never kernel-eligible, exercises the
        // scalar fallback on exactly the still-selected rows.
        (cmp_op(), -40i64..40).prop_map(|(op, l)| Expr::Cmp(
            op,
            Box::new(bound_col("a").add(bound_col("b"))),
            Box::new(Expr::Literal(Value::Int(l)))
        )),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn build_partition(rows: &[Vec<Value>]) -> MicroPartition {
    let schema = schema();
    let chunks = (0..COLS.len())
        .map(|c| {
            let mut b = ColumnBuilder::new(COLS[c].1);
            for row in rows {
                b.push(row[c].clone());
            }
            b.finish()
        })
        .collect();
    MicroPartition::from_chunks(0, &schema, chunks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The kernel path equals scalar evaluation on every window.
    #[test]
    fn kernels_match_scalar_eval(
        rows in proptest::collection::vec(row_strategy(), 1..40),
        pred in predicate(),
        raw_start in 0usize..64,
        raw_len in 0usize..64,
    ) {
        let part = build_partition(&rows);
        let start = raw_start % rows.len();
        let len = raw_len % (rows.len() - start + 1);
        let got = select_range(&pred, &part, start, len).to_vec();
        let want: Vec<usize> =
            selection_indices(&eval_truths_range(&pred, &part, start, len))
                .into_iter()
                .map(|j| j + start)
                .collect();
        prop_assert_eq!(
            got, want,
            "kernel diverged from scalar eval: pred={} window {}+{}",
            pred, start, len
        );
    }

    /// Conjunct-by-conjunct refinement equals the one-shot conjunction
    /// (how chained WHERE stages compose in the batch pipeline).
    #[test]
    fn refine_composition_matches_conjunction(
        rows in proptest::collection::vec(row_strategy(), 1..40),
        p1 in predicate(),
        p2 in predicate(),
    ) {
        let part = build_partition(&rows);
        let n = rows.len();
        let mut sel = select_range(&p1, &part, 0, n);
        refine(&p2, &part, &mut sel);
        let both = p1.and(p2);
        prop_assert_eq!(
            sel.to_vec(),
            select_range(&both, &part, 0, n).to_vec(),
            "sequential refine diverged from conjunction: pred={}",
            both
        );
    }
}
