//! Fagin's Threshold Algorithm (TA) for term-at-a-time top-k joins over
//! score-sorted lists [Fagin et al. 2003].

use std::collections::HashSet;

use crate::lists::{PostingList, ScoredDoc};

/// Statistics from a TA run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaStats {
    /// Sorted-access steps (rounds × lists).
    pub sorted_accesses: u64,
    /// Random-access score lookups.
    pub random_accesses: u64,
}

/// Run TA: lists are traversed in descending score order in lock-step; for
/// every newly seen doc the full score is assembled via random access; the
/// algorithm halts when the k-th best full score is at least the threshold
/// (sum of the current positions' scores).
pub fn threshold_algorithm(lists: &[PostingList], k: usize) -> (Vec<ScoredDoc>, TaStats) {
    let mut stats = TaStats::default();
    if k == 0 || lists.is_empty() {
        return (Vec::new(), stats);
    }
    // Score-descending views.
    let sorted: Vec<Vec<usize>> = lists
        .iter()
        .map(|l| {
            let mut idx: Vec<usize> = (0..l.len()).collect();
            idx.sort_by(|&a, &b| {
                l.postings[b]
                    .score
                    .partial_cmp(&l.postings[a].score)
                    .unwrap()
            });
            idx
        })
        .collect();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut top: Vec<ScoredDoc> = Vec::new();
    let max_depth = sorted.iter().map(Vec::len).max().unwrap_or(0);
    for depth in 0..max_depth {
        let mut threshold = 0.0;
        for (li, list) in lists.iter().enumerate() {
            let Some(&pi) = sorted[li].get(depth) else {
                continue;
            };
            stats.sorted_accesses += 1;
            let posting = list.postings[pi];
            threshold += posting.score;
            if seen.insert(posting.doc) {
                // Assemble the document's full score across all lists.
                let mut score = 0.0;
                for other in lists {
                    stats.random_accesses += 1;
                    score += other.score_of(posting.doc).unwrap_or(0.0);
                }
                push_top(
                    &mut top,
                    ScoredDoc {
                        doc: posting.doc,
                        score,
                    },
                    k,
                );
            }
        }
        if top.len() >= k && top.last().map(|d| d.score).unwrap_or(0.0) >= threshold {
            break;
        }
    }
    (top, stats)
}

fn push_top(top: &mut Vec<ScoredDoc>, d: ScoredDoc, k: usize) {
    top.push(d);
    top.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    top.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::Posting;
    use crate::wand::exhaustive_topk;

    fn lists() -> Vec<PostingList> {
        let l1 = PostingList::new(
            (0..100u32)
                .map(|d| Posting {
                    doc: d,
                    score: ((d * 7) % 13) as f64,
                })
                .collect(),
            8,
        );
        let l2 = PostingList::new(
            (0..100u32)
                .step_by(3)
                .map(|d| Posting {
                    doc: d,
                    score: ((d * 11) % 17) as f64,
                })
                .collect(),
            8,
        );
        vec![l1, l2]
    }

    #[test]
    fn matches_exhaustive_scores() {
        let ls = lists();
        let (ta, stats) = threshold_algorithm(&ls, 5);
        let exact = exhaustive_topk(&ls, 5);
        let ta_scores: Vec<f64> = ta.iter().map(|d| d.score).collect();
        let exact_scores: Vec<f64> = exact.iter().map(|d| d.score).collect();
        assert_eq!(ta_scores, exact_scores);
        assert!(stats.sorted_accesses > 0);
    }

    #[test]
    fn early_termination_beats_full_scan() {
        // A list with one huge score should let TA stop early.
        let mut postings: Vec<Posting> = (0..1000u32)
            .map(|d| Posting { doc: d, score: 1.0 })
            .collect();
        postings[500].score = 1000.0;
        let ls = vec![PostingList::new(postings, 64)];
        let (top, stats) = threshold_algorithm(&ls, 1);
        assert_eq!(top[0].doc, 500);
        assert!(
            stats.sorted_accesses < 100,
            "TA should stop after a few rounds: {stats:?}"
        );
    }

    #[test]
    fn k_zero_is_empty() {
        let (top, _) = threshold_algorithm(&lists(), 0);
        assert!(top.is_empty());
    }
}
