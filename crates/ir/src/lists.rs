//! Posting lists: `(doc_id, score)` pairs sorted by document id, with
//! list-level and block-level max scores.

/// One posting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Posting {
    /// Document id.
    pub doc: u32,
    /// Term score contribution for this document.
    pub score: f64,
}

/// A document with its aggregated score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredDoc {
    /// Document id.
    pub doc: u32,
    /// Aggregated score across query terms.
    pub score: f64,
}

/// Block metadata: the max score within a fixed span of postings.
#[derive(Clone, Copy, Debug)]
pub struct Block {
    /// Index of the first posting of the block.
    pub start: usize,
    /// Last doc id covered by the block.
    pub last_doc: u32,
    /// Max score within the block (the block-max bound).
    pub max_score: f64,
}

/// A doc-sorted posting list with block-max metadata.
#[derive(Clone, Debug)]
pub struct PostingList {
    /// Postings sorted by doc id (deduplicated).
    pub postings: Vec<Posting>,
    /// Max score over the whole list (the WAND list bound).
    pub max_score: f64,
    /// Block-max metadata at fixed posting spans.
    pub blocks: Vec<Block>,
}

impl PostingList {
    /// Build from postings (sorted by doc id internally). `block_size`
    /// controls block-max granularity (the analogue of partition size).
    pub fn new(mut postings: Vec<Posting>, block_size: usize) -> Self {
        assert!(block_size > 0);
        postings.sort_by_key(|p| p.doc);
        postings.dedup_by_key(|p| p.doc);
        let max_score = postings.iter().map(|p| p.score).fold(0.0, f64::max);
        let blocks = postings
            .chunks(block_size)
            .enumerate()
            .map(|(i, chunk)| Block {
                start: i * block_size,
                last_doc: chunk.last().unwrap().doc,
                max_score: chunk.iter().map(|p| p.score).fold(0.0, f64::max),
            })
            .collect();
        PostingList {
            postings,
            max_score,
            blocks,
        }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when the list has no postings.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Index of the first posting with `doc >= target`, starting at `from`.
    pub fn seek(&self, from: usize, target: u32) -> usize {
        let slice = &self.postings[from..];
        from + slice.partition_point(|p| p.doc < target)
    }

    /// The block containing posting index `idx`.
    pub fn block_of(&self, idx: usize) -> &Block {
        let bs = self.block_size();
        &self.blocks[idx / bs]
    }

    fn block_size(&self) -> usize {
        if self.blocks.len() <= 1 {
            self.postings.len().max(1)
        } else {
            self.blocks[1].start - self.blocks[0].start
        }
    }

    /// Random-access score lookup (used by the Threshold Algorithm).
    pub fn score_of(&self, doc: u32) -> Option<f64> {
        self.postings
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| self.postings[i].score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> PostingList {
        PostingList::new(
            vec![
                Posting { doc: 5, score: 1.0 },
                Posting { doc: 1, score: 3.0 },
                Posting { doc: 9, score: 2.0 },
                Posting {
                    doc: 12,
                    score: 0.5,
                },
            ],
            2,
        )
    }

    #[test]
    fn sorts_and_blocks() {
        let l = list();
        assert_eq!(l.postings[0].doc, 1);
        assert_eq!(l.max_score, 3.0);
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.blocks[0].last_doc, 5);
        assert_eq!(l.blocks[0].max_score, 3.0);
        assert_eq!(l.blocks[1].max_score, 2.0);
    }

    #[test]
    fn seek_and_lookup() {
        let l = list();
        assert_eq!(l.seek(0, 6), 2); // first doc >= 6 is 9 at index 2
        assert_eq!(l.seek(2, 100), 4);
        assert_eq!(l.score_of(9), Some(2.0));
        assert_eq!(l.score_of(2), None);
    }
}
