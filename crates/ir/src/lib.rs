//! Information-retrieval top-k baselines (§5.1 of the paper): the
//! Threshold Algorithm (TAAT), WAND, and Block-Max WAND (DAAT), plus an
//! exhaustive scorer as ground truth.
//!
//! The paper's top-k partition pruning is the relational adaptation of the
//! block-max idea: a micro-partition's zone-map max plays the role of a
//! block-max score, and the heap's k-th value plays the role of the
//! threshold θ. These implementations exist to (a) document that lineage
//! in executable form and (b) serve as ablation baselines in the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod lists;
pub mod ta;
pub mod wand;

pub use lists::{Posting, PostingList, ScoredDoc};
pub use ta::threshold_algorithm;
pub use wand::{block_max_wand, exhaustive_topk, wand, WandStats};
