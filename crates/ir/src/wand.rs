//! WAND [Broder et al. 2003] and Block-Max WAND [Ding & Suel 2011]:
//! document-at-a-time top-k with upper-bound skipping — the direct
//! ancestors of the paper's partition-level top-k pruning.

use crate::lists::{PostingList, ScoredDoc};

/// Work counters for comparing the algorithms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WandStats {
    /// Documents fully scored.
    pub docs_scored: u64,
    /// Pivot-selection iterations.
    pub pivots: u64,
    /// Postings skipped via block-max checks (BMW only).
    pub block_skips: u64,
}

/// Exhaustive baseline: score every document (the "standard heap-based
/// approach" of §5 in IR clothing).
pub fn exhaustive_topk(lists: &[PostingList], k: usize) -> Vec<ScoredDoc> {
    use std::collections::HashMap;
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for l in lists {
        for p in &l.postings {
            *scores.entry(p.doc).or_insert(0.0) += p.score;
        }
    }
    let mut docs: Vec<ScoredDoc> = scores
        .into_iter()
        .map(|(doc, score)| ScoredDoc { doc, score })
        .collect();
    docs.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    docs.truncate(k);
    docs
}

struct Cursor {
    list: usize,
    pos: usize,
}

/// Shared WAND/BMW driver. `block_max` enables the BMW refinement.
fn wand_driver(lists: &[PostingList], k: usize, block_max: bool) -> (Vec<ScoredDoc>, WandStats) {
    let mut stats = WandStats::default();
    if k == 0 || lists.is_empty() {
        return (Vec::new(), stats);
    }
    let mut cursors: Vec<Cursor> = (0..lists.len())
        .map(|i| Cursor { list: i, pos: 0 })
        .collect();
    let mut top: Vec<ScoredDoc> = Vec::new();
    let mut theta = 0.0f64;
    loop {
        // Drop exhausted cursors; sort by current doc.
        cursors.retain(|c| c.pos < lists[c.list].len());
        if cursors.is_empty() {
            break;
        }
        cursors.sort_by_key(|c| lists[c.list].postings[c.pos].doc);
        stats.pivots += 1;
        // Find the pivot: the first cursor where the accumulated list
        // upper bounds exceed θ.
        let mut acc = 0.0;
        let mut pivot_idx = None;
        for (i, c) in cursors.iter().enumerate() {
            acc += lists[c.list].max_score;
            if acc > theta || top.len() < k {
                pivot_idx = Some(i);
                break;
            }
        }
        let Some(pi) = pivot_idx else {
            break; // no document can beat θ anymore
        };
        let pivot_doc = lists[cursors[pi].list].postings[cursors[pi].pos].doc;
        // BMW refinement: check the *block* maxes at the pivot; if they
        // cannot beat θ, skip past the earliest block boundary.
        if block_max && top.len() >= k {
            let mut block_sum = 0.0;
            for c in &cursors[..=pi] {
                let idx = lists[c.list].seek(c.pos, pivot_doc);
                if idx < lists[c.list].len() {
                    block_sum += lists[c.list].block_of(idx).max_score;
                }
            }
            if block_sum <= theta {
                // Skip: advance every cursor up to the pivot beyond the
                // smallest block boundary. The skip must not pass the next
                // cursor's current doc — documents beyond it can appear in
                // lists outside the pivot set, whose bounds were not
                // included in `block_sum`.
                let mut next_doc = cursors[..=pi]
                    .iter()
                    .map(|c| {
                        let idx = lists[c.list].seek(c.pos, pivot_doc);
                        if idx < lists[c.list].len() {
                            lists[c.list].block_of(idx).last_doc.saturating_add(1)
                        } else {
                            u32::MAX
                        }
                    })
                    .min()
                    .unwrap_or(u32::MAX);
                if let Some(c) = cursors.get(pi + 1) {
                    next_doc = next_doc.min(lists[c.list].postings[c.pos].doc);
                }
                let next_doc = next_doc.max(pivot_doc.saturating_add(1));
                for c in cursors[..=pi].iter_mut() {
                    let target = next_doc;
                    c.pos = lists[c.list].seek(c.pos, target);
                    stats.block_skips += 1;
                }
                continue;
            }
        }
        // If the first cursor is already at the pivot, fully score it.
        if lists[cursors[0].list].postings[cursors[0].pos].doc == pivot_doc {
            let mut score = 0.0;
            for c in cursors.iter_mut() {
                let idx = lists[c.list].seek(c.pos, pivot_doc);
                if idx < lists[c.list].len() && lists[c.list].postings[idx].doc == pivot_doc {
                    score += lists[c.list].postings[idx].score;
                    c.pos = idx + 1;
                } else {
                    c.pos = idx;
                }
            }
            stats.docs_scored += 1;
            push_top(
                &mut top,
                ScoredDoc {
                    doc: pivot_doc,
                    score,
                },
                k,
            );
            if top.len() >= k {
                theta = top.last().unwrap().score;
            }
        } else {
            // Advance all cursors before the pivot to the pivot doc.
            for c in cursors[..pi].iter_mut() {
                c.pos = lists[c.list].seek(c.pos, pivot_doc);
            }
        }
    }
    (top, stats)
}

fn push_top(top: &mut Vec<ScoredDoc>, d: ScoredDoc, k: usize) {
    top.push(d);
    top.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    top.truncate(k);
}

/// WAND with list-level upper bounds.
pub fn wand(lists: &[PostingList], k: usize) -> (Vec<ScoredDoc>, WandStats) {
    wand_driver(lists, k, false)
}

/// Block-Max WAND: WAND plus block-level upper bounds.
pub fn block_max_wand(lists: &[PostingList], k: usize) -> (Vec<ScoredDoc>, WandStats) {
    wand_driver(lists, k, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::Posting;

    fn synth_lists(seed: u64, lists_n: usize, docs: u32) -> Vec<PostingList> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..lists_n)
            .map(|_| {
                let mut postings = Vec::new();
                for d in 0..docs {
                    if next() % 3 != 0 {
                        // Integral scores keep f64 sums exact regardless of
                        // accumulation order.
                        postings.push(Posting {
                            doc: d,
                            score: (next() % 1000) as f64,
                        });
                    }
                }
                PostingList::new(postings, 32)
            })
            .collect()
    }

    #[test]
    fn wand_matches_exhaustive() {
        for seed in [1u64, 7, 42] {
            let lists = synth_lists(seed, 3, 500);
            let exact = exhaustive_topk(&lists, 10);
            let (w, _) = wand(&lists, 10);
            let ws: Vec<f64> = w.iter().map(|d| d.score).collect();
            let es: Vec<f64> = exact.iter().map(|d| d.score).collect();
            assert_eq!(ws, es, "seed {seed}");
        }
    }

    #[test]
    fn bmw_matches_exhaustive_and_skips() {
        for seed in [3u64, 9, 21] {
            let lists = synth_lists(seed, 3, 2000);
            let exact = exhaustive_topk(&lists, 5);
            let (b, stats) = block_max_wand(&lists, 5);
            let bs: Vec<f64> = b.iter().map(|d| d.score).collect();
            let es: Vec<f64> = exact.iter().map(|d| d.score).collect();
            assert_eq!(bs, es, "seed {seed}");
            assert!(stats.docs_scored > 0);
        }
    }

    #[test]
    fn bmw_scores_fewer_docs_on_skewed_data() {
        // One list with a few giant scores clustered in one block: BMW can
        // skip most blocks once θ is high.
        let mut postings: Vec<Posting> = (0..10_000u32)
            .map(|d| Posting {
                doc: d,
                score: 1.0 + (d % 7) as f64 * 0.01,
            })
            .collect();
        for d in 5_000..5_010 {
            postings[d as usize].score = 500.0 + d as f64;
        }
        let lists = vec![PostingList::new(postings, 128)];
        let (_, full) = wand(&lists, 10);
        let (top, bmw) = block_max_wand(&lists, 10);
        assert_eq!(top.len(), 10);
        assert!(top.iter().all(|d| d.score >= 500.0));
        assert!(
            bmw.docs_scored < full.docs_scored,
            "BMW {} vs WAND {}",
            bmw.docs_scored,
            full.docs_scored
        );
        assert!(bmw.block_skips > 0);
    }

    #[test]
    fn single_list_wand_is_correct() {
        let lists = synth_lists(5, 1, 300);
        let exact = exhaustive_topk(&lists, 7);
        let (w, _) = wand(&lists, 7);
        assert_eq!(
            w.iter().map(|d| d.doc).collect::<Vec<_>>(),
            exact.iter().map(|d| d.doc).collect::<Vec<_>>()
        );
    }
}
