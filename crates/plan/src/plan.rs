//! Logical query plans.
//!
//! Plans are intentionally small: they cover exactly the operator shapes
//! the paper's pruning techniques interact with (Figure 7): scans with
//! predicates, filters, projections, hash joins (build = left, probe =
//! right; for outer joins the *build side is the preserved side*, matching
//! §4.3/§5.2), aggregations, sorts, and limits. `Sort` directly above
//! `Limit` is a top-k query.

use std::fmt;

use snowprune_expr::Expr;
use snowprune_storage::Schema;
use snowprune_types::{Error, Result};

/// Join types supported by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner equi-join: only matching pairs are emitted.
    Inner,
    /// Outer join preserving the **build** side: every build row appears in
    /// the output at least once ("we can guarantee that all k rows from the
    /// build side will be forwarded beyond the JOIN", §5.2).
    OuterPreserveBuild,
}

/// One ORDER BY key.
#[derive(Clone, Debug, PartialEq)]
pub struct SortKey {
    /// The ordering expression; top-k pruning applies when this is a bare
    /// column (possibly via projections) produced by a prunable scan.
    pub expr: Expr,
    /// Descending order when true, ascending otherwise.
    pub desc: bool,
}

/// Aggregate functions for GROUP BY plans.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)`: counts every input row.
    CountStar,
    /// `COUNT(col)`: counts non-NULL values of the column.
    Count(String),
    /// `SUM(col)`; NULL over empty or all-NULL input.
    Sum(String),
    /// `MIN(col)`; NULL over empty or all-NULL input.
    Min(String),
    /// `MAX(col)`; NULL over empty or all-NULL input.
    Max(String),
    /// `AVG(col)` as a float; NULL over empty or all-NULL input.
    Avg(String),
}

impl AggFunc {
    /// Name of the output column this aggregate produces (e.g. `sum_b`).
    pub fn output_name(&self) -> String {
        match self {
            AggFunc::CountStar => "count".into(),
            AggFunc::Count(c) => format!("count_{c}"),
            AggFunc::Sum(c) => format!("sum_{c}"),
            AggFunc::Min(c) => format!("min_{c}"),
            AggFunc::Max(c) => format!("max_{c}"),
            AggFunc::Avg(c) => format!("avg_{c}"),
        }
    }

    /// The column the aggregate reads, or `None` for `COUNT(*)`.
    pub fn input_column(&self) -> Option<&str> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(c)
            | AggFunc::Sum(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c)
            | AggFunc::Avg(c) => Some(c),
        }
    }

    /// The aggregate's SQL spelling (`COUNT(*)`, `SUM(b)`, …), as the SQL
    /// front-end parses it.
    pub fn sql(&self) -> String {
        match self {
            AggFunc::CountStar => "COUNT(*)".into(),
            AggFunc::Count(c) => format!("COUNT({c})"),
            AggFunc::Sum(c) => format!("SUM({c})"),
            AggFunc::Min(c) => format!("MIN({c})"),
            AggFunc::Max(c) => format!("MAX({c})"),
            AggFunc::Avg(c) => format!("AVG({c})"),
        }
    }
}

/// A logical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Base table scan. `predicate` holds pushed-down filters (unbound;
    /// bound against the table schema at execution/pruning time).
    Scan {
        /// Table name, resolved against the catalog at execution time.
        table: String,
        /// The table's schema at plan-build time.
        schema: Schema,
        /// Pushed-down filter conjunction, if any.
        predicate: Option<Expr>,
    },
    /// Filter over an arbitrary input (filters directly above a scan are
    /// pushed into the scan by [`PlanBuilder::filter`]).
    Filter {
        /// The node the filter reads from.
        input: Box<Plan>,
        /// The filter predicate (SQL three-valued logic: keep only TRUE).
        predicate: Expr,
    },
    /// Column projection by name.
    Project {
        /// The node the projection reads from.
        input: Box<Plan>,
        /// Output columns, by name, in output order.
        columns: Vec<String>,
    },
    /// Hash join: `build` (left) is materialized into the hash table,
    /// `probe` (right) streams. Keys are single equi-join columns.
    Join {
        /// Build side (left); materialized into the hash table. For outer
        /// joins this is the preserved side.
        build: Box<Plan>,
        /// Probe side (right); streams against the build table.
        probe: Box<Plan>,
        /// Equi-join key column on the build side.
        build_key: String,
        /// Equi-join key column on the probe side.
        probe_key: String,
        /// Inner vs outer-preserve-build semantics.
        join_type: JoinType,
    },
    /// Hash aggregation with optional GROUP BY keys.
    Aggregate {
        /// The node the aggregation reads from.
        input: Box<Plan>,
        /// Grouping key columns; empty for a global aggregate.
        group_by: Vec<String>,
        /// Aggregate functions, in output order after the group keys.
        aggs: Vec<AggFunc>,
    },
    /// Total sort; directly below [`Plan::Limit`] it forms a top-k query.
    Sort {
        /// The node the sort reads from.
        input: Box<Plan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Row-count limit with optional offset.
    Limit {
        /// The node the limit reads from.
        input: Box<Plan>,
        /// Maximum number of rows to emit.
        k: u64,
        /// Rows to skip before emitting.
        offset: u64,
    },
}

impl Plan {
    /// Output schema of the plan node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            Plan::Scan { schema, .. } => Ok(schema.clone()),
            Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                input.schema()
            }
            Plan::Project { input, columns } => {
                let inner = input.schema()?;
                let mut fields = Vec::with_capacity(columns.len());
                for c in columns {
                    let idx = inner.index_of(c)?;
                    fields.push(inner.fields()[idx].clone());
                }
                Ok(Schema::new(fields))
            }
            Plan::Join { build, probe, .. } => Ok(build.schema()?.join(&probe.schema()?, "probe_")),
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let inner = input.schema()?;
                let mut fields = Vec::new();
                for g in group_by {
                    let idx = inner.index_of(g)?;
                    fields.push(inner.fields()[idx].clone());
                }
                for a in aggs {
                    let ty = match a {
                        AggFunc::CountStar | AggFunc::Count(_) => snowprune_types::ScalarType::Int,
                        AggFunc::Avg(_) => snowprune_types::ScalarType::Float,
                        AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => {
                            let idx = inner.index_of(c)?;
                            inner.fields()[idx].ty
                        }
                    };
                    fields.push(snowprune_storage::Field::new(a.output_name(), ty));
                }
                Ok(Schema::new(fields))
            }
        }
    }

    /// All table scans in the plan, in depth-first order.
    pub fn scans(&self) -> Vec<&Plan> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if matches!(p, Plan::Scan { .. }) {
                out.push(p);
            }
        });
        out
    }

    /// Pre-order traversal calling `f` on every node (build before probe).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Plan)) {
        f(self);
        match self {
            Plan::Scan { .. } => {}
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.visit(f),
            Plan::Join { build, probe, .. } => {
                build.visit(f);
                probe.visit(f);
            }
        }
    }

    /// Does this subtree produce a column with the given name?
    pub fn produces_column(&self, name: &str) -> bool {
        self.schema().map(|s| s.contains(name)).unwrap_or(false)
    }

    /// Validate structural consistency (schemas resolve, join keys exist).
    pub fn check(&self) -> Result<()> {
        self.schema()?;
        match self {
            Plan::Join {
                build,
                probe,
                build_key,
                probe_key,
                ..
            } => {
                build.check()?;
                probe.check()?;
                if !build.produces_column(build_key) {
                    return Err(Error::UnknownColumn(format!("build key {build_key}")));
                }
                if !probe.produces_column(probe_key) {
                    return Err(Error::UnknownColumn(format!("probe key {probe_key}")));
                }
                Ok(())
            }
            Plan::Scan { .. } => Ok(()),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.check(),
        }
    }
}

/// Fluent plan construction.
pub struct PlanBuilder {
    plan: Plan,
}

impl PlanBuilder {
    /// Start a plan with a base-table scan.
    pub fn scan(table: impl Into<String>, schema: Schema) -> Self {
        PlanBuilder {
            plan: Plan::Scan {
                table: table.into(),
                schema,
                predicate: None,
            },
        }
    }

    /// Add a filter. Filters directly above a scan are merged into the
    /// scan's predicate (predicate pushdown).
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.plan = match self.plan {
            Plan::Scan {
                table,
                schema,
                predicate: existing,
            } => Plan::Scan {
                table,
                schema,
                predicate: Some(match existing {
                    None => predicate,
                    Some(e) => e.and(predicate),
                }),
            },
            other => Plan::Filter {
                input: Box::new(other),
                predicate,
            },
        };
        self
    }

    /// Project the named columns, in the given order.
    pub fn project(mut self, columns: Vec<&str>) -> Self {
        self.plan = Plan::Project {
            input: Box::new(self.plan),
            columns: columns.into_iter().map(str::to_owned).collect(),
        };
        self
    }

    /// `self` becomes the build (preserved, for outer joins) side.
    pub fn join(
        mut self,
        probe: PlanBuilder,
        build_key: &str,
        probe_key: &str,
        join_type: JoinType,
    ) -> Self {
        self.plan = Plan::Join {
            build: Box::new(self.plan),
            probe: Box::new(probe.plan),
            build_key: build_key.to_owned(),
            probe_key: probe_key.to_owned(),
            join_type,
        };
        self
    }

    /// Group by the named columns and compute `aggs` per group.
    pub fn aggregate(mut self, group_by: Vec<&str>, aggs: Vec<AggFunc>) -> Self {
        self.plan = Plan::Aggregate {
            input: Box::new(self.plan),
            group_by: group_by.into_iter().map(str::to_owned).collect(),
            aggs,
        };
        self
    }

    /// Sort by the given keys, major first.
    pub fn sort(mut self, keys: Vec<SortKey>) -> Self {
        self.plan = Plan::Sort {
            input: Box::new(self.plan),
            keys,
        };
        self
    }

    /// Sort by one bare column (the common top-k spelling).
    pub fn order_by(self, column: &str, desc: bool) -> Self {
        self.sort(vec![SortKey {
            expr: snowprune_expr::dsl::col(column),
            desc,
        }])
    }

    /// Keep at most `k` rows.
    pub fn limit(mut self, k: u64) -> Self {
        self.plan = Plan::Limit {
            input: Box::new(self.plan),
            k,
            offset: 0,
        };
        self
    }

    /// Keep at most `k` rows after skipping `offset`.
    pub fn limit_offset(mut self, k: u64, offset: u64) -> Self {
        self.plan = Plan::Limit {
            input: Box::new(self.plan),
            k,
            offset,
        };
        self
    }

    /// The plan built so far, without consuming the builder (used by the
    /// SQL binder to resolve ORDER BY keys against the current schema).
    pub fn peek(&self) -> &Plan {
        &self.plan
    }

    /// Finish and return the built plan.
    pub fn build(self) -> Plan {
        self.plan
    }
}

impl fmt::Display for Plan {
    /// Indented EXPLAIN-style rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(p: &Plan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match p {
                Plan::Scan {
                    table, predicate, ..
                } => match predicate {
                    Some(e) => writeln!(f, "{pad}Scan {table} [{e}]"),
                    None => writeln!(f, "{pad}Scan {table}"),
                },
                Plan::Filter { input, predicate } => {
                    writeln!(f, "{pad}Filter [{predicate}]")?;
                    go(input, f, depth + 1)
                }
                Plan::Project { input, columns } => {
                    writeln!(f, "{pad}Project [{}]", columns.join(", "))?;
                    go(input, f, depth + 1)
                }
                Plan::Join {
                    build,
                    probe,
                    build_key,
                    probe_key,
                    join_type,
                } => {
                    writeln!(f, "{pad}Join{join_type:?} [{build_key} = {probe_key}]")?;
                    go(build, f, depth + 1)?;
                    go(probe, f, depth + 1)
                }
                Plan::Aggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    let aggs_s: Vec<String> = aggs.iter().map(AggFunc::sql).collect();
                    writeln!(
                        f,
                        "{pad}Aggregate [group by {}; {}]",
                        group_by.join(", "),
                        aggs_s.join(", ")
                    )?;
                    go(input, f, depth + 1)
                }
                Plan::Sort { input, keys } => {
                    let ks: Vec<String> = keys
                        .iter()
                        .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                        .collect();
                    writeln!(f, "{pad}Sort [{}]", ks.join(", "))?;
                    go(input, f, depth + 1)
                }
                Plan::Limit { input, k, offset } => {
                    if *offset > 0 {
                        writeln!(f, "{pad}Limit [{k} OFFSET {offset}]")?;
                    } else {
                        writeln!(f, "{pad}Limit [{k}]")?;
                    }
                    go(input, f, depth + 1)
                }
            }
        }
        go(self, f, 0)
    }
}

/// Render an approximate SQL text for the plan, used for the SQL-pattern
/// classification behind Table 1 of the paper.
pub fn to_sql(plan: &Plan) -> String {
    struct Parts {
        from: String,
        joins: Vec<String>,
        wheres: Vec<String>,
        group_by: Vec<String>,
        aggs: Vec<String>,
        order_by: Vec<String>,
        limit: Option<(u64, u64)>,
        projection: Option<Vec<String>>,
    }
    fn collect(p: &Plan, parts: &mut Parts) {
        match p {
            Plan::Scan {
                table, predicate, ..
            } => {
                parts.from = table.clone();
                if let Some(e) = predicate {
                    parts.wheres.push(e.to_string());
                }
            }
            Plan::Filter { input, predicate } => {
                parts.wheres.push(predicate.to_string());
                collect(input, parts);
            }
            Plan::Project { input, columns } => {
                if parts.projection.is_none() {
                    parts.projection = Some(columns.clone());
                }
                collect(input, parts);
            }
            Plan::Join {
                build,
                probe,
                build_key,
                probe_key,
                ..
            } => {
                collect(build, parts);
                let probe_table = probe
                    .scans()
                    .first()
                    .and_then(|s| match s {
                        Plan::Scan { table, .. } => Some(table.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| "subquery".into());
                parts
                    .joins
                    .push(format!("JOIN {probe_table} ON {build_key} = {probe_key}"));
                if let Some(Plan::Scan {
                    predicate: Some(e), ..
                }) = probe.scans().first()
                {
                    parts.wheres.push(e.to_string());
                }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                parts.group_by = group_by.clone();
                parts.aggs = aggs.iter().map(AggFunc::sql).collect();
                collect(input, parts);
            }
            Plan::Sort { input, keys } => {
                parts.order_by = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                    .collect();
                collect(input, parts);
            }
            Plan::Limit { input, k, offset } => {
                parts.limit = Some((*k, *offset));
                collect(input, parts);
            }
        }
    }
    let mut parts = Parts {
        from: String::new(),
        joins: Vec::new(),
        wheres: Vec::new(),
        group_by: Vec::new(),
        aggs: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        projection: None,
    };
    collect(plan, &mut parts);
    let select_list = if !parts.aggs.is_empty() {
        let mut items = parts.group_by.clone();
        items.extend(parts.aggs.clone());
        items.join(", ")
    } else {
        parts
            .projection
            .map(|c| c.join(", "))
            .unwrap_or_else(|| "*".into())
    };
    let mut sql = format!("SELECT {select_list} FROM {}", parts.from);
    for j in &parts.joins {
        sql.push(' ');
        sql.push_str(j);
    }
    if !parts.wheres.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&parts.wheres.join(" AND "));
    }
    if !parts.group_by.is_empty() {
        sql.push_str(" GROUP BY ");
        sql.push_str(&parts.group_by.join(", "));
    }
    if !parts.order_by.is_empty() {
        sql.push_str(" ORDER BY ");
        sql.push_str(&parts.order_by.join(", "));
    }
    if let Some((k, offset)) = parts.limit {
        sql.push_str(&format!(" LIMIT {k}"));
        if offset > 0 {
            sql.push_str(&format!(" OFFSET {offset}"));
        }
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    fn trails() -> Schema {
        Schema::new(vec![
            Field::new("mountain", ScalarType::Str),
            Field::new("altit", ScalarType::Int),
        ])
    }

    fn tracking() -> Schema {
        Schema::new(vec![
            Field::new("area", ScalarType::Str),
            Field::new("num_sightings", ScalarType::Int),
        ])
    }

    #[test]
    fn filter_merges_into_scan() {
        let p = PlanBuilder::scan("trails", trails())
            .filter(col("altit").gt(lit(1500i64)))
            .filter(col("mountain").like("M%"))
            .build();
        match &p {
            Plan::Scan {
                predicate: Some(e), ..
            } => {
                assert!(e.to_string().contains("AND"));
            }
            other => panic!("expected merged scan, got {other:?}"),
        }
    }

    #[test]
    fn schema_propagation() {
        let p = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .aggregate(vec!["mountain"], vec![AggFunc::Sum("num_sightings".into())])
            .build();
        let s = p.schema().unwrap();
        assert_eq!(s.fields()[0].name, "mountain");
        assert_eq!(s.fields()[1].name, "sum_num_sightings");
        p.check().unwrap();
    }

    #[test]
    fn check_catches_bad_join_key() {
        let p = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "nope",
                "area",
                JoinType::Inner,
            )
            .build();
        assert!(p.check().is_err());
    }

    #[test]
    fn sql_rendering_matches_paper_query() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("num_sightings").ge(lit(50i64)))
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        let sql = to_sql(&p);
        assert_eq!(
            sql,
            "SELECT * FROM tracking_data WHERE (num_sightings >= 50) \
             ORDER BY num_sightings DESC LIMIT 3"
        );
    }

    #[test]
    fn explain_rendering() {
        let p = PlanBuilder::scan("trails", trails())
            .filter(col("altit").gt(lit(1i64)))
            .limit(5)
            .build();
        let s = p.to_string();
        assert!(s.starts_with("Limit [5]"));
        assert!(s.contains("Scan trails"));
    }
}
