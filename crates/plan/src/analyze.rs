//! Plan analyses feeding the pruning techniques:
//!
//! * [`limit_pushdown`] — can the `LIMIT k` reach a table scan (§4.3)?
//! * [`detect_topk`] — is this a top-k plan, and which of the Figure 7
//!   shapes does it take?
//! * [`fingerprint`] — plan hashing for repetitiveness analysis (Figure 12)
//!   and the predicate cache (§8.2).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use snowprune_expr::Expr;

use crate::plan::{JoinType, Plan, SortKey};

/// Outcome of LIMIT pushdown analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum LimitPushdown {
    /// The plan has no LIMIT (or `Sort` sits between LIMIT and the rest,
    /// making it a top-k query instead).
    NotALimitQuery,
    /// The LIMIT reaches this table with the given effective predicates.
    Supported {
        table: String,
        k: u64,
        offset: u64,
        /// Conjunction of all predicates between the LIMIT and the scan
        /// (including the scan's own pushed-down predicate).
        predicates: Vec<Expr>,
    },
    /// An operator between LIMIT and scan blocks the pushdown
    /// (aggregation, inner join probe-only path, ...). Feeds Table 2's
    /// "unsupported shapes".
    Unsupported { blocker: &'static str },
}

/// Walk from the top of the plan and decide where the LIMIT lands.
pub fn limit_pushdown(plan: &Plan) -> LimitPushdown {
    let Plan::Limit { input, k, offset } = plan else {
        return LimitPushdown::NotALimitQuery;
    };
    // Sort directly below the limit means top-k, not LIMIT pruning.
    if matches!(input.as_ref(), Plan::Sort { .. }) {
        return LimitPushdown::NotALimitQuery;
    }
    push_through(input, *k, *offset, Vec::new())
}

fn push_through(plan: &Plan, k: u64, offset: u64, mut preds: Vec<Expr>) -> LimitPushdown {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => {
            if let Some(p) = predicate {
                preds.push(p.clone());
            }
            LimitPushdown::Supported {
                table: table.clone(),
                k,
                offset,
                predicates: preds,
            }
        }
        // Filters do not block: LIMIT pruning handles predicates via
        // fully-matching partitions (§4.1).
        Plan::Filter { input, predicate } => {
            preds.push(predicate.clone());
            push_through(input, k, offset, preds)
        }
        Plan::Project { input, .. } => push_through(input, k, offset, preds),
        // §4.3: the one join exception — the preserved (build) side of an
        // outer join forwards every row at least once, so `k` build rows
        // guarantee `k` output rows.
        Plan::Join {
            build, join_type, ..
        } if *join_type == JoinType::OuterPreserveBuild => push_through(build, k, offset, preds),
        Plan::Join { .. } => LimitPushdown::Unsupported { blocker: "join" },
        Plan::Aggregate { .. } => LimitPushdown::Unsupported {
            blocker: "aggregation",
        },
        Plan::Sort { .. } => LimitPushdown::Unsupported { blocker: "sort" },
        Plan::Limit { input, .. } => push_through(input, k, offset, preds),
    }
}

/// Which Figure 7 shape a detected top-k query takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopKShape {
    /// (a) TopK above a table scan (possibly through filters/projections).
    AboveScan,
    /// (b) TopK above a join, ORDER BY column from the probe side.
    JoinProbeSide,
    /// (c) TopK replicated to the build side of an outer join.
    OuterJoinBuildSide,
    /// (d) TopK above an aggregation with ORDER BY ⊆ GROUP BY keys.
    AboveAggregation,
}

/// A detected top-k query.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKSpec {
    pub k: u64,
    pub offset: u64,
    /// The ORDER BY column driving the pruning boundary.
    pub order_column: String,
    pub desc: bool,
    pub shape: TopKShape,
    /// Table whose scan can consume the boundary.
    pub target_table: String,
    /// Effective predicates between the TopK operator and the target scan.
    pub predicates: Vec<Expr>,
}

/// Detect `Sort + Limit` (top-k) and classify it per Figure 7. Returns
/// `None` for non-top-k plans and for top-k plans whose shape does not
/// support boundary pruning (e.g. ORDER BY an aggregate output).
pub fn detect_topk(plan: &Plan) -> Option<TopKSpec> {
    let Plan::Limit { input, k, offset } = plan else {
        return None;
    };
    let Plan::Sort { input: below, keys } = input.as_ref() else {
        return None;
    };
    let [SortKey { expr, desc }] = keys.as_slice() else {
        return None; // multi-key top-k: boundary pruning needs the primary key only;
                     // conservatively unsupported here.
    };
    let Expr::Column(c) = expr else {
        return None; // ORDER BY over an expression: unsupported for pruning.
    };
    let order_column = c.name.clone();
    classify(below, &order_column, *k, *offset, *desc, Vec::new(), true)
}

fn classify(
    plan: &Plan,
    order_column: &str,
    k: u64,
    offset: u64,
    desc: bool,
    mut preds: Vec<Expr>,
    directly_above: bool,
) -> Option<TopKSpec> {
    match plan {
        Plan::Scan {
            table,
            schema,
            predicate,
        } => {
            if !schema.contains(order_column) {
                return None;
            }
            if let Some(p) = predicate {
                preds.push(p.clone());
            }
            Some(TopKSpec {
                k,
                offset,
                order_column: order_column.to_owned(),
                desc,
                shape: TopKShape::AboveScan,
                target_table: table.clone(),
                predicates: preds,
            })
        }
        // Figure 7a: filters between scan and TopK are fine — the boundary
        // is built from rows that survive the filter.
        Plan::Filter { input, predicate } => {
            preds.push(predicate.clone());
            classify(input, order_column, k, offset, desc, preds, directly_above)
        }
        Plan::Project { input, columns } => {
            if !columns.iter().any(|c| c == order_column) {
                return None;
            }
            classify(input, order_column, k, offset, desc, preds, directly_above)
        }
        Plan::Join {
            build,
            probe,
            join_type,
            ..
        } => {
            let from_probe = probe.produces_column(order_column);
            let from_build = build.produces_column(order_column);
            if from_probe && !from_build {
                // Figure 7b: prune the probe side.
                let inner = classify(probe, order_column, k, offset, desc, preds, false)?;
                Some(TopKSpec {
                    shape: TopKShape::JoinProbeSide,
                    ..inner
                })
            } else if from_build && *join_type == JoinType::OuterPreserveBuild {
                // Figure 7c: replicate TopK to the preserved build side.
                let inner = classify(build, order_column, k, offset, desc, preds, false)?;
                Some(TopKSpec {
                    shape: TopKShape::OuterJoinBuildSide,
                    ..inner
                })
            } else {
                None
            }
        }
        Plan::Aggregate {
            input, group_by, ..
        } => {
            // Figure 7d: pruning through GROUP BY requires the ORDER BY
            // column to be one of the grouping keys (not an aggregate).
            if !group_by.iter().any(|g| g == order_column) {
                return None;
            }
            let inner = classify(input, order_column, k, offset, desc, preds, false)?;
            // Only classify as AboveAggregation when the aggregate is the
            // node directly below the TopK (otherwise keep the inner shape).
            Some(TopKSpec {
                shape: if directly_above {
                    TopKShape::AboveAggregation
                } else {
                    inner.shape
                },
                ..inner
            })
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            classify(input, order_column, k, offset, desc, preds, false)
        }
    }
}

/// All distinct column names referenced by any predicate in the plan (scan
/// predicates and `Filter` nodes), sorted. The predicate cache (§8.2)
/// records these on each entry so that an UPDATE touching one of them can
/// be recognized as potentially moving rows into or out of the cached
/// result — the safe partition-rewrite fast path is unsound for such
/// updates.
pub fn predicate_column_names(plan: &Plan) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    plan.visit(&mut |p| {
        let pred = match p {
            Plan::Scan { predicate, .. } => predicate.as_ref(),
            Plan::Filter { predicate, .. } => Some(predicate),
            _ => None,
        };
        if let Some(expr) = pred {
            expr.visit(&mut |e| {
                if let Expr::Column(c) = e {
                    if !names.contains(&c.name) {
                        names.push(c.name.clone());
                    }
                }
            });
        }
    });
    names.sort();
    names
}

/// Fingerprint mode: `Shape` strips literals (Figure 12's "plan shapes");
/// `Exact` keeps them (predicate-cache keys, §8.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FingerprintMode {
    Shape,
    Exact,
}

/// Stable hash of a plan.
pub fn fingerprint(plan: &Plan, mode: FingerprintMode) -> u64 {
    let mut h = DefaultHasher::new();
    hash_plan(plan, mode, &mut h);
    h.finish()
}

fn hash_plan(plan: &Plan, mode: FingerprintMode, h: &mut DefaultHasher) {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => {
            0u8.hash(h);
            table.hash(h);
            if let Some(p) = predicate {
                hash_expr(p, mode, h);
            }
        }
        Plan::Filter { input, predicate } => {
            1u8.hash(h);
            hash_expr(predicate, mode, h);
            hash_plan(input, mode, h);
        }
        Plan::Project { input, columns } => {
            2u8.hash(h);
            columns.hash(h);
            hash_plan(input, mode, h);
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => {
            3u8.hash(h);
            build_key.hash(h);
            probe_key.hash(h);
            join_type.hash(h);
            hash_plan(build, mode, h);
            hash_plan(probe, mode, h);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            4u8.hash(h);
            group_by.hash(h);
            for a in aggs {
                a.output_name().hash(h);
            }
            hash_plan(input, mode, h);
        }
        Plan::Sort { input, keys } => {
            5u8.hash(h);
            for k in keys {
                hash_expr(&k.expr, mode, h);
                k.desc.hash(h);
            }
            hash_plan(input, mode, h);
        }
        Plan::Limit { input, k, offset } => {
            6u8.hash(h);
            if mode == FingerprintMode::Exact {
                k.hash(h);
                offset.hash(h);
            }
            hash_plan(input, mode, h);
        }
    }
}

fn hash_expr(e: &Expr, mode: FingerprintMode, h: &mut DefaultHasher) {
    // Render to text; in Shape mode, literals become placeholders.
    let s = e.to_string();
    if mode == FingerprintMode::Exact {
        s.hash(h);
    } else {
        shape_of(e).hash(h);
    }
}

fn shape_of(e: &Expr) -> String {
    match e {
        Expr::Literal(_) => "?".into(),
        Expr::Column(c) => c.name.clone(),
        Expr::Cmp(op, a, b) => format!("({} {} {})", shape_of(a), op.sql(), shape_of(b)),
        Expr::And(xs) => format!(
            "AND({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Or(xs) => format!(
            "OR({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Not(x) => format!("NOT({})", shape_of(x)),
        Expr::IsNull(x) => format!("ISNULL({})", shape_of(x)),
        Expr::Arith(op, a, b) => format!("({} {} {})", shape_of(a), op.sql(), shape_of(b)),
        Expr::Neg(x) => format!("NEG({})", shape_of(x)),
        Expr::If(c, t, e2) => format!("IF({},{},{})", shape_of(c), shape_of(t), shape_of(e2)),
        Expr::Like(x, _) => format!("LIKE({},?)", shape_of(x)),
        Expr::StartsWith(x, _) => format!("SW({},?)", shape_of(x)),
        Expr::InList(x, _) => format!("IN({},?)", shape_of(x)),
        Expr::Coalesce(xs) => format!(
            "COALESCE({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Abs(x) => format!("ABS({})", shape_of(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggFunc, PlanBuilder};
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Schema};
    use snowprune_types::ScalarType;

    fn tracking() -> Schema {
        Schema::new(vec![
            Field::new("area", ScalarType::Str),
            Field::new("species", ScalarType::Str),
            Field::new("s", ScalarType::Int),
            Field::new("num_sightings", ScalarType::Int),
        ])
    }

    fn trails() -> Schema {
        Schema::new(vec![
            Field::new("mountain", ScalarType::Str),
            Field::new("altit", ScalarType::Int),
        ])
    }

    #[test]
    fn limit_pushdown_through_filter() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("species").like("Alpine%"))
            .limit(3)
            .build();
        match limit_pushdown(&p) {
            LimitPushdown::Supported {
                table,
                k,
                predicates,
                ..
            } => {
                assert_eq!(table, "tracking_data");
                assert_eq!(k, 3);
                assert_eq!(predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_blocked_by_aggregate_and_inner_join() {
        let agg = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .limit(10)
            .build();
        assert_eq!(
            limit_pushdown(&agg),
            LimitPushdown::Unsupported {
                blocker: "aggregation"
            }
        );
        let join = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .limit(10)
            .build();
        assert_eq!(
            limit_pushdown(&join),
            LimitPushdown::Unsupported { blocker: "join" }
        );
    }

    #[test]
    fn limit_passes_outer_join_build_side() {
        let p = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::OuterPreserveBuild,
            )
            .limit(5)
            .build();
        match limit_pushdown(&p) {
            LimitPushdown::Supported { table, .. } => assert_eq!(table, "trails"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn topk_not_a_limit_query() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        assert_eq!(limit_pushdown(&p), LimitPushdown::NotALimitQuery);
        let spec = detect_topk(&p).unwrap();
        assert_eq!(spec.shape, TopKShape::AboveScan);
        assert_eq!(spec.order_column, "num_sightings");
        assert!(spec.desc);
    }

    #[test]
    fn topk_shapes_of_figure7() {
        // (a) with filter in between.
        let a = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)))
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        assert_eq!(detect_topk(&a).unwrap().shape, TopKShape::AboveScan);
        assert_eq!(detect_topk(&a).unwrap().predicates.len(), 1);

        // (b) order column from probe side.
        let b = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        let sb = detect_topk(&b).unwrap();
        assert_eq!(sb.shape, TopKShape::JoinProbeSide);
        assert_eq!(sb.target_table, "tracking_data");

        // (c) order column from the preserved build side of an outer join.
        let c = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::OuterPreserveBuild,
            )
            .order_by("altit", false)
            .limit(3)
            .build();
        let sc = detect_topk(&c).unwrap();
        assert_eq!(sc.shape, TopKShape::OuterJoinBuildSide);
        assert_eq!(sc.target_table, "trails");
        // Same plan as inner join: build-side pruning unsupported.
        let c_inner = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .order_by("altit", false)
            .limit(3)
            .build();
        assert!(detect_topk(&c_inner).is_none());

        // (d) ORDER BY a grouping key.
        let d = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .order_by("species", true)
            .limit(3)
            .build();
        assert_eq!(detect_topk(&d).unwrap().shape, TopKShape::AboveAggregation);

        // ORDER BY an aggregate output: unsupported.
        let e = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .order_by("count", true)
            .limit(3)
            .build();
        assert!(detect_topk(&e).is_none());
    }

    #[test]
    fn predicate_columns_collected_from_scans_and_filters() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)).and(col("area").eq(lit("x"))))
            .build();
        let post = Plan::Filter {
            input: Box::new(p),
            predicate: col("num_sightings").lt(lit(10i64)),
        };
        assert_eq!(
            predicate_column_names(&post),
            vec!["area".to_owned(), "num_sightings".into(), "s".into()]
        );
        let bare = PlanBuilder::scan("tracking_data", tracking()).build();
        assert!(predicate_column_names(&bare).is_empty());
    }

    #[test]
    fn fingerprints_distinguish_literals_only_in_exact_mode() {
        let q = |k: i64| {
            PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").ge(lit(k)))
                .order_by("num_sightings", true)
                .limit(3)
                .build()
        };
        let (p1, p2) = (q(50), (q(99)));
        assert_eq!(
            fingerprint(&p1, FingerprintMode::Shape),
            fingerprint(&p2, FingerprintMode::Shape)
        );
        assert_ne!(
            fingerprint(&p1, FingerprintMode::Exact),
            fingerprint(&p2, FingerprintMode::Exact)
        );
        // Different order column changes the shape too.
        let p3 = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)))
            .order_by("s", true)
            .limit(3)
            .build();
        assert_ne!(
            fingerprint(&p1, FingerprintMode::Shape),
            fingerprint(&p3, FingerprintMode::Shape)
        );
    }
}
