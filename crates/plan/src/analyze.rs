//! Plan analyses feeding the pruning techniques:
//!
//! * [`limit_pushdown`] — can the `LIMIT k` reach a table scan (§4.3)?
//! * [`detect_topk`] — is this a top-k plan, and which of the Figure 7
//!   shapes does it take?
//! * [`fingerprint`] — plan hashing for repetitiveness analysis (Figure 12)
//!   and the predicate cache (§8.2).

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use snowprune_expr::{CmpOp, Expr};
use snowprune_types::{LiteralRange, ShapeKey, Value};

use crate::plan::{JoinType, Plan, SortKey};

/// Outcome of LIMIT pushdown analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum LimitPushdown {
    /// The plan has no LIMIT (or `Sort` sits between LIMIT and the rest,
    /// making it a top-k query instead).
    NotALimitQuery,
    /// The LIMIT reaches this table with the given effective predicates.
    Supported {
        /// The scanned table the LIMIT applies to.
        table: String,
        /// Row budget of the LIMIT.
        k: u64,
        /// Rows skipped before counting toward `k`.
        offset: u64,
        /// Conjunction of all predicates between the LIMIT and the scan
        /// (including the scan's own pushed-down predicate).
        predicates: Vec<Expr>,
    },
    /// An operator between LIMIT and scan blocks the pushdown
    /// (aggregation, inner join probe-only path, ...). Feeds Table 2's
    /// "unsupported shapes".
    Unsupported {
        /// Name of the blocking operator, for the Table 2 breakdown.
        blocker: &'static str,
    },
}

/// Walk from the top of the plan and decide where the LIMIT lands.
pub fn limit_pushdown(plan: &Plan) -> LimitPushdown {
    let Plan::Limit { input, k, offset } = plan else {
        return LimitPushdown::NotALimitQuery;
    };
    // Sort directly below the limit means top-k, not LIMIT pruning.
    if matches!(input.as_ref(), Plan::Sort { .. }) {
        return LimitPushdown::NotALimitQuery;
    }
    push_through(input, *k, *offset, Vec::new())
}

fn push_through(plan: &Plan, k: u64, offset: u64, mut preds: Vec<Expr>) -> LimitPushdown {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => {
            if let Some(p) = predicate {
                preds.push(p.clone());
            }
            LimitPushdown::Supported {
                table: table.clone(),
                k,
                offset,
                predicates: preds,
            }
        }
        // Filters do not block: LIMIT pruning handles predicates via
        // fully-matching partitions (§4.1).
        Plan::Filter { input, predicate } => {
            preds.push(predicate.clone());
            push_through(input, k, offset, preds)
        }
        Plan::Project { input, .. } => push_through(input, k, offset, preds),
        // §4.3: the one join exception — the preserved (build) side of an
        // outer join forwards every row at least once, so `k` build rows
        // guarantee `k` output rows.
        Plan::Join {
            build, join_type, ..
        } if *join_type == JoinType::OuterPreserveBuild => push_through(build, k, offset, preds),
        Plan::Join { .. } => LimitPushdown::Unsupported { blocker: "join" },
        Plan::Aggregate { .. } => LimitPushdown::Unsupported {
            blocker: "aggregation",
        },
        Plan::Sort { .. } => LimitPushdown::Unsupported { blocker: "sort" },
        Plan::Limit { input, .. } => push_through(input, k, offset, preds),
    }
}

/// Which Figure 7 shape a detected top-k query takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopKShape {
    /// (a) TopK above a table scan (possibly through filters/projections).
    AboveScan,
    /// (b) TopK above a join, ORDER BY column from the probe side.
    JoinProbeSide,
    /// (c) TopK replicated to the build side of an outer join.
    OuterJoinBuildSide,
    /// (d) TopK above an aggregation with ORDER BY ⊆ GROUP BY keys.
    AboveAggregation,
}

/// A detected top-k query.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKSpec {
    /// Row budget of the top-k (heap size).
    pub k: u64,
    /// Rows skipped before emitting (heap holds `k + offset`).
    pub offset: u64,
    /// The ORDER BY column driving the pruning boundary.
    pub order_column: String,
    /// Descending order when true.
    pub desc: bool,
    /// Which Figure 7 shape the query matched.
    pub shape: TopKShape,
    /// Table whose scan can consume the boundary.
    pub target_table: String,
    /// Effective predicates between the TopK operator and the target scan.
    pub predicates: Vec<Expr>,
}

/// Detect `Sort + Limit` (top-k) and classify it per Figure 7. Returns
/// `None` for non-top-k plans and for top-k plans whose shape does not
/// support boundary pruning (e.g. ORDER BY an aggregate output).
pub fn detect_topk(plan: &Plan) -> Option<TopKSpec> {
    let Plan::Limit { input, k, offset } = plan else {
        return None;
    };
    let Plan::Sort { input: below, keys } = input.as_ref() else {
        return None;
    };
    let [SortKey { expr, desc }] = keys.as_slice() else {
        return None; // multi-key top-k: boundary pruning needs the primary key only;
                     // conservatively unsupported here.
    };
    let Expr::Column(c) = expr else {
        return None; // ORDER BY over an expression: unsupported for pruning.
    };
    let order_column = c.name.clone();
    classify(below, &order_column, *k, *offset, *desc, Vec::new(), true)
}

fn classify(
    plan: &Plan,
    order_column: &str,
    k: u64,
    offset: u64,
    desc: bool,
    mut preds: Vec<Expr>,
    directly_above: bool,
) -> Option<TopKSpec> {
    match plan {
        Plan::Scan {
            table,
            schema,
            predicate,
        } => {
            if !schema.contains(order_column) {
                return None;
            }
            if let Some(p) = predicate {
                preds.push(p.clone());
            }
            Some(TopKSpec {
                k,
                offset,
                order_column: order_column.to_owned(),
                desc,
                shape: TopKShape::AboveScan,
                target_table: table.clone(),
                predicates: preds,
            })
        }
        // Figure 7a: filters between scan and TopK are fine — the boundary
        // is built from rows that survive the filter.
        Plan::Filter { input, predicate } => {
            preds.push(predicate.clone());
            classify(input, order_column, k, offset, desc, preds, directly_above)
        }
        Plan::Project { input, columns } => {
            if !columns.iter().any(|c| c == order_column) {
                return None;
            }
            classify(input, order_column, k, offset, desc, preds, directly_above)
        }
        Plan::Join {
            build,
            probe,
            join_type,
            ..
        } => {
            let from_probe = probe.produces_column(order_column);
            let from_build = build.produces_column(order_column);
            if from_probe && !from_build {
                // Figure 7b: prune the probe side.
                let inner = classify(probe, order_column, k, offset, desc, preds, false)?;
                Some(TopKSpec {
                    shape: TopKShape::JoinProbeSide,
                    ..inner
                })
            } else if from_build && *join_type == JoinType::OuterPreserveBuild {
                // Figure 7c: replicate TopK to the preserved build side.
                let inner = classify(build, order_column, k, offset, desc, preds, false)?;
                Some(TopKSpec {
                    shape: TopKShape::OuterJoinBuildSide,
                    ..inner
                })
            } else {
                None
            }
        }
        Plan::Aggregate {
            input, group_by, ..
        } => {
            // Figure 7d: pruning through GROUP BY requires the ORDER BY
            // column to be one of the grouping keys (not an aggregate).
            if !group_by.iter().any(|g| g == order_column) {
                return None;
            }
            let inner = classify(input, order_column, k, offset, desc, preds, false)?;
            // Only classify as AboveAggregation when the aggregate is the
            // node directly below the TopK (otherwise keep the inner shape).
            Some(TopKSpec {
                shape: if directly_above {
                    TopKShape::AboveAggregation
                } else {
                    inner.shape
                },
                ..inner
            })
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
            classify(input, order_column, k, offset, desc, preds, false)
        }
    }
}

/// All distinct column names referenced by any predicate in the plan (scan
/// predicates and `Filter` nodes), sorted. The predicate cache (§8.2)
/// records these on each entry so that an UPDATE touching one of them can
/// be recognized as potentially moving rows into or out of the cached
/// result — the safe partition-rewrite fast path is unsound for such
/// updates.
pub fn predicate_column_names(plan: &Plan) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    plan.visit(&mut |p| {
        let pred = match p {
            Plan::Scan { predicate, .. } => predicate.as_ref(),
            Plan::Filter { predicate, .. } => Some(predicate),
            _ => None,
        };
        if let Some(expr) = pred {
            expr.visit(&mut |e| {
                if let Expr::Column(c) = e {
                    if !names.contains(&c.name) {
                        names.push(c.name.clone());
                    }
                }
            });
        }
    });
    names.sort();
    names
}

/// Extract the shape-mode cache signature of a cacheable plan (§8.2
/// extension): the plan hashed with comparison literals abstracted out,
/// plus the concrete literal range each predicate column is pinned to and
/// — for top-k plans — how many rows the plan needs (`k + offset`,
/// excluded from the hash).
///
/// Two plans with the same [`ShapeKey::fingerprint`] differ at most in
/// their comparison literals and top-k row count, so a cached entry can be
/// checked for *subsumption* against a query by comparing the key's ranges
/// (and `need`) alone:
///
/// * a **filter** entry subsumes the query when every cached interval
///   contains the query's interval for that column — the query predicate
///   then implies the entry predicate, so partitions holding entry-matching
///   rows are a superset of those holding query-matching rows;
/// * a **top-k** entry requires *equal* intervals (a wider entry predicate
///   would rank its top-k over a larger row set, and the query's best rows
///   may not be among the entry's k survivors) and `entry.need >=
///   query.need` — the entry's survivors plus its boundary-tie log then
///   cover every row of the smaller top-k, ties included.
///
/// Returns `None` when the plan is not *shape-eligible*: only
/// `Filter`/`Project` chains over a single scan — optionally under a
/// `Limit(Sort(bare columns))` top-k spine — qualify, and every predicate
/// must be a conjunction of single-column range comparisons against
/// non-null literals (`col {<,<=,>,>=,=} literal`, either operand order).
/// `OR`, `NOT`, `LIKE`, `IN`, arithmetic, and NULL literals make the plan
/// exact-mode-only: their literals cannot be compared as intervals, so the
/// subsumption direction cannot be proven sound.
pub fn shape_signature(plan: &Plan) -> Option<ShapeKey> {
    // Peel an optional top-k spine: Limit over Sort with bare-column keys.
    let (chain_root, need, sort_keys) = match plan {
        Plan::Limit { input, k, offset } => match input.as_ref() {
            Plan::Sort { input: below, keys } => {
                let mut cols: Vec<(String, bool)> = Vec::with_capacity(keys.len());
                for key in keys {
                    let Expr::Column(c) = &key.expr else {
                        return None;
                    };
                    cols.push((c.name.clone(), key.desc));
                }
                (below.as_ref(), Some(k + offset), cols)
            }
            // Bare LIMIT results are legally nondeterministic; not cached.
            _ => return None,
        },
        Plan::Sort { .. } => return None,
        other => (other, None, Vec::new()),
    };
    // Walk the Filter*/Project* chain, collecting predicates and the
    // projection structure.
    let mut ranges: BTreeMap<String, LiteralRange> = BTreeMap::new();
    let mut projections: Vec<Vec<String>> = Vec::new();
    let mut node = chain_root;
    let table = loop {
        match node {
            Plan::Scan {
                table, predicate, ..
            } => {
                if let Some(p) = predicate {
                    intersect_predicate(p, &mut ranges)?;
                }
                break table.clone();
            }
            Plan::Filter { input, predicate } => {
                intersect_predicate(predicate, &mut ranges)?;
                node = input;
            }
            Plan::Project { input, columns } => {
                projections.push(columns.clone());
                node = input;
            }
            _ => return None,
        }
    };
    let mut h = DefaultHasher::new();
    "snowprune-cache-shape-v1".hash(&mut h);
    table.hash(&mut h);
    // The constrained column *set* is the shape; the intervals themselves
    // are carried alongside for the subsumption check. Conjunct order and
    // atom count per column deliberately do not matter: `a >= 10 AND
    // a <= 90` and `a BETWEEN 20 AND 80` share a shape.
    for column in ranges.keys() {
        column.hash(&mut h);
    }
    projections.hash(&mut h);
    need.is_some().hash(&mut h);
    for (column, desc) in &sort_keys {
        column.hash(&mut h);
        desc.hash(&mut h);
    }
    Some(ShapeKey {
        fingerprint: h.finish(),
        ranges: ranges.into_values().collect(),
        need,
    })
}

/// Fold every conjunct of `pred` into the per-column interval map. `None`
/// when any conjunct is not a plain range comparison between one column
/// and one non-null literal (or when bounds are incomparable).
fn intersect_predicate(pred: &Expr, ranges: &mut BTreeMap<String, LiteralRange>) -> Option<()> {
    for conjunct in pred.split_conjunction() {
        let (column, op, value) = match conjunct {
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => (c.name.clone(), *op, v.clone()),
                (Expr::Literal(v), Expr::Column(c)) => (c.name.clone(), op.flip(), v.clone()),
                _ => return None,
            },
            _ => return None,
        };
        if matches!(value, Value::Null) {
            return None;
        }
        let range = ranges
            .entry(column.clone())
            .or_insert_with(|| LiteralRange::unbounded(column));
        let ok = match op {
            CmpOp::Gt => range.tighten_lo(value, false),
            CmpOp::Ge => range.tighten_lo(value, true),
            CmpOp::Lt => range.tighten_hi(value, false),
            CmpOp::Le => range.tighten_hi(value, true),
            CmpOp::Eq => range.tighten_lo(value.clone(), true) && range.tighten_hi(value, true),
            CmpOp::Ne => return None,
        };
        if !ok {
            return None;
        }
    }
    Some(())
}

/// Fingerprint mode: `Shape` strips literals (Figure 12's "plan shapes");
/// `Exact` keeps them (predicate-cache keys, §8.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FingerprintMode {
    /// Literal-abstracted: two plans differing only in literals collide.
    Shape,
    /// Literal-sensitive: the full plan, literals included.
    Exact,
}

/// Stable hash of a plan.
pub fn fingerprint(plan: &Plan, mode: FingerprintMode) -> u64 {
    let mut h = DefaultHasher::new();
    hash_plan(plan, mode, &mut h);
    h.finish()
}

fn hash_plan(plan: &Plan, mode: FingerprintMode, h: &mut DefaultHasher) {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => {
            0u8.hash(h);
            table.hash(h);
            if let Some(p) = predicate {
                hash_expr(p, mode, h);
            }
        }
        Plan::Filter { input, predicate } => {
            1u8.hash(h);
            hash_expr(predicate, mode, h);
            hash_plan(input, mode, h);
        }
        Plan::Project { input, columns } => {
            2u8.hash(h);
            columns.hash(h);
            hash_plan(input, mode, h);
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => {
            3u8.hash(h);
            build_key.hash(h);
            probe_key.hash(h);
            join_type.hash(h);
            hash_plan(build, mode, h);
            hash_plan(probe, mode, h);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            4u8.hash(h);
            group_by.hash(h);
            for a in aggs {
                a.output_name().hash(h);
            }
            hash_plan(input, mode, h);
        }
        Plan::Sort { input, keys } => {
            5u8.hash(h);
            for k in keys {
                hash_expr(&k.expr, mode, h);
                k.desc.hash(h);
            }
            hash_plan(input, mode, h);
        }
        Plan::Limit { input, k, offset } => {
            6u8.hash(h);
            if mode == FingerprintMode::Exact {
                k.hash(h);
                offset.hash(h);
            }
            hash_plan(input, mode, h);
        }
    }
}

fn hash_expr(e: &Expr, mode: FingerprintMode, h: &mut DefaultHasher) {
    // Render to text; in Shape mode, literals become placeholders.
    let s = e.to_string();
    if mode == FingerprintMode::Exact {
        s.hash(h);
    } else {
        shape_of(e).hash(h);
    }
}

fn shape_of(e: &Expr) -> String {
    match e {
        Expr::Literal(_) => "?".into(),
        Expr::Column(c) => c.name.clone(),
        Expr::Cmp(op, a, b) => format!("({} {} {})", shape_of(a), op.sql(), shape_of(b)),
        Expr::And(xs) => format!(
            "AND({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Or(xs) => format!(
            "OR({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Not(x) => format!("NOT({})", shape_of(x)),
        Expr::IsNull(x) => format!("ISNULL({})", shape_of(x)),
        Expr::Arith(op, a, b) => format!("({} {} {})", shape_of(a), op.sql(), shape_of(b)),
        Expr::Neg(x) => format!("NEG({})", shape_of(x)),
        Expr::If(c, t, e2) => format!("IF({},{},{})", shape_of(c), shape_of(t), shape_of(e2)),
        Expr::Like(x, _) => format!("LIKE({},?)", shape_of(x)),
        Expr::StartsWith(x, _) => format!("SW({},?)", shape_of(x)),
        Expr::InList(x, _) => format!("IN({},?)", shape_of(x)),
        Expr::Coalesce(xs) => format!(
            "COALESCE({})",
            xs.iter().map(shape_of).collect::<Vec<_>>().join(",")
        ),
        Expr::Abs(x) => format!("ABS({})", shape_of(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggFunc, PlanBuilder};
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Schema};
    use snowprune_types::ScalarType;

    fn tracking() -> Schema {
        Schema::new(vec![
            Field::new("area", ScalarType::Str),
            Field::new("species", ScalarType::Str),
            Field::new("s", ScalarType::Int),
            Field::new("num_sightings", ScalarType::Int),
        ])
    }

    fn trails() -> Schema {
        Schema::new(vec![
            Field::new("mountain", ScalarType::Str),
            Field::new("altit", ScalarType::Int),
        ])
    }

    #[test]
    fn limit_pushdown_through_filter() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("species").like("Alpine%"))
            .limit(3)
            .build();
        match limit_pushdown(&p) {
            LimitPushdown::Supported {
                table,
                k,
                predicates,
                ..
            } => {
                assert_eq!(table, "tracking_data");
                assert_eq!(k, 3);
                assert_eq!(predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn limit_blocked_by_aggregate_and_inner_join() {
        let agg = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .limit(10)
            .build();
        assert_eq!(
            limit_pushdown(&agg),
            LimitPushdown::Unsupported {
                blocker: "aggregation"
            }
        );
        let join = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .limit(10)
            .build();
        assert_eq!(
            limit_pushdown(&join),
            LimitPushdown::Unsupported { blocker: "join" }
        );
    }

    #[test]
    fn limit_passes_outer_join_build_side() {
        let p = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::OuterPreserveBuild,
            )
            .limit(5)
            .build();
        match limit_pushdown(&p) {
            LimitPushdown::Supported { table, .. } => assert_eq!(table, "trails"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn topk_not_a_limit_query() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        assert_eq!(limit_pushdown(&p), LimitPushdown::NotALimitQuery);
        let spec = detect_topk(&p).unwrap();
        assert_eq!(spec.shape, TopKShape::AboveScan);
        assert_eq!(spec.order_column, "num_sightings");
        assert!(spec.desc);
    }

    #[test]
    fn topk_shapes_of_figure7() {
        // (a) with filter in between.
        let a = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)))
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        assert_eq!(detect_topk(&a).unwrap().shape, TopKShape::AboveScan);
        assert_eq!(detect_topk(&a).unwrap().predicates.len(), 1);

        // (b) order column from probe side.
        let b = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .order_by("num_sightings", true)
            .limit(3)
            .build();
        let sb = detect_topk(&b).unwrap();
        assert_eq!(sb.shape, TopKShape::JoinProbeSide);
        assert_eq!(sb.target_table, "tracking_data");

        // (c) order column from the preserved build side of an outer join.
        let c = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::OuterPreserveBuild,
            )
            .order_by("altit", false)
            .limit(3)
            .build();
        let sc = detect_topk(&c).unwrap();
        assert_eq!(sc.shape, TopKShape::OuterJoinBuildSide);
        assert_eq!(sc.target_table, "trails");
        // Same plan as inner join: build-side pruning unsupported.
        let c_inner = PlanBuilder::scan("trails", trails())
            .join(
                PlanBuilder::scan("tracking_data", tracking()),
                "mountain",
                "area",
                JoinType::Inner,
            )
            .order_by("altit", false)
            .limit(3)
            .build();
        assert!(detect_topk(&c_inner).is_none());

        // (d) ORDER BY a grouping key.
        let d = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .order_by("species", true)
            .limit(3)
            .build();
        assert_eq!(detect_topk(&d).unwrap().shape, TopKShape::AboveAggregation);

        // ORDER BY an aggregate output: unsupported.
        let e = PlanBuilder::scan("tracking_data", tracking())
            .aggregate(vec!["species"], vec![AggFunc::CountStar])
            .order_by("count", true)
            .limit(3)
            .build();
        assert!(detect_topk(&e).is_none());
    }

    #[test]
    fn predicate_columns_collected_from_scans_and_filters() {
        let p = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)).and(col("area").eq(lit("x"))))
            .build();
        let post = Plan::Filter {
            input: Box::new(p),
            predicate: col("num_sightings").lt(lit(10i64)),
        };
        assert_eq!(
            predicate_column_names(&post),
            vec!["area".to_owned(), "num_sightings".into(), "s".into()]
        );
        let bare = PlanBuilder::scan("tracking_data", tracking()).build();
        assert!(predicate_column_names(&bare).is_empty());
    }

    #[test]
    fn shape_signature_abstracts_literals_and_k() {
        let filt = |lo: i64, hi: i64| {
            PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").between(lit(lo), lit(hi)))
                .build()
        };
        let a = shape_signature(&filt(10, 90)).unwrap();
        let b = shape_signature(&filt(20, 80)).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.need, None);
        assert_eq!(a.ranges.len(), 1);
        assert!(a.ranges[0].contains(&b.ranges[0]), "[10,90] ⊇ [20,80]");
        assert!(!b.ranges[0].contains(&a.ranges[0]));
        // `>= 50` and `> 50` share a shape (both pin the same column); the
        // inclusivity lives in the range.
        let ge = shape_signature(
            &PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").ge(lit(50i64)))
                .build(),
        )
        .unwrap();
        let gt = shape_signature(
            &PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").gt(lit(50i64)))
                .build(),
        )
        .unwrap();
        assert_eq!(ge.fingerprint, gt.fingerprint);
        assert!(ge.ranges[0].contains(&gt.ranges[0]));
        assert!(!gt.ranges[0].contains(&ge.ranges[0]));
        // Top-k plans: k/offset land in `need`, not the hash.
        let topk = |t: i64, k: u64| {
            PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").ge(lit(t)))
                .order_by("num_sightings", true)
                .limit(k)
                .build()
        };
        let t1 = shape_signature(&topk(50, 10)).unwrap();
        let t2 = shape_signature(&topk(60, 3)).unwrap();
        assert_eq!(t1.fingerprint, t2.fingerprint);
        assert_eq!((t1.need, t2.need), (Some(10), Some(3)));
        // ...but a top-k never collides with its bare filter chain, and a
        // different order column or direction changes the shape.
        assert_ne!(t1.fingerprint, ge.fingerprint);
        let asc = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)))
            .order_by("num_sightings", false)
            .limit(10)
            .build();
        assert_ne!(shape_signature(&asc).unwrap().fingerprint, t1.fingerprint);
        // Different constrained columns are different shapes.
        let other_col = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("num_sightings").ge(lit(50i64)))
            .build();
        assert_ne!(
            shape_signature(&other_col).unwrap().fingerprint,
            ge.fingerprint
        );
        // Flipped operand order normalizes: `50 <= s` is `s >= 50`.
        let flipped = PlanBuilder::scan("tracking_data", tracking())
            .filter(Expr::Cmp(
                CmpOp::Le,
                Box::new(lit(50i64)),
                Box::new(col("s")),
            ))
            .build();
        let f = shape_signature(&flipped).unwrap();
        assert_eq!(f.fingerprint, ge.fingerprint);
        assert!(f.ranges[0].same_interval(&ge.ranges[0]));
    }

    #[test]
    fn shape_signature_rejects_non_range_shapes() {
        let scan = || PlanBuilder::scan("tracking_data", tracking());
        // LIKE literals are not interval-comparable.
        assert!(shape_signature(&scan().filter(col("area").like("M%")).build()).is_none());
        // OR / NOT / NE / IN break the conjunction-of-ranges form.
        assert!(shape_signature(
            &scan()
                .filter(col("s").ge(lit(1i64)).or(col("s").lt(lit(0i64))))
                .build()
        )
        .is_none());
        assert!(shape_signature(&scan().filter(col("s").ge(lit(1i64)).not()).build()).is_none());
        assert!(shape_signature(&scan().filter(col("s").ne(lit(1i64))).build()).is_none());
        assert!(shape_signature(
            &scan()
                .filter(col("s").in_list(vec![Value::Int(1), Value::Int(2)]))
                .build()
        )
        .is_none());
        // NULL literals match no rows and are not range-representable.
        assert!(shape_signature(
            &scan()
                .filter(col("s").ge(Expr::Literal(Value::Null)))
                .build()
        )
        .is_none());
        // Mixed-type bounds on the same side of one column cannot be
        // intersected.
        assert!(shape_signature(
            &scan()
                .filter(col("s").ge(lit(1i64)).and(col("s").ge(lit("z"))))
                .build()
        )
        .is_none());
        // Bare LIMIT (no ORDER BY) and non-chain shapes are ineligible.
        assert!(shape_signature(&scan().filter(col("s").ge(lit(1i64))).limit(5).build()).is_none());
        let join = PlanBuilder::scan("trails", trails())
            .join(scan(), "mountain", "area", JoinType::Inner)
            .build();
        assert!(shape_signature(&join).is_none());
        // An unpredicated chain is eligible with empty ranges.
        let bare =
            shape_signature(&scan().order_by("num_sightings", true).limit(3).build()).unwrap();
        assert!(bare.ranges.is_empty());
        assert_eq!(bare.need, Some(3));
    }

    #[test]
    fn fingerprints_distinguish_literals_only_in_exact_mode() {
        let q = |k: i64| {
            PlanBuilder::scan("tracking_data", tracking())
                .filter(col("s").ge(lit(k)))
                .order_by("num_sightings", true)
                .limit(3)
                .build()
        };
        let (p1, p2) = (q(50), (q(99)));
        assert_eq!(
            fingerprint(&p1, FingerprintMode::Shape),
            fingerprint(&p2, FingerprintMode::Shape)
        );
        assert_ne!(
            fingerprint(&p1, FingerprintMode::Exact),
            fingerprint(&p2, FingerprintMode::Exact)
        );
        // Different order column changes the shape too.
        let p3 = PlanBuilder::scan("tracking_data", tracking())
            .filter(col("s").ge(lit(50i64)))
            .order_by("s", true)
            .limit(3)
            .build();
        assert_ne!(
            fingerprint(&p1, FingerprintMode::Shape),
            fingerprint(&p3, FingerprintMode::Shape)
        );
    }
}
