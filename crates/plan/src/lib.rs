//! Logical plans and the plan analyses behind LIMIT pruning (§4.3), top-k
//! shape detection (Figure 7), and plan fingerprinting (Figure 12, §8.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod plan;
pub mod pretty;

pub use analyze::{
    detect_topk, fingerprint, limit_pushdown, predicate_column_names, shape_signature,
    FingerprintMode, LimitPushdown, TopKShape, TopKSpec,
};
pub use plan::{to_sql, AggFunc, JoinType, Plan, PlanBuilder, SortKey};
pub use pretty::pretty;
pub use snowprune_types::ShapeKey;
