//! Canonical plan pretty-printer.
//!
//! Unlike the EXPLAIN-style `Display` impl — which elides scan schemas —
//! this renderer is *canonical*: two plans produce the same text if and
//! only if they would compare equal modulo column-binding state. Scans
//! include their column names, predicates and sort keys render through
//! the expression `Display`, and nesting is two-space indentation. The
//! SQL round-trip harness pins its goldens against this form.

use crate::plan::{AggFunc, Plan};

/// Render the canonical multi-line form of `plan` (trailing newline
/// included, like `Display`).
pub fn pretty(plan: &Plan) -> String {
    let mut out = String::new();
    go(plan, 0, &mut out);
    out
}

fn go(p: &Plan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match p {
        Plan::Scan {
            table,
            schema,
            predicate,
        } => {
            let cols: Vec<&str> = schema.fields().iter().map(|f| f.name.as_str()).collect();
            out.push_str(&pad);
            out.push_str("Scan ");
            out.push_str(table);
            out.push('(');
            out.push_str(&cols.join(", "));
            out.push(')');
            if let Some(e) = predicate {
                out.push_str(&format!(" [{e}]"));
            }
            out.push('\n');
        }
        Plan::Filter { input, predicate } => {
            out.push_str(&format!("{pad}Filter [{predicate}]\n"));
            go(input, depth + 1, out);
        }
        Plan::Project { input, columns } => {
            out.push_str(&format!("{pad}Project [{}]\n", columns.join(", ")));
            go(input, depth + 1, out);
        }
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => {
            out.push_str(&format!(
                "{pad}Join {join_type:?} [{build_key} = {probe_key}]\n"
            ));
            go(build, depth + 1, out);
            go(probe, depth + 1, out);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let aggs_s: Vec<String> = aggs.iter().map(AggFunc::output_name).collect();
            out.push_str(&format!(
                "{pad}Aggregate [group by {}; {}]\n",
                group_by.join(", "),
                aggs_s.join(", ")
            ));
            go(input, depth + 1, out);
        }
        Plan::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { " ASC" }))
                .collect();
            out.push_str(&format!("{pad}Sort [{}]\n", ks.join(", ")));
            go(input, depth + 1, out);
        }
        Plan::Limit { input, k, offset } => {
            out.push_str(&format!("{pad}Limit [{k} OFFSET {offset}]\n"));
            go(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{JoinType, PlanBuilder};
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Schema};
    use snowprune_types::ScalarType;

    fn fact() -> Schema {
        Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
        ])
    }

    fn dim() -> Schema {
        Schema::new(vec![
            Field::new("id", ScalarType::Int),
            Field::new("weight", ScalarType::Int),
        ])
    }

    #[test]
    fn scan_lines_include_schema_columns() {
        let p = PlanBuilder::scan("fact", fact())
            .filter(col("a").ge(lit(5i64)))
            .build();
        assert_eq!(pretty(&p), "Scan fact(a, b) [(a >= 5)]\n");
    }

    #[test]
    fn canonical_form_distinguishes_offset_and_sort_direction() {
        let asc = PlanBuilder::scan("fact", fact())
            .order_by("a", false)
            .limit(3)
            .build();
        let desc = PlanBuilder::scan("fact", fact())
            .order_by("a", true)
            .limit(3)
            .build();
        assert_ne!(pretty(&asc), pretty(&desc));
        assert_eq!(
            pretty(&asc),
            "Limit [3 OFFSET 0]\n  Sort [a ASC]\n    Scan fact(a, b)\n"
        );
    }

    #[test]
    fn join_renders_both_sides_in_build_probe_order() {
        let p = PlanBuilder::scan("dim", dim())
            .filter(col("weight").lt(lit(10i64)))
            .join(
                PlanBuilder::scan("fact", fact()),
                "id",
                "b",
                JoinType::Inner,
            )
            .build();
        assert_eq!(
            pretty(&p),
            "Join Inner [id = b]\n  \
             Scan dim(id, weight) [(weight < 10)]\n  \
             Scan fact(a, b)\n"
        );
    }
}
