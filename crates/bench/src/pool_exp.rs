//! Extension experiment: shared morsel pool vs per-scan threading for a
//! burst of concurrent tenant queries.
//!
//! The paper measures pruning inside virtual warehouses where many
//! concurrent queries share one elastic worker pool. This experiment
//! replays a 16-tenant burst two ways:
//!
//! * **per-scan threading** — every query runs on its own executor with a
//!   private pool of `scan_threads` workers (N×threads total), the model
//!   this repo used before the shared pool existed;
//! * **shared pool** — one [`Session`] whose `scan_threads` workers are
//!   shared by the whole burst via per-query morsel lanes.
//!
//! Both modes must produce identical per-query row counts (asserted).
//! Total partitions loaded is reported for comparison only: the burst
//! includes top-k and racing-LIMIT shapes whose I/O overshoot is
//! legitimately timing-dependent, so the loaded counts may differ
//! slightly between modes and runs even though results never do. The
//! report compares total wall-clock and thread footprint.

use std::time::{Duration, Instant};

use snowprune_exec::{ExecConfig, Executor, Session};
use snowprune_plan::Plan;
use snowprune_workload::{tenant_burst, WorkloadConfig};

use crate::snapshot::Snapshot;

/// Best-of-N: the minimum is the standard noise-resistant wall-clock
/// estimator (any interference only ever adds time).
fn best(xs: Vec<Duration>) -> Duration {
    xs.into_iter().min().unwrap()
}

/// Run the burst experiment; `tenants` queries on `scan_threads` workers.
pub fn ext_pool_burst(seed: u64, tenants: usize, scan_threads: usize) -> String {
    ext_pool_burst_sized(seed, tenants, scan_threads, 400, 60)
}

/// Size-parameterized variant (smoke tests use a tiny workload).
pub fn ext_pool_burst_sized(
    seed: u64,
    tenants: usize,
    scan_threads: usize,
    rows_per_partition: usize,
    fact_partitions: usize,
) -> String {
    ext_pool_burst_snap(
        seed,
        tenants,
        scan_threads,
        rows_per_partition,
        fact_partitions,
    )
    .0
}

/// Like [`ext_pool_burst_sized`], additionally returning the measured
/// numbers as a tracked [`Snapshot`] for `BENCH_pool.json`.
pub fn ext_pool_burst_snap(
    seed: u64,
    tenants: usize,
    scan_threads: usize,
    rows_per_partition: usize,
    fact_partitions: usize,
) -> (String, Snapshot) {
    let wl = tenant_burst(
        &WorkloadConfig {
            queries: tenants,
            rows_per_partition,
            fact_partitions,
        },
        seed,
    );
    let plans: Vec<Plan> = wl.queries.iter().map(|q| q.plan.clone()).collect();
    let cfg = ExecConfig::default().with_scan_threads(scan_threads);

    let run_per_scan = || -> (Duration, u64, Vec<usize>) {
        let start = Instant::now();
        let outs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .iter()
                .map(|plan| {
                    let exec = Executor::new(wl.catalog.clone(), cfg.clone());
                    s.spawn(move || exec.run(plan).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = start.elapsed();
        let loaded = outs.iter().map(|o| o.io.partitions_loaded).sum();
        let counts = outs.iter().map(|o| o.rows.len()).collect();
        (wall, loaded, counts)
    };
    let run_shared = || -> (Duration, u64, Vec<usize>) {
        let session = Session::new(wl.catalog.clone(), cfg.clone());
        let start = Instant::now();
        let outs: Vec<_> = session
            .run_batch(&plans)
            .into_iter()
            .map(|o| o.unwrap())
            .collect();
        let wall = start.elapsed();
        let loaded = outs.iter().map(|o| o.io.partitions_loaded).sum();
        let counts = outs.iter().map(|o| o.rows.len()).collect();
        (wall, loaded, counts)
    };

    // Warm up once (first touch pays partition materialization), then time
    // five repetitions per mode, alternating modes so background-load
    // drift hits both equally, and keep the best of each.
    let (_, per_scan_loaded, per_scan_counts) = run_per_scan();
    let (_, shared_loaded, shared_counts) = run_shared();
    let mut per_scan_times = Vec::new();
    let mut shared_times = Vec::new();
    for _ in 0..5 {
        per_scan_times.push(run_per_scan().0);
        shared_times.push(run_shared().0);
    }
    let per_scan_wall = best(per_scan_times);
    let shared_wall = best(shared_times);

    let mut s = String::from("## Extension — shared morsel pool vs per-scan threading\n");
    s += &format!(
        "  burst: {tenants} tenant queries, {scan_threads} scan workers, morsels of {} partitions\n",
        cfg.morsel_partitions
    );
    s += &format!(
        "  per-scan threading : {:>8.2} ms total wall ({} scan threads peak)\n",
        per_scan_wall.as_secs_f64() * 1e3,
        tenants * scan_threads,
    );
    s += &format!(
        "  shared pool        : {:>8.2} ms total wall ({scan_threads} scan threads)\n",
        shared_wall.as_secs_f64() * 1e3,
    );
    s += &format!(
        "  speedup: {:.2}x with {}x fewer scan threads\n",
        per_scan_wall.as_secs_f64() / shared_wall.as_secs_f64().max(1e-9),
        tenants,
    );
    let rows_match = per_scan_counts == shared_counts;
    s += &format!(
        "  result check: per-query row counts identical = {rows_match}; partitions loaded {per_scan_loaded} (per-scan) vs {shared_loaded} (shared)\n",
    );
    assert!(rows_match, "shared pool changed query results");
    let mut snap = Snapshot::new("pool")
        .context("seed", seed)
        .context("tenants", tenants)
        .context("scan_threads", scan_threads)
        .context("rows_per_partition", rows_per_partition)
        .context("fact_partitions", fact_partitions);
    snap.metric("per_scan_wall_ms", per_scan_wall.as_secs_f64() * 1e3, "ms");
    snap.metric("shared_wall_ms", shared_wall.as_secs_f64() * 1e3, "ms");
    snap.metric(
        "shared_speedup",
        per_scan_wall.as_secs_f64() / shared_wall.as_secs_f64().max(1e-9),
        "x",
    );
    snap.metric("per_scan_loaded", per_scan_loaded as f64, "partitions");
    snap.metric("shared_loaded", shared_loaded as f64, "partitions");
    (s, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_burst_runs_small() {
        let s = ext_pool_burst_sized(5, 6, 2, 60, 8);
        assert!(s.contains("shared pool"));
        assert!(s.contains("row counts identical = true"));
    }
}
