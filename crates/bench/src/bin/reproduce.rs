//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p snowprune-bench --release --bin reproduce -- all
//! cargo run -p snowprune-bench --release --bin reproduce -- fig13 --scale 0.05
//! ```

use snowprune_bench::{experiments as e, tpch_exp as t};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.02);
    let queries = args
        .iter()
        .position(|a| a == "--queries")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(400);
    let seed = 2024_11_05;

    let run = |id: &str| -> Option<String> {
        match id {
            "fig1" => Some(e::fig01_overview(queries, seed)),
            "fig4" => Some(e::fig04_filter_cdf(queries, seed)),
            "tab1" => Some(e::tab1_query_mix(20_000, seed)),
            "fig6" => Some(e::fig06_k_cdf(100_000, seed)),
            "tab2" => Some(e::tab2_limit_breakdown(queries.max(2000), seed)),
            "fig8" => Some(e::fig08_topk_sorting(queries, seed)),
            "fig9" => Some(e::fig09_topk_impact(queries, seed)),
            "fig10" => Some(e::fig10_join_cdf(queries, seed)),
            "fig11" => Some(e::fig11_flow(queries, seed)),
            "fig12" => Some(e::fig12_repetitiveness(seed)),
            "fig13" => Some(format!(
                "{}{}",
                t::fig13_tpch(scale, seed),
                t::fig13_tpch_unclustered(scale, seed)
            )),
            "cache" => Some(t::ext_cache(seed)),
            "ablations" => Some(t::ablations(seed)),
            _ => None,
        }
    };

    let ids = [
        "fig1", "fig4", "tab1", "fig6", "tab2", "fig8", "fig9", "fig10", "fig11", "fig12",
        "fig13", "cache", "ablations",
    ];
    if which == "all" {
        for id in ids {
            println!("{}", run(id).unwrap());
        }
    } else if let Some(report) = run(which) {
        println!("{report}");
    } else {
        eprintln!(
            "unknown experiment '{which}'. available: {} all",
            ids.join(" ")
        );
        std::process::exit(2);
    }
}
