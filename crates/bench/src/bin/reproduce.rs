//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run -p snowprune-bench --release --bin reproduce -- all
//! cargo run -p snowprune-bench --release --bin reproduce -- fig13 --scale 0.05
//! ```

use snowprune_bench::snapshot::Snapshot;
use snowprune_bench::{
    experiments as e, joinagg_exp as j, pool_exp as p, prefetch_exp as pf, production_exp as pr,
    tpch_exp as t, vector_exp as v,
};
use snowprune_workload::ProductionScaleConfig;

/// Persist a tracked snapshot next to the report (`BENCH_<name>.json`,
/// honoring `SNOWPRUNE_BENCH_DIR`) and return a report line saying where.
fn emit(snap: Snapshot) -> String {
    match snap.write_file() {
        Ok(path) => format!("  snapshot: {}\n", path.display()),
        Err(e) => format!(
            "  snapshot: FAILED to write BENCH_{}.json: {e}\n",
            snap.name
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // One pass over the args: valued flags consume their value here, so the
    // experiment-id scan below can never mistake a value for an id.
    // `--smoke`: tiny-scale pass over every experiment, used by CI to keep
    // the reproduction binary from rotting without paying full runtime.
    let mut smoke = false;
    let mut scale_arg: Option<f64> = None;
    let mut queries_arg: Option<usize> = None;
    let mut which: Option<&str> = None;
    let mut i = 0;
    fn flag_value<T: std::str::FromStr>(args: &[String], i: usize) -> T {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!(
                "flag {} needs a {} value",
                args[i - 1],
                std::any::type_name::<T>()
            );
            std::process::exit(2);
        })
    }
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--scale" => {
                i += 1;
                scale_arg = Some(flag_value(&args, i));
            }
            "--queries" => {
                i += 1;
                queries_arg = Some(flag_value(&args, i));
            }
            a if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'. available: --smoke --scale <f64> --queries <n>");
                std::process::exit(2);
            }
            a => which = which.or(Some(a)),
        }
        i += 1;
    }
    let which = which.unwrap_or("all");
    let scale = scale_arg.unwrap_or(if smoke { 0.005 } else { 0.02 });
    let queries = queries_arg.unwrap_or(if smoke { 40 } else { 400 });
    let seed = 20241105; // 2024-11-05, the paper's camera-ready era
    let mix_queries = if smoke { 1_000 } else { 20_000 };
    let k_samples = if smoke { 5_000 } else { 100_000 };
    let limit_floor = if smoke { 200 } else { 2_000 };

    let run = |id: &str| -> Option<String> {
        match id {
            "fig1" => Some(e::fig01_overview(queries, seed)),
            "fig4" => Some(e::fig04_filter_cdf(queries, seed)),
            "tab1" => Some(e::tab1_query_mix(mix_queries, seed)),
            "fig6" => Some(e::fig06_k_cdf(k_samples, seed)),
            "tab2" => Some(e::tab2_limit_breakdown(queries.max(limit_floor), seed)),
            "fig8" => Some(e::fig08_topk_sorting(queries, seed)),
            "fig9" => Some(e::fig09_topk_impact(queries, seed)),
            "fig10" => Some(e::fig10_join_cdf(queries, seed)),
            "fig11" => Some(e::fig11_flow(queries, seed)),
            "fig12" => Some(e::fig12_repetitiveness(seed)),
            "fig13" => Some(format!(
                "{}{}",
                t::fig13_tpch(scale, seed),
                t::fig13_tpch_unclustered(scale, seed)
            )),
            "cache" => Some({
                let (s, snap) = t::ext_cache_snap(seed);
                s + &emit(snap)
            }),
            "ablations" => Some(t::ablations(seed)),
            "pool" => Some({
                let (s, snap) = if smoke {
                    p::ext_pool_burst_snap(seed, 8, 2, 60, 8)
                } else {
                    p::ext_pool_burst_snap(seed, 16, 4, 400, 60)
                };
                s + &emit(snap)
            }),
            "prefetch" => Some({
                let (s, snap) = if smoke {
                    pf::ext_prefetch_snap(seed, 4, 50, 10)
                } else {
                    pf::ext_prefetch_snap(seed, 12, 400, 60)
                };
                s + &emit(snap)
            }),
            "vectorized" => Some({
                let (s, snap) = if smoke {
                    v::ext_vectorized_sized(seed, 10_000, 400, 2)
                } else {
                    v::ext_vectorized(seed)
                };
                s + &emit(snap)
            }),
            "joinagg" => Some({
                let (s, snap) = if smoke {
                    j::ext_joinagg_sized(seed, 10_000, 400, 2)
                } else {
                    j::ext_joinagg(seed)
                };
                s + &emit(snap)
            }),
            "production" => Some({
                let (s, snap) = if smoke {
                    let scale = ProductionScaleConfig {
                        tenants: 24,
                        queries: 96,
                        fact_partitions: 400,
                        rows_per_partition: 8,
                        zipf_s: 1.1,
                    };
                    pr::ext_production_snap(seed, &scale, 4)
                } else {
                    // Tracked-baseline scale: hundreds of tenants over a
                    // 20k-partition lake regenerates in minutes on one
                    // core. The generator's own default
                    // (`ProductionScaleConfig::default()`: 512 tenants,
                    // 2048 arrivals, 100k partitions) is the full
                    // production scale — pass it through
                    // `ext_production` when wall-clock budget allows.
                    let scale = ProductionScaleConfig {
                        tenants: 256,
                        queries: 512,
                        fact_partitions: 20_000,
                        rows_per_partition: 8,
                        zipf_s: 1.1,
                    };
                    pr::ext_production_snap(seed, &scale, 8)
                };
                s + &emit(snap)
            }),
            _ => None,
        }
    };

    let ids = [
        "fig1",
        "fig4",
        "tab1",
        "fig6",
        "tab2",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "cache",
        "ablations",
        "pool",
        "prefetch",
        "vectorized",
        "joinagg",
        "production",
    ];
    if which == "all" {
        for id in ids {
            println!("{}", run(id).unwrap());
        }
    } else if let Some(report) = run(which) {
        println!("{report}");
    } else {
        eprintln!(
            "unknown experiment '{which}'. available: {} all",
            ids.join(" ")
        );
        std::process::exit(2);
    }
}
