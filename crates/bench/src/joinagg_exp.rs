//! Extension experiment: batch-native joins & aggregations vs the
//! row-at-a-time fallback.
//!
//! `ExecConfig::batch_native` gates whether join and aggregate nodes
//! consume `Batch`es directly (columnar probe and fold kernels) or drop
//! to the row-at-a-time sinks the engine shipped with. Both paths share
//! planning, pruning, and I/O, so this experiment isolates exactly the
//! operator-kernel win and doubles as an end-to-end equivalence check:
//!
//! * **CPU-bound leg** — free I/O cost model ([`IoCostModel::free`]),
//!   join / top-k-over-join / filtered-group-by shapes. Rows and
//!   [`IoSnapshot`] counters must be byte-identical between modes
//!   (asserted); the report records real wall-clock for both and the
//!   speedup.
//! * **I/O-bound leg** — the default object-store cost model. Batch
//!   nativeness is post-load CPU-side execution, so the *simulated* I/O
//!   accounting must not move at all: the entire [`IoSnapshot`]
//!   (including `simulated_wall_ns`) is asserted equal across modes.

use std::time::{Duration, Instant};

use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::{AggFunc, JoinType, Plan, PlanBuilder};
use snowprune_storage::{Catalog, IoCostModel, IoSnapshot, Layout, Schema, Table};
use snowprune_storage::{Field, TableBuilder};
use snowprune_types::{ScalarType, Value};

use crate::snapshot::Snapshot;

/// Build a small dimension table: `dk` is the join key, `weight` feeds
/// the join-side aggregate.
fn dim_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("dk", ScalarType::Int),
        Field::new("weight", ScalarType::Int),
        Field::new("name", ScalarType::Str),
    ]);
    let mut b = TableBuilder::new("dim", schema).target_rows_per_partition(64);
    for i in 0..rows as i64 {
        b.push_row(vec![
            Value::Int(i),
            Value::Int((i * 13) % 97),
            Value::Str(format!("dim{i:04}")),
        ]);
    }
    b.build()
}

/// Build the fact table: `fk` joins against `dim.dk` (with a miss band
/// so the probe exercises non-matching keys), `score` drives top-k,
/// `grp` is a low-cardinality group key, and `tag` is unclustered so
/// filters survive zone-map pruning.
fn fact_table(rows: usize, rows_per_partition: usize, dim_rows: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Field::new("fk", ScalarType::Int),
        Field::new("score", ScalarType::Int),
        Field::new("grp", ScalarType::Int),
        Field::new("tag", ScalarType::Int),
    ]);
    let mut b = TableBuilder::new("fact", schema)
        .target_rows_per_partition(rows_per_partition)
        .layout(Layout::Shuffle(seed));
    let key_space = (dim_rows as i64) + (dim_rows as i64) / 4; // ~20% probe misses
    for i in 0..rows as i64 {
        b.push_row(vec![
            Value::Int((i * 7919) % key_space),
            Value::Int((i * 104_729) % 1_000_003),
            Value::Int(i % 32),
            Value::Int((i * 37) % 500),
        ]);
    }
    b.build()
}

/// Query shapes covering the batch-native join and aggregation
/// operators: a filtered inner join, a top-k over a join (Figure 7b
/// shape), and a filtered group-by with every aggregate kind.
fn plans(dim: &Schema, fact: &Schema) -> Vec<Plan> {
    vec![
        PlanBuilder::scan("dim", dim.clone())
            .filter(col("weight").lt(lit(60i64)))
            .join(
                PlanBuilder::scan("fact", fact.clone()).filter(col("tag").lt(lit(250i64))),
                "dk",
                "fk",
                JoinType::Inner,
            )
            .build(),
        PlanBuilder::scan("dim", dim.clone())
            .join(
                PlanBuilder::scan("fact", fact.clone()),
                "dk",
                "fk",
                JoinType::Inner,
            )
            .order_by("score", true)
            .limit(100)
            .build(),
        PlanBuilder::scan("fact", fact.clone())
            .filter(col("tag").ge(lit(100i64)))
            .aggregate(
                vec!["grp"],
                vec![
                    AggFunc::CountStar,
                    AggFunc::Count("score".into()),
                    AggFunc::Sum("score".into()),
                    AggFunc::Min("score".into()),
                    AggFunc::Max("score".into()),
                    AggFunc::Avg("score".into()),
                ],
            )
            .build(),
    ]
}

/// Best-of-N: the minimum is the standard noise-resistant wall-clock
/// estimator (interference only ever adds time).
fn best(xs: Vec<Duration>) -> Duration {
    xs.into_iter().min().unwrap()
}

/// Run the batch-native join/aggregation experiment at default scale.
pub fn ext_joinagg(seed: u64) -> (String, Snapshot) {
    ext_joinagg_sized(seed, 200_000, 1_000, 5)
}

/// Size-parameterized variant (smoke runs use a tiny workload).
pub fn ext_joinagg_sized(
    seed: u64,
    fact_rows: usize,
    rows_per_partition: usize,
    reps: usize,
) -> (String, Snapshot) {
    let dim_rows = 2_000.min(fact_rows / 10).max(16);
    let dim = dim_table(dim_rows);
    let fact = fact_table(fact_rows, rows_per_partition, dim_rows, seed);
    let dim_schema = dim.schema().clone();
    let fact_schema = fact.schema().clone();
    let catalog = Catalog::new();
    catalog.register(dim);
    catalog.register(fact);
    let plans = plans(&dim_schema, &fact_schema);

    let run = |cfg: ExecConfig| -> (Vec<Vec<Vec<Value>>>, IoSnapshot, Duration) {
        let exec = Executor::new(catalog.clone(), cfg);
        let start = Instant::now();
        let mut io = IoSnapshot::default();
        let rows: Vec<_> = plans
            .iter()
            .map(|p| {
                let out = exec.run(p).unwrap();
                io.merge(&out.io);
                out.rows.rows
            })
            .collect();
        (rows, io, start.elapsed())
    };

    let mut snap = Snapshot::new("joinagg")
        .context("seed", seed)
        .context("fact_rows", fact_rows)
        .context("dim_rows", dim_rows)
        .context("rows_per_partition", rows_per_partition);
    let mut s = String::from("## Extension — batch-native joins & aggregations vs row fallback\n");
    s += &format!(
        "  fact {fact_rows} rows x dim {dim_rows} rows over {} query shapes; batch_native off (row sinks) vs on (columnar kernels)\n",
        plans.len(),
    );

    // ---- CPU-bound leg: free I/O isolates the real execution cost ----
    let cpu_cfg = |native: bool| {
        let mut cfg = ExecConfig::default().with_batch_native(native);
        cfg.io_cost = IoCostModel::free();
        cfg
    };
    // Warm once per mode (first touch pays partition materialization),
    // then keep the best of `reps` timed passes, alternating modes so
    // background-load drift hits both equally.
    let (row_rows, row_io, _) = run(cpu_cfg(false));
    let (bat_rows, bat_io, _) = run(cpu_cfg(true));
    assert_eq!(
        row_rows, bat_rows,
        "batch-native join/agg rows diverged from row fallback"
    );
    assert_eq!(
        row_io, bat_io,
        "batch-native join/agg I/O counters diverged from row fallback"
    );
    let mut row_times = Vec::new();
    let mut bat_times = Vec::new();
    for _ in 0..reps.max(1) {
        row_times.push(run(cpu_cfg(false)).2);
        bat_times.push(run(cpu_cfg(true)).2);
    }
    let row_wall = best(row_times);
    let bat_wall = best(bat_times);
    let speedup = row_wall.as_secs_f64() / bat_wall.as_secs_f64().max(1e-9);
    s += &format!(
        "  CPU-bound (free I/O): row fallback {:>8.2} ms, batch-native {:>8.2} ms — {speedup:.2}x\n",
        row_wall.as_secs_f64() * 1e3,
        bat_wall.as_secs_f64() * 1e3,
    );
    s += "  result check: rows and I/O counters byte-identical across modes\n";
    snap.metric("cpu_row_wall_ms", row_wall.as_secs_f64() * 1e3, "ms");
    snap.metric("cpu_batch_wall_ms", bat_wall.as_secs_f64() * 1e3, "ms");
    snap.metric("cpu_speedup", speedup, "x");

    // ---- I/O-bound leg: simulated accounting must not move ----------
    let io_cfg = |native: bool| ExecConfig::default().with_batch_native(native);
    let (row_rows, row_io, _) = run(io_cfg(false));
    let (bat_rows, bat_io, _) = run(io_cfg(true));
    assert_eq!(row_rows, bat_rows, "I/O-bound rows diverged");
    assert_eq!(
        row_io, bat_io,
        "batch-native execution is post-load; simulated I/O accounting must be identical"
    );
    s += &format!(
        "  I/O-bound (object-store model): simulated wall {:.2} ms in both modes \
         ({} partitions / {} bytes loaded) — operator kernels never touch the I/O plan\n",
        bat_io.simulated_wall_ns as f64 / 1e6,
        bat_io.partitions_loaded,
        bat_io.bytes_loaded,
    );
    snap.metric(
        "io_simulated_wall_ms",
        bat_io.simulated_wall_ns as f64 / 1e6,
        "ms",
    );
    snap.metric(
        "io_partitions_loaded",
        bat_io.partitions_loaded as f64,
        "partitions",
    );
    (s, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joinagg_experiment_runs_small() {
        let (s, snap) = ext_joinagg_sized(11, 5_000, 250, 1);
        assert!(s.contains("CPU-bound"));
        assert!(s.contains("byte-identical"));
        assert!(snap.metrics.iter().any(|m| m.name == "cpu_speedup"));
        assert!(snap.to_json().contains("\"name\": \"joinagg\""));
    }
}
