//! Small reporting utilities shared by the experiment runners.

/// Five-number summary plus mean, the shape behind the paper's box plots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DistSummary {
    /// Sample size.
    pub n: usize,
    /// Smallest sample value.
    pub min: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub p75: f64,
    /// Largest sample value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Summarize a sample (NaNs are rejected by debug assertion).
pub fn summarize(values: &[f64]) -> DistSummary {
    if values.is_empty() {
        return DistSummary::default();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| -> f64 {
        let idx = (p * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    };
    DistSummary {
        n: v.len(),
        min: v[0],
        p25: q(0.25),
        median: q(0.5),
        p75: q(0.75),
        max: v[v.len() - 1],
        mean: v.iter().sum::<f64>() / v.len() as f64,
    }
}

impl DistSummary {
    /// One formatted table row (values rendered as percentages).
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<18} n={:<6} min={:>6.1}% p25={:>6.1}% med={:>6.1}% p75={:>6.1}% max={:>6.1}% mean={:>6.1}%",
            self.n,
            self.min * 100.0,
            self.p25 * 100.0,
            self.median * 100.0,
            self.p75 * 100.0,
            self.max * 100.0,
            self.mean * 100.0
        )
    }
}

/// Percentile → value pairs for CDF tables.
pub fn cdf_table(values: &[f64], points: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    points
        .iter()
        .map(|&p| {
            let idx = (p * (v.len() - 1) as f64).round() as usize;
            (p, v[idx.min(v.len() - 1)])
        })
        .collect()
}

/// Fraction of samples satisfying a predicate.
pub fn share(values: &[f64], f: impl Fn(f64) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| f(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[0.0, 0.5, 1.0]);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.n, 3);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn cdf_and_share() {
        let v = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let t = cdf_table(&v, &[0.0, 0.5, 1.0]);
        assert_eq!(t[0].1, 0.1);
        assert_eq!(t[1].1, 0.3);
        assert_eq!(t[2].1, 0.5);
        assert_eq!(share(&v, |x| x >= 0.3), 0.6);
    }
}
