//! Extension experiment: columnar vectorized execution vs row-at-a-time.
//!
//! The batch size knob (`ExecConfig::batch_rows`) degrades the vectorized
//! spine gracefully: `batch_rows = 1` is the old row-at-a-time engine
//! (one-row windows, per-row selection vectors and materialization), and
//! the default 1024 amortizes that bookkeeping over column slices. Both
//! paths run the *same* code, so this experiment isolates exactly the
//! batching win and doubles as an end-to-end equivalence check:
//!
//! * **CPU-bound leg** — free I/O cost model
//!   ([`IoCostModel::free`]), filter / filter+project / top-k shapes.
//!   Rows and [`IoSnapshot`] counters must be byte-identical between
//!   batch sizes (asserted); the report records real wall-clock for both
//!   and the speedup.
//! * **I/O-bound leg** — the default object-store cost model. Batching is
//!   post-load CPU-side chunking, so the *simulated* I/O accounting must
//!   not move at all: the entire [`IoSnapshot`] (including
//!   `simulated_wall_ns`) is asserted equal across batch sizes.

use std::time::{Duration, Instant};

use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::{Plan, PlanBuilder};
use snowprune_storage::{Catalog, IoCostModel, IoSnapshot, Layout, Schema, Table};
use snowprune_storage::{Field, TableBuilder};
use snowprune_types::{ScalarType, Value};

use crate::snapshot::Snapshot;

/// Batch size that reproduces the pre-vectorization row-at-a-time engine.
const ROW_AT_A_TIME: usize = 1;
/// The vectorized default ([`ExecConfig::default`]'s `batch_rows`).
const VECTORIZED: usize = 1024;

/// Build a deterministic mixed-type fact table: `v` loosely clustered,
/// `payload` unclustered, `w`/`tag` exercising the float and string
/// kernels.
fn fact_table(rows: usize, rows_per_partition: usize, seed: u64) -> Table {
    let schema = Schema::new(vec![
        Field::new("v", ScalarType::Int),
        Field::new("payload", ScalarType::Int),
        Field::new("w", ScalarType::Float),
        Field::new("tag", ScalarType::Str),
    ]);
    let mut b = TableBuilder::new("t", schema)
        .target_rows_per_partition(rows_per_partition)
        .layout(Layout::Shuffle(seed));
    for i in 0..rows as i64 {
        b.push_row(vec![
            Value::Int((i * 37) % 100_000),
            Value::Int(i),
            Value::Float(((i % 997) as f64) * 0.5),
            Value::Str(format!("tag{:03}", i % 250)),
        ]);
    }
    b.build()
}

/// Query shapes covering the batch-native operators: pure filter, a
/// filter→project→filter chain, and a filtered top-k spine.
fn plans(schema: &Schema) -> Vec<Plan> {
    vec![
        PlanBuilder::scan("t", schema.clone())
            .filter(col("v").ge(lit(25_000i64)).and(col("v").lt(lit(75_000i64))))
            .build(),
        PlanBuilder::scan("t", schema.clone())
            .filter(col("w").lt(lit(400.0)))
            .project(vec!["payload", "v", "tag"])
            .filter(col("tag").starts_with("tag1"))
            .build(),
        PlanBuilder::scan("t", schema.clone())
            .filter(col("payload").ge(lit(1_000i64)))
            .order_by("v", false)
            .limit(100)
            .build(),
    ]
}

/// Best-of-N: the minimum is the standard noise-resistant wall-clock
/// estimator (interference only ever adds time).
fn best(xs: Vec<Duration>) -> Duration {
    xs.into_iter().min().unwrap()
}

/// Run the vectorization experiment at default scale.
pub fn ext_vectorized(seed: u64) -> (String, Snapshot) {
    ext_vectorized_sized(seed, 200_000, 1_000, 5)
}

/// Size-parameterized variant (smoke runs use a tiny workload).
pub fn ext_vectorized_sized(
    seed: u64,
    rows: usize,
    rows_per_partition: usize,
    reps: usize,
) -> (String, Snapshot) {
    let table = fact_table(rows, rows_per_partition, seed);
    let schema = table.schema().clone();
    let catalog = Catalog::new();
    catalog.register(table);
    let plans = plans(&schema);

    let run = |cfg: ExecConfig| -> (Vec<Vec<Vec<Value>>>, IoSnapshot, Duration) {
        let exec = Executor::new(catalog.clone(), cfg);
        let start = Instant::now();
        let mut io = IoSnapshot::default();
        let rows: Vec<_> = plans
            .iter()
            .map(|p| {
                let out = exec.run(p).unwrap();
                io.merge(&out.io);
                out.rows.rows
            })
            .collect();
        (rows, io, start.elapsed())
    };

    let mut snap = Snapshot::new("vectorized")
        .context("seed", seed)
        .context("rows", rows)
        .context("rows_per_partition", rows_per_partition)
        .context("batch_rows_baseline", ROW_AT_A_TIME)
        .context("batch_rows_vectorized", VECTORIZED);
    let mut s = String::from("## Extension — columnar vectorized execution vs row-at-a-time\n");
    s += &format!(
        "  {rows} rows x {} columns over {} query shapes; batch_rows {ROW_AT_A_TIME} (row engine) vs {VECTORIZED} (vectorized)\n",
        schema.len(),
        plans.len(),
    );

    // ---- CPU-bound leg: free I/O isolates the real execution cost ----
    let cpu_cfg = |batch: usize| {
        let mut cfg = ExecConfig::default().with_batch_rows(batch);
        cfg.io_cost = IoCostModel::free();
        cfg
    };
    // Warm once per mode (first touch pays partition materialization),
    // then keep the best of `reps` timed passes, alternating modes so
    // background-load drift hits both equally.
    let (row_rows, row_io, _) = run(cpu_cfg(ROW_AT_A_TIME));
    let (vec_rows, vec_io, _) = run(cpu_cfg(VECTORIZED));
    assert_eq!(
        row_rows, vec_rows,
        "vectorized rows diverged from row engine"
    );
    assert_eq!(
        row_io, vec_io,
        "vectorized I/O counters diverged from row engine"
    );
    let mut row_times = Vec::new();
    let mut vec_times = Vec::new();
    for _ in 0..reps.max(1) {
        row_times.push(run(cpu_cfg(ROW_AT_A_TIME)).2);
        vec_times.push(run(cpu_cfg(VECTORIZED)).2);
    }
    let row_wall = best(row_times);
    let vec_wall = best(vec_times);
    let speedup = row_wall.as_secs_f64() / vec_wall.as_secs_f64().max(1e-9);
    s += &format!(
        "  CPU-bound (free I/O): row engine {:>8.2} ms, vectorized {:>8.2} ms — {speedup:.2}x\n",
        row_wall.as_secs_f64() * 1e3,
        vec_wall.as_secs_f64() * 1e3,
    );
    s += "  result check: rows and I/O counters byte-identical across batch sizes\n";
    snap.metric("cpu_row_wall_ms", row_wall.as_secs_f64() * 1e3, "ms");
    snap.metric("cpu_vec_wall_ms", vec_wall.as_secs_f64() * 1e3, "ms");
    snap.metric("cpu_speedup", speedup, "x");

    // ---- I/O-bound leg: simulated accounting must not move ----------
    let io_cfg = |batch: usize| ExecConfig::default().with_batch_rows(batch);
    let (row_rows, row_io, _) = run(io_cfg(ROW_AT_A_TIME));
    let (vec_rows, vec_io, _) = run(io_cfg(VECTORIZED));
    assert_eq!(row_rows, vec_rows, "I/O-bound rows diverged");
    assert_eq!(
        row_io, vec_io,
        "batching is post-load chunking; simulated I/O accounting must be identical"
    );
    s += &format!(
        "  I/O-bound (object-store model): simulated wall {:.2} ms at every batch size \
         ({} partitions / {} bytes loaded) — batching never touches the I/O plan\n",
        vec_io.simulated_wall_ns as f64 / 1e6,
        vec_io.partitions_loaded,
        vec_io.bytes_loaded,
    );
    snap.metric(
        "io_simulated_wall_ms",
        vec_io.simulated_wall_ns as f64 / 1e6,
        "ms",
    );
    snap.metric(
        "io_partitions_loaded",
        vec_io.partitions_loaded as f64,
        "partitions",
    );
    (s, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorized_experiment_runs_small() {
        let (s, snap) = ext_vectorized_sized(11, 5_000, 250, 1);
        assert!(s.contains("CPU-bound"));
        assert!(s.contains("byte-identical"));
        assert!(snap.metrics.iter().any(|m| m.name == "cpu_speedup"));
        assert!(snap.to_json().contains("\"name\": \"vectorized\""));
    }
}
