//! Extension experiment: the production-scale multi-tenant harness —
//! admission control + adaptive prefetch depth over a 100k-partition lake.
//!
//! One burst of skewed (Zipf) tenant arrivals runs three ways:
//!
//! * **admitted, adaptive depth** — `Session::run_admitted` with the
//!   windowed per-tenant FIFO, queue caps, and feedback-steered prefetch
//!   depth starting at 1;
//! * **admitted, fixed depth 1** — identical admission decisions (they
//!   depend only on arrival order), blocking prefetch. The adaptive run
//!   must beat this wall-clock on the I/O-bound mix;
//! * **sequential oracle** — every admitted query re-run alone on a
//!   single-threaded executor; result *multisets* must be byte-identical
//!   (canonical row order — pooled join probes legally emit matches in
//!   completion order, exactly as in the differential suite's contract).
//!
//! The run also asserts the fairness invariants: zero starved tenants
//! (every admitted query completed, and each tenant's max virtual queue
//! wait is bounded by its own total work — never by other tenants'), and
//! every adaptive depth within `[1, prefetch_max_depth]`.

use snowprune_exec::{Admission, ExecConfig, Executor, Session};
use snowprune_storage::IoCostModel;
use snowprune_workload::{production_scale, ProductionScaleConfig};

use crate::snapshot::Snapshot;

/// Cost model where partition GETs dominate the 8-row evaluations — the
/// I/O-bound regime the adaptive rule is meant to exploit.
fn lake_model() -> IoCostModel {
    IoCostModel {
        latency_ns_per_request: 2_000_000,
        throughput_bytes_per_sec: 200_000_000,
        metadata_ns_per_read: 0,
        eval_ns_per_row: 5_000,
    }
}

/// Run the production experiment at default scale (512 tenants, 2048
/// arrivals, a 100k-partition lake).
pub fn ext_production(seed: u64) -> String {
    ext_production_snap(seed, &ProductionScaleConfig::default(), 8).0
}

/// Size-parameterized variant (smoke runs use a tiny lake).
pub fn ext_production_sized(seed: u64, cfg: &ProductionScaleConfig, workers: usize) -> String {
    ext_production_snap(seed, cfg, workers).0
}

/// Like [`ext_production_sized`], additionally returning the measured
/// numbers as a tracked [`Snapshot`] for `BENCH_production.json`. All
/// numbers come off deterministic virtual clocks, so the snapshot is
/// exact rather than sampled.
pub fn ext_production_snap(
    seed: u64,
    scale: &ProductionScaleConfig,
    workers: usize,
) -> (String, Snapshot) {
    const MAX_DEPTH: usize = 8;
    let wl = production_scale(scale, seed);
    let arrivals: Vec<(u64, snowprune_plan::Plan)> = wl
        .arrivals
        .iter()
        .map(|(t, q)| (*t, q.plan.clone()))
        .collect();
    let mut snap = Snapshot::new("production")
        .context("seed", seed)
        .context("tenants", scale.tenants)
        .context("queries", scale.queries)
        .context("fact_partitions", scale.fact_partitions)
        .context("workers", workers);
    let mut s = String::from(
        "## Extension — production-scale multi-tenant harness (admission + adaptive depth)\n",
    );
    s += &format!(
        "  {} arrivals from {} tenants (Zipf skew) over a {}-partition lake, {} workers\n",
        scale.queries, scale.tenants, scale.fact_partitions, workers
    );

    let base_cfg = |adaptive: bool| {
        let mut ec = ExecConfig::default()
            .with_scan_threads(workers)
            .with_prefetch_depth(1)
            .with_tenant_max_concurrent(2)
            .with_admission_queue_cap(30)
            .with_adaptive_prefetch(adaptive)
            .with_prefetch_max_depth(MAX_DEPTH);
        ec.io_cost = lake_model();
        ec
    };

    // ---- leg 1: admitted burst, adaptive depth -----------------------
    let session = Session::new(wl.catalog.clone(), base_cfg(true));
    let run = session.run_admitted(&arrivals);
    let admitted = run.outcomes.iter().filter(|o| o.output().is_some()).count();
    let rejected = run.outcomes.iter().filter(|o| o.is_rejected()).count();
    assert_eq!(admitted + rejected, arrivals.len(), "no query may vanish");
    let adaptive_wall: u64 = run
        .outcomes
        .iter()
        .filter_map(|o| o.output())
        .map(|out| out.io.simulated_wall_ns)
        .sum();
    let mut max_wait = 0u64;
    let mut max_depth_seen = 0usize;
    for t in &run.tenants {
        assert!(
            t.depth_hist.iter().all(|&d| (1..=MAX_DEPTH).contains(&d)),
            "tenant {} depth left [1, {MAX_DEPTH}]: {:?}",
            t.tenant,
            t.depth_hist
        );
        max_depth_seen = max_depth_seen.max(*t.depth_hist.iter().max().unwrap());
        // Starvation bound: a tenant waits at most for its own admitted
        // work, never for the rest of the fleet.
        let own_wall: u64 = run
            .outcomes
            .iter()
            .enumerate()
            .filter(|(i, _)| arrivals[*i].0 == t.tenant)
            .filter_map(|(_, o)| o.output())
            .map(|out| out.io.simulated_wall_ns)
            .sum();
        assert!(
            t.max_queue_wait_ns <= own_wall,
            "tenant {} starved: waited {} ns against {} ns of own work",
            t.tenant,
            t.max_queue_wait_ns,
            own_wall
        );
        max_wait = max_wait.max(t.max_queue_wait_ns);
    }
    s += &format!(
        "  admitted {admitted} / rejected {rejected} (caps: 2 running + 30 queued per tenant)\n"
    );
    s += &format!(
        "  adaptive depth: wall {:>9.2} ms, max depth reached {max_depth_seen}, \
         max tenant queue wait {:.2} ms\n",
        adaptive_wall as f64 / 1e6,
        max_wait as f64 / 1e6,
    );

    // ---- leg 2: identical admission, fixed depth 1 -------------------
    let session1 = Session::new(wl.catalog.clone(), base_cfg(false));
    let run1 = session1.run_admitted(&arrivals);
    let fixed_wall: u64 = run1
        .outcomes
        .iter()
        .filter_map(|o| o.output())
        .map(|out| out.io.simulated_wall_ns)
        .sum();
    s += &format!(
        "  fixed depth 1:  wall {:>9.2} ms  ({:.2}x)\n",
        fixed_wall as f64 / 1e6,
        fixed_wall as f64 / adaptive_wall as f64,
    );
    assert!(
        adaptive_wall < fixed_wall,
        "adaptive depth must beat fixed depth 1 on the I/O-bound mix \
         ({adaptive_wall} ns vs {fixed_wall} ns)"
    );
    for (a, b) in run.outcomes.iter().zip(&run1.outcomes) {
        assert_eq!(
            a.is_rejected(),
            b.is_rejected(),
            "admission decisions depend on arrival order only, never depth"
        );
    }

    // ---- leg 3: sequential oracle ------------------------------------
    let mut oracle_cfg = ExecConfig::default();
    oracle_cfg.io_cost = lake_model();
    let oracle = Executor::new(wl.catalog.clone(), oracle_cfg);
    // Canonical row order: pooled join probes emit matches in completion
    // order (SQL-legal), so the oracle contract is multiset equality.
    let canonical = |mut rows: Vec<Vec<snowprune_types::Value>>| {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.total_ord_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or_else(|| a.len().cmp(&b.len()))
        });
        rows
    };
    let mut checked = 0usize;
    for (i, outcome) in run.outcomes.iter().enumerate() {
        let Admission::Completed(out) = outcome else {
            continue;
        };
        let solo = oracle.run(&arrivals[i].1).expect("oracle run");
        assert_eq!(
            canonical(out.rows.rows.clone()),
            canonical(solo.rows.rows),
            "arrival {i} diverged from the sequential oracle"
        );
        checked += 1;
    }
    s += &format!(
        "  oracle: all {checked} admitted result multisets byte-identical to sequential runs\n"
    );
    s += "  zero starved tenants: every tenant's max queue wait is bounded by its own admitted work\n";

    snap.metric("admitted", admitted as f64, "count");
    snap.metric("rejected", rejected as f64, "count");
    snap.metric("adaptive_wall_ms", adaptive_wall as f64 / 1e6, "ms");
    snap.metric("fixed1_wall_ms", fixed_wall as f64 / 1e6, "ms");
    snap.metric(
        "adaptive_speedup",
        fixed_wall as f64 / adaptive_wall as f64,
        "x",
    );
    snap.metric("max_depth_reached", max_depth_seen as f64, "depth");
    snap.metric("max_queue_wait_ms", max_wait as f64 / 1e6, "ms");
    (s, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_experiment_runs_small() {
        let cfg = ProductionScaleConfig {
            tenants: 12,
            queries: 48,
            fact_partitions: 200,
            rows_per_partition: 8,
            zipf_s: 1.1,
        };
        let s = ext_production_sized(7, &cfg, 4);
        assert!(s.contains("byte-identical to sequential runs"));
        assert!(s.contains("adaptive depth"));
    }
}
