//! Tracked benchmark snapshots: a tiny, dependency-free JSON emitter that
//! the `reproduce` binary uses to persist experiment numbers as
//! `BENCH_<name>.json` files, forming a cross-PR performance trajectory.
//!
//! The vendored `serde` shim is a no-op, so the JSON is written by hand.
//! The schema is deliberately small and documented in
//! `docs/BENCHMARKS.md`:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "vectorized",
//!   "context": { "key": "value", ... },
//!   "metrics": [ { "name": "...", "value": 1.23, "unit": "ms" }, ... ]
//! }
//! ```
//!
//! Snapshots land in the current directory by default; set
//! `SNOWPRUNE_BENCH_DIR` to redirect them (CI points this at an artifact
//! staging directory).

use std::path::PathBuf;

/// One measured quantity within a snapshot.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Metric name, e.g. `cpu_bound_speedup`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label, e.g. `ms`, `x`, `partitions`, `bytes`, `count`.
    pub unit: String,
}

/// A named collection of metrics plus free-form context, serialized as
/// `BENCH_<name>.json`.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Snapshot name; becomes the `BENCH_<name>.json` file name.
    pub name: String,
    /// Key/value context (scale, seed, thread counts, ...), kept in
    /// insertion order.
    pub context: Vec<(String, String)>,
    /// Recorded metrics, in insertion order.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Start an empty snapshot with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Snapshot {
            name: name.into(),
            context: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Append a context key/value pair (builder style).
    pub fn context(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.context.push((key.into(), value.to_string()));
        self
    }

    /// Record one metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: unit.into(),
        });
    }

    /// Render the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += "  \"schema_version\": 1,\n";
        out += &format!("  \"name\": {},\n", json_str(&self.name));
        out += "  \"context\": {";
        for (i, (k, v)) in self.context.iter().enumerate() {
            out += if i == 0 { "\n" } else { ",\n" };
            out += &format!("    {}: {}", json_str(k), json_str(v));
        }
        out += if self.context.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        };
        out += "  \"metrics\": [";
        for (i, m) in self.metrics.iter().enumerate() {
            out += if i == 0 { "\n" } else { ",\n" };
            out += &format!(
                "    {{ \"name\": {}, \"value\": {}, \"unit\": {} }}",
                json_str(&m.name),
                json_num(m.value),
                json_str(&m.unit)
            );
        }
        out += if self.metrics.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        };
        out += "}\n";
        out
    }

    /// Write the snapshot to `bench_dir()/BENCH_<name>.json`, returning
    /// the path written.
    pub fn write_file(&self) -> std::io::Result<PathBuf> {
        let path = bench_dir().join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Directory snapshots are written to: `SNOWPRUNE_BENCH_DIR` if set (the
/// directory is created if missing), otherwise the current directory.
pub fn bench_dir() -> PathBuf {
    match snowprune_types::knobs::path("SNOWPRUNE_BENCH_DIR") {
        Some(dir) if !dir.trim().is_empty() => {
            let p = PathBuf::from(dir);
            let _ = std::fs::create_dir_all(&p);
            p
        }
        _ => PathBuf::from("."),
    }
}

/// JSON string literal with the escapes the snapshot fields can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out += &format!("\\u{:04x}", c as u32),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as-is; non-finite values (which JSON cannot
/// represent) degrade to null.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without a fraction either way; that is
        // valid JSON, so no special casing.
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_shape() {
        let mut snap = Snapshot::new("demo")
            .context("seed", 42)
            .context("mode", "a\"b");
        snap.metric("wall", 1.5, "ms");
        snap.metric("loads", 7.0, "partitions");
        let json = snap.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("\"seed\": \"42\""));
        assert!(json.contains("\"mode\": \"a\\\"b\""));
        assert!(json.contains("{ \"name\": \"wall\", \"value\": 1.5, \"unit\": \"ms\" }"));
        assert!(json.contains("{ \"name\": \"loads\", \"value\": 7, \"unit\": \"partitions\" }"));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let json = Snapshot::new("empty").to_json();
        assert!(json.contains("\"context\": {}"));
        assert!(json.contains("\"metrics\": []"));
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(2.0), "2");
    }
}
