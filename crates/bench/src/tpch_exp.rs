//! Figure 13: TPC-H pruning ratios per query, plus the predicate-cache and
//! ablation extension experiments.

use snowprune_cache::{
    contributing_partitions_topk, CacheEntry, CacheLookup, DmlKind, EntryKind, PredicateCache,
};
use snowprune_core::join::SummaryKind;
use snowprune_exec::{ExecConfig, Executor};
use snowprune_plan::{fingerprint, FingerprintMode, PlanBuilder};
use snowprune_workload::{all_tpch_queries, generate_tpch, TpchConfig};

/// Figure 13: per-query pruning ratios on TPC-H, clustered on
/// `l_shipdate`/`o_orderdate`.
pub fn fig13_tpch(scale: f64, seed: u64) -> String {
    let paper: [f64; 22] = [
        1.0, 0.0, 45.0, 19.0, 16.0, 84.0, 53.0, 13.0, 0.0, 57.0, 0.0, 67.0, 0.0, 96.0, 96.0, 0.0,
        0.0, 0.0, 0.0, 72.0, 4.0, 0.0,
    ];
    let mut s = String::from("## Figure 13 — TPC-H pruning ratios (clustered layout)\n");
    let catalog = generate_tpch(&TpchConfig {
        scale,
        rows_per_partition: 1200,
        clustered: true,
        seed,
    });
    let exec = Executor::new(catalog, ExecConfig::default());
    let mut ratios = Vec::new();
    for (q, plan) in all_tpch_queries() {
        let out = match exec.run(&plan) {
            Ok(o) => o,
            Err(e) => {
                s += &format!("  Q{q:<2} failed: {e}\n");
                continue;
            }
        };
        let r = out.report.pruning.overall_pruning_ratio() * 100.0;
        ratios.push(r);
        s += &format!(
            "  Q{q:<2} pruning {:>5.1}%  (paper {:>4.0}%)  [{} of {} partitions scanned]\n",
            r,
            paper[q - 1],
            out.report.pruning.partitions_scanned,
            out.report.pruning.partitions_total
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let mut sorted = ratios.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    s += &format!("  average {mean:.1}% (paper 28.7%), median {median:.1}% (paper 8.3%)\n");
    s
}

/// Companion: the same queries on the *unclustered* layout, reproducing
/// "no pruning happened with default data clustering".
pub fn fig13_tpch_unclustered(scale: f64, seed: u64) -> String {
    let catalog = generate_tpch(&TpchConfig {
        scale,
        rows_per_partition: 1200,
        clustered: false,
        seed,
    });
    let exec = Executor::new(catalog, ExecConfig::default());
    let mut total = 0.0;
    let mut n = 0;
    for (_, plan) in all_tpch_queries() {
        if let Ok(out) = exec.run(&plan) {
            total += out.report.pruning.filter_ratio();
            n += 1;
        }
    }
    format!(
        "## Figure 13 companion — unclustered TPC-H: mean filter pruning {:.1}% (paper: ~0%)\n",
        total / n.max(1) as f64 * 100.0
    )
}

/// §8.2: predicate caching for top-k vs pruning, including DML rules.
pub fn ext_cache(seed: u64) -> String {
    use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
    use snowprune_types::{ScalarType, Value};
    let mut s = String::from("## §8.2 — predicate caching for top-k queries\n");
    for (label, layout) in [
        ("clustered", Layout::ClusterBy(vec!["v".into()])),
        ("shuffled ", Layout::Shuffle(seed)),
    ] {
        let schema = Schema::new(vec![
            Field::new("v", ScalarType::Int),
            Field::new("payload", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema.clone())
            .target_rows_per_partition(500)
            .layout(layout);
        for i in 0..50_000i64 {
            b.push_row(vec![Value::Int((i * 37) % 100_000), Value::Int(i)]);
        }
        let table = b.build();
        let catalog = Catalog::new();
        let handle = catalog.register(table);
        let plan = PlanBuilder::scan("t", schema)
            .order_by("v", true)
            .limit(10)
            .build();
        // Pruning-based execution.
        let exec = Executor::new(catalog.clone(), ExecConfig::default());
        let pruned = exec.run(&plan).unwrap();
        // Cache-based execution: replay exactly the contributing partitions.
        let mut cache = PredicateCache::new(16);
        let fp = fingerprint(&plan, FingerprintMode::Exact);
        let contributing = {
            let t = handle.read();
            contributing_partitions_topk(&t, None, "v", 10, true).unwrap()
        };
        cache.insert(
            fp,
            CacheEntry {
                kind: EntryKind::TopK {
                    order_column: "v".into(),
                },
                table: "t".into(),
                partitions: contributing.clone(),
                table_version: handle.read().version(),
                appended: Vec::new(),
            },
        );
        let cached_parts = match cache.lookup(fp) {
            CacheLookup::Hit(p) => p.len(),
            CacheLookup::Miss => 0,
        };
        s += &format!(
            "  {label} layout: pruning loads {:>3} partitions; perfect cache replays {:>3} (of {})\n",
            pruned.io.partitions_loaded,
            cached_parts,
            pruned.report.pruning.partitions_total,
        );
        // DML rules: INSERT keeps the entry (appending), DELETE kills it.
        let res = handle
            .write()
            .insert_rows(vec![vec![Value::Int(999_999), Value::Int(-1)]]);
        cache.on_dml("t", &DmlKind::Insert, &res);
        let after_insert = matches!(cache.lookup(fp), CacheLookup::Hit(_));
        let res = handle
            .write()
            .delete_rows(|row| row[0] == Value::Int(999_999));
        cache.on_dml("t", &DmlKind::Delete, &res);
        let after_delete = matches!(cache.lookup(fp), CacheLookup::Hit(_));
        s += &format!(
            "    DML rules: entry survives INSERT = {after_insert}, survives DELETE = {after_delete}\n"
        );
    }
    s += "  paper: caching wins on shuffled layouts, pruning wins on sorted ones; combine both\n";
    s
}

/// Ablations called out in DESIGN.md: join summary sweep and top-k
/// boundary-initialization on/off.
pub fn ablations(seed: u64) -> String {
    let mut s = String::from("## Ablations\n");
    // Join summary fidelity sweep.
    let wl = crate::experiments::harness_workload(300, seed);
    for (label, kind) in [
        ("minmax summary", SummaryKind::MinMax),
        ("range-set 16", SummaryKind::RangeSet { budget: 16 }),
        ("range-set 128", SummaryKind::RangeSet { budget: 128 }),
        ("exact set", SummaryKind::Exact),
    ] {
        let mut cfg = ExecConfig::default();
        cfg.join_summary = kind;
        let exec = Executor::new(wl.catalog.clone(), cfg);
        let mut pruned = 0u64;
        let mut bytes = 0u64;
        let mut n = 0u64;
        for q in &wl.queries {
            if !matches!(q.kind, snowprune_workload::QueryKind::Join) {
                continue;
            }
            if let Ok(out) = exec.run(&q.plan) {
                pruned += out.report.pruning.pruned_by_join;
                bytes += out.report.join_summary_bytes;
                n += 1;
            }
        }
        s += &format!(
            "  {label:<16} partitions pruned {:>6} summary bytes/query {:>8} (n={n})\n",
            pruned,
            bytes / n.max(1)
        );
    }
    // Top-k boundary initialization on/off. Measured under a random
    // processing order, where a seeded boundary matters most (§5.4:
    // "enabling pruning from the very first partition").
    for init in [false, true] {
        let mut cfg = ExecConfig::default();
        cfg.topk_order = snowprune_core::topk::PartitionOrder::Random { seed: 42 };
        cfg.topk_init_boundary = init;
        let exec = Executor::new(wl.catalog.clone(), cfg);
        let mut skipped = 0u64;
        let mut considered = 0u64;
        for q in &wl.queries {
            if !matches!(q.kind, snowprune_workload::QueryKind::TopK) {
                continue;
            }
            if let Ok(out) = exec.run(&q.plan) {
                skipped += out.report.topk_stats.partitions_skipped;
                considered += out.report.topk_stats.partitions_considered;
            }
        }
        s += &format!("  topk init_boundary={init:<5} skipped {skipped:>6} of {considered}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tpch_tiny_runs() {
        let s = super::fig13_tpch(0.002, 1);
        assert!(s.contains("Q1 "), "{s}");
        assert!(s.contains("average"));
    }

    #[test]
    fn cache_experiment_runs() {
        let s = super::ext_cache(5);
        assert!(s.contains("survives INSERT = true"), "{s}");
        assert!(s.contains("survives DELETE = false"), "{s}");
    }
}
