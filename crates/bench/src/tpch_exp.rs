//! Figure 13: TPC-H pruning ratios per query, plus the predicate-cache and
//! ablation extension experiments.

use snowprune_core::join::SummaryKind;
use snowprune_exec::{CacheOutcome, ExecConfig, Executor, Session};
use snowprune_plan::PlanBuilder;
use snowprune_workload::{all_tpch_queries, generate_tpch, TpchConfig};

/// Figure 13: per-query pruning ratios on TPC-H, clustered on
/// `l_shipdate`/`o_orderdate`.
pub fn fig13_tpch(scale: f64, seed: u64) -> String {
    let paper: [f64; 22] = [
        1.0, 0.0, 45.0, 19.0, 16.0, 84.0, 53.0, 13.0, 0.0, 57.0, 0.0, 67.0, 0.0, 96.0, 96.0, 0.0,
        0.0, 0.0, 0.0, 72.0, 4.0, 0.0,
    ];
    let mut s = String::from("## Figure 13 — TPC-H pruning ratios (clustered layout)\n");
    let catalog = generate_tpch(&TpchConfig {
        scale,
        rows_per_partition: 1200,
        clustered: true,
        seed,
    });
    let exec = Executor::new(catalog, ExecConfig::default());
    let mut ratios = Vec::new();
    for (q, plan) in all_tpch_queries() {
        let out = match exec.run(&plan) {
            Ok(o) => o,
            Err(e) => {
                s += &format!("  Q{q:<2} failed: {e}\n");
                continue;
            }
        };
        let r = out.report.pruning.overall_pruning_ratio() * 100.0;
        ratios.push(r);
        s += &format!(
            "  Q{q:<2} pruning {:>5.1}%  (paper {:>4.0}%)  [{} of {} partitions scanned]\n",
            r,
            paper[q - 1],
            out.report.pruning.partitions_scanned,
            out.report.pruning.partitions_total
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let mut sorted = ratios.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    s += &format!("  average {mean:.1}% (paper 28.7%), median {median:.1}% (paper 8.3%)\n");
    s
}

/// Companion: the same queries on the *unclustered* layout, reproducing
/// "no pruning happened with default data clustering".
pub fn fig13_tpch_unclustered(scale: f64, seed: u64) -> String {
    let catalog = generate_tpch(&TpchConfig {
        scale,
        rows_per_partition: 1200,
        clustered: false,
        seed,
    });
    let exec = Executor::new(catalog, ExecConfig::default());
    let mut total = 0.0;
    let mut n = 0;
    for (_, plan) in all_tpch_queries() {
        if let Ok(out) = exec.run(&plan) {
            total += out.report.pruning.filter_ratio();
            n += 1;
        }
    }
    format!(
        "## Figure 13 companion — unclustered TPC-H: mean filter pruning {:.1}% (paper: ~0%)\n",
        total / n.max(1) as f64 * 100.0
    )
}

/// §8.2: the predicate cache wired into the engine — cold miss records the
/// contributing partitions during execution, warm replay restricts the
/// scan set before morsel generation, and DML routed through the
/// [`Session`] keeps entries consistent. Every claim in the report is
/// asserted: warm rows are byte-identical to cold, the shuffled-layout
/// warm replay loads *strictly fewer* partitions, INSERT keeps the entry
/// (appending the new partitions), DELETE invalidates it.
pub fn ext_cache(seed: u64) -> String {
    ext_cache_snap(seed).0
}

/// Like [`ext_cache`], additionally returning the cold/warm partition
/// loads as a tracked [`crate::snapshot::Snapshot`] for
/// `BENCH_cache.json`. The counters are deterministic, so the snapshot is
/// exact rather than sampled.
pub fn ext_cache_snap(seed: u64) -> (String, crate::snapshot::Snapshot) {
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
    use snowprune_types::{ScalarType, Value};
    let mut snap = crate::snapshot::Snapshot::new("cache").context("seed", seed);
    let mut s = String::from("## §8.2 — predicate caching wired into the engine\n");
    for (label, layout) in [
        ("clustered", Layout::ClusterBy(vec!["v".into()])),
        ("shuffled ", Layout::Shuffle(seed)),
    ] {
        let schema = Schema::new(vec![
            Field::new("v", ScalarType::Int),
            Field::new("payload", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema.clone())
            .target_rows_per_partition(500)
            .layout(layout);
        for i in 0..50_000i64 {
            b.push_row(vec![Value::Int((i * 37) % 100_000), Value::Int(i)]);
        }
        let catalog = Catalog::new();
        catalog.register(b.build());
        let session = Session::new(
            catalog.clone(),
            ExecConfig::default().with_predicate_cache(true),
        );
        let topk = PlanBuilder::scan("t", schema.clone())
            .order_by("v", true)
            .limit(10)
            .build();
        // Cold run misses and records; warm run replays the cached set.
        // Under the full §5 machinery (boundary-sorted order + upfront
        // boundary) top-k pruning is already near-optimal, so the cache
        // must only match it — "pruning wins on sorted ones".
        let cold = session.run(&topk).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let warm = session.run(&topk).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.rows.rows, cold.rows.rows, "warm top-k not identical");
        assert!(
            warm.io.partitions_loaded <= cold.io.partitions_loaded,
            "warm replay loaded more than cold"
        );
        s += &format!(
            "  {label} top-k (full pruning): cold loads {:>3} partitions, warm replays {:>3} (of {}; {:>3} dropped by cache)\n",
            cold.io.partitions_loaded,
            warm.io.partitions_loaded,
            cold.report.pruning.partitions_total,
            warm.report.pruned_by_cache,
        );
        let metric_label = label.trim();
        snap.metric(
            format!("{metric_label}_topk_cold_loads"),
            cold.io.partitions_loaded as f64,
            "partitions",
        );
        snap.metric(
            format!("{metric_label}_topk_warm_loads"),
            warm.io.partitions_loaded as f64,
            "partitions",
        );
        // Top-k where boundary pruning is weak (random partition order, no
        // upfront boundary — the paper's "no sorting" baseline): the warm
        // replay must load *strictly fewer* partitions.
        let mut weak_cfg = ExecConfig::default().with_predicate_cache(true);
        weak_cfg.topk_order = snowprune_core::topk::PartitionOrder::Random { seed: seed ^ 7 };
        weak_cfg.topk_init_boundary = false;
        let weak = Session::new(catalog.clone(), weak_cfg);
        let cold_w = weak.run(&topk).unwrap();
        let warm_w = weak.run(&topk).unwrap();
        assert_eq!(warm_w.report.cache, CacheOutcome::Hit);
        assert_eq!(
            warm_w.rows.rows, cold_w.rows.rows,
            "weak warm not identical"
        );
        assert!(
            warm_w.io.partitions_loaded < cold_w.io.partitions_loaded,
            "weak-pruning warm replay must load strictly fewer partitions \
             ({} vs {})",
            warm_w.io.partitions_loaded,
            cold_w.io.partitions_loaded,
        );
        s += &format!(
            "  {label} top-k (weak pruning): cold loads {:>3} partitions, warm replays {:>3}\n",
            cold_w.io.partitions_loaded, warm_w.io.partitions_loaded,
        );
        snap.metric(
            format!("{metric_label}_weak_topk_cold_loads"),
            cold_w.io.partitions_loaded as f64,
            "partitions",
        );
        snap.metric(
            format!("{metric_label}_weak_topk_warm_loads"),
            warm_w.io.partitions_loaded as f64,
            "partitions",
        );
        // Filter shape on a column no layout clusters: zone maps cannot
        // prune it, the cache replays exactly the surviving partitions —
        // strictly fewer loads with byte-identical rows.
        let filt = PlanBuilder::scan("t", schema.clone())
            .filter(col("payload").between(lit(25_000i64), lit(25_004i64)))
            .build();
        let cold_f = session.run(&filt).unwrap();
        let warm_f = session.run(&filt).unwrap();
        assert_eq!(warm_f.report.cache, CacheOutcome::Hit);
        assert_eq!(
            warm_f.rows.rows, cold_f.rows.rows,
            "warm filter not identical"
        );
        assert!(
            warm_f.io.partitions_loaded < cold_f.io.partitions_loaded,
            "filter warm replay must load strictly fewer partitions"
        );
        s += &format!(
            "  {label} filter (uncl. column): cold loads {:>3} partitions, warm replays {:>3}\n",
            cold_f.io.partitions_loaded, warm_f.io.partitions_loaded,
        );
        snap.metric(
            format!("{metric_label}_filter_cold_loads"),
            cold_f.io.partitions_loaded as f64,
            "partitions",
        );
        snap.metric(
            format!("{metric_label}_filter_warm_loads"),
            warm_f.io.partitions_loaded as f64,
            "partitions",
        );
        // DML rules, routed through the session so the cache stays
        // consistent: INSERT appends (the new top-1 row must surface on a
        // *hit*), DELETE invalidates top-k entries.
        session
            .insert_rows("t", vec![vec![Value::Int(1_000_000), Value::Int(-1)]])
            .unwrap();
        let after_insert = session.run(&topk).unwrap();
        assert_eq!(after_insert.report.cache, CacheOutcome::Hit);
        assert_eq!(
            after_insert.rows.rows[0][0],
            Value::Int(1_000_000),
            "appended partition must replay"
        );
        let oracle = Executor::new(catalog.clone(), ExecConfig::default())
            .run(&topk)
            .unwrap();
        assert_eq!(after_insert.rows.rows, oracle.rows.rows);
        session
            .delete_rows("t", |row| row[0] == Value::Int(1_000_000))
            .unwrap();
        let after_delete = session.run(&topk).unwrap();
        assert_eq!(
            after_delete.report.cache,
            CacheOutcome::Miss,
            "DELETE must invalidate the top-k entry"
        );
        assert_eq!(after_delete.rows.rows, cold.rows.rows);
        let stats = session.cache_stats();
        s += &format!(
            "    DML rules: INSERT appended (still a hit), DELETE invalidated; \
             hits {} misses {} insertions {} invalidations {}\n",
            stats.hits, stats.misses, stats.insertions, stats.invalidations,
        );
        // Shape-mode fingerprints: a narrowed literal range (different
        // exact fingerprint) misses in exact mode but is served by
        // subsumption in shape mode — byte-identical to a cold no-pruning
        // oracle, never loading more partitions.
        let narrow_filter = PlanBuilder::scan("t", schema.clone())
            .filter(col("payload").between(lit(25_001i64), lit(25_003i64)))
            .build();
        let narrow_topk = PlanBuilder::scan("t", schema.clone())
            .order_by("v", true)
            .limit(4)
            .build();
        for (mode, mode_label) in [
            (snowprune_exec::PredicateCacheMode::Exact, "exact"),
            (snowprune_exec::PredicateCacheMode::Shape, "shape"),
        ] {
            let session = Session::new(
                catalog.clone(),
                ExecConfig::default()
                    .with_predicate_cache(true)
                    .with_predicate_cache_mode(mode),
            );
            // Record the wide shapes cold, then replay narrowed.
            assert_eq!(session.run(&filt).unwrap().report.cache, CacheOutcome::Miss);
            assert_eq!(session.run(&topk).unwrap().report.cache, CacheOutcome::Miss);
            let warm_filter = session.run(&narrow_filter).unwrap();
            let warm_topk = session.run(&narrow_topk).unwrap();
            let oracle = Executor::new(catalog.clone(), ExecConfig::no_pruning());
            let oracle_filter = oracle.run(&narrow_filter).unwrap();
            let oracle_topk = oracle.run(&narrow_topk).unwrap();
            let sort = |rows: &[Vec<Value>]| {
                let mut rows = rows.to_vec();
                rows.sort_by(|a, b| a[1].total_ord_cmp(&b[1]));
                rows
            };
            assert_eq!(
                sort(&warm_filter.rows.rows),
                sort(&oracle_filter.rows.rows),
                "narrowed filter diverged from the cold no-pruning oracle"
            );
            assert_eq!(
                warm_topk.rows.rows, oracle_topk.rows.rows,
                "narrowed top-k diverged from the cold no-pruning oracle"
            );
            let stats = session.cache_stats();
            match mode {
                snowprune_exec::PredicateCacheMode::Exact => {
                    assert_eq!(warm_filter.report.cache, CacheOutcome::Miss);
                    assert_eq!(warm_topk.report.cache, CacheOutcome::Miss);
                    assert_eq!(stats.shape_hits, 0);
                }
                snowprune_exec::PredicateCacheMode::Shape => {
                    assert_eq!(
                        warm_filter.report.cache,
                        CacheOutcome::ShapeHit,
                        "BETWEEN 25001 AND 25003 must be served by the \
                         BETWEEN 25000 AND 25004 entry"
                    );
                    assert_eq!(
                        warm_topk.report.cache,
                        CacheOutcome::ShapeHit,
                        "LIMIT 4 must be served by the LIMIT 10 entry"
                    );
                    assert!(stats.shape_hits > 0, "shape mode must record shape hits");
                    assert!(warm_filter.io.partitions_loaded <= oracle_filter.io.partitions_loaded);
                }
            }
            s += &format!(
                "    {label} {mode_label} mode: narrowed filter {}, narrowed top-k {} \
                 (shape_hits {}, subsumption_rejections {}, evictions {})\n",
                outcome_label(warm_filter.report.cache),
                outcome_label(warm_topk.report.cache),
                stats.shape_hits,
                stats.subsumption_rejections,
                stats.evictions,
            );
        }
    }
    s += "  paper: caching wins on shuffled layouts, pruning wins on sorted ones; combine both\n";
    (s, snap)
}

fn outcome_label(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::NotConsulted => "not consulted",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Hit => "exact hit",
        CacheOutcome::ShapeHit => "SHAPE HIT",
    }
}

/// Ablations called out in DESIGN.md: join summary sweep and top-k
/// boundary-initialization on/off.
pub fn ablations(seed: u64) -> String {
    let mut s = String::from("## Ablations\n");
    // Join summary fidelity sweep.
    let wl = crate::experiments::harness_workload(300, seed);
    for (label, kind) in [
        ("minmax summary", SummaryKind::MinMax),
        ("range-set 16", SummaryKind::RangeSet { budget: 16 }),
        ("range-set 128", SummaryKind::RangeSet { budget: 128 }),
        ("exact set", SummaryKind::Exact),
    ] {
        let mut cfg = ExecConfig::default();
        cfg.join_summary = kind;
        let exec = Executor::new(wl.catalog.clone(), cfg);
        let mut pruned = 0u64;
        let mut bytes = 0u64;
        let mut n = 0u64;
        for q in &wl.queries {
            if !matches!(q.kind, snowprune_workload::QueryKind::Join) {
                continue;
            }
            if let Ok(out) = exec.run(&q.plan) {
                pruned += out.report.pruning.pruned_by_join;
                bytes += out.report.join_summary_bytes;
                n += 1;
            }
        }
        s += &format!(
            "  {label:<16} partitions pruned {:>6} summary bytes/query {:>8} (n={n})\n",
            pruned,
            bytes / n.max(1)
        );
    }
    // Top-k boundary initialization on/off. Measured under a random
    // processing order, where a seeded boundary matters most (§5.4:
    // "enabling pruning from the very first partition").
    for init in [false, true] {
        let mut cfg = ExecConfig::default();
        cfg.topk_order = snowprune_core::topk::PartitionOrder::Random { seed: 42 };
        cfg.topk_init_boundary = init;
        let exec = Executor::new(wl.catalog.clone(), cfg);
        let mut skipped = 0u64;
        let mut considered = 0u64;
        for q in &wl.queries {
            if !matches!(q.kind, snowprune_workload::QueryKind::TopK) {
                continue;
            }
            if let Ok(out) = exec.run(&q.plan) {
                skipped += out.report.topk_stats.partitions_skipped;
                considered += out.report.topk_stats.partitions_considered;
            }
        }
        s += &format!("  topk init_boundary={init:<5} skipped {skipped:>6} of {considered}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tpch_tiny_runs() {
        let s = super::fig13_tpch(0.002, 1);
        assert!(s.contains("Q1 "), "{s}");
        assert!(s.contains("average"));
    }

    #[test]
    fn cache_experiment_runs() {
        // The experiment asserts its own claims (byte-identical warm rows,
        // strictly fewer shuffled warm loads, INSERT append, DELETE
        // invalidation) — reaching the report text means they all held.
        let s = super::ext_cache(5);
        assert!(s.contains("warm replays"), "{s}");
        assert!(s.contains("DELETE invalidated"), "{s}");
    }
}
