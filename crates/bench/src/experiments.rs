//! Experiment runners: one per table/figure in the paper's evaluation.
//! Each returns a plain-text report section with paper-vs-measured rows.

use snowprune_core::topk::PartitionOrder;
use snowprune_core::{LimitOutcome, TechniqueSet, UnsupportedReason};
use snowprune_exec::{ExecConfig, Executor, QueryOutput};
use snowprune_workload::{
    classify_workload, generate, occurrence_histogram, repetition_shape_ids, sample_k, QueryKind,
    SqlClass, WorkloadConfig,
};

use crate::report::{cdf_table, share, summarize};

/// Standard workload size for the harness (kept laptop-friendly).
pub fn harness_workload(queries: usize, seed: u64) -> snowprune_workload::ProductionWorkload {
    generate(
        &WorkloadConfig {
            queries,
            rows_per_partition: 400,
            fact_partitions: 60,
        },
        seed,
    )
}

/// Run every query with the default (all-pruning) configuration.
pub fn run_workload(wl: &snowprune_workload::ProductionWorkload) -> Vec<(QueryKind, QueryOutput)> {
    let exec = Executor::new(wl.catalog.clone(), ExecConfig::default());
    wl.queries
        .iter()
        .filter_map(|q| exec.run(&q.plan).ok().map(|o| (q.kind, o)))
        .collect()
}

/// Figure 1: pruning-ratio distributions per technique over eligible
/// queries.
pub fn fig01_overview(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let runs = run_workload(&wl);
    let mut filter = Vec::new();
    let mut limit = Vec::new();
    let mut topk = Vec::new();
    let mut join = Vec::new();
    for (_, out) in &runs {
        let p = &out.report.pruning;
        if p.filter_eligible && p.partitions_total > 0 {
            filter.push(p.filter_ratio());
        }
        if matches!(
            out.report.limit_outcome,
            Some(LimitOutcome::PrunedToOne | LimitOutcome::PrunedToMany(_))
        ) {
            limit.push(p.limit_ratio());
        }
        if out.report.topk_stats.partitions_considered > 0 && p.topk_eligible {
            topk.push(out.report.topk_stats.pruning_ratio());
        }
        if p.join_eligible && p.pruned_by_join > 0 {
            join.push(p.join_ratio());
        }
    }
    let mut s = String::from("## Figure 1 — pruning ratios per technique (eligible queries)\n");
    s += &format!("{}\n", summarize(&filter).row("filter"));
    s += &format!("{}\n", summarize(&limit).row("limit"));
    s += &format!("{}\n", summarize(&topk).row("top-k"));
    s += &format!("{}\n", summarize(&join).row("join"));
    s +=
        "paper: filter ~99% for applicable, limit 70%, top-k 77%, join 79% (means over eligible)\n";
    s
}

/// Figure 4: CDF of filter pruning ratio for SELECTs with ≥1 predicate.
pub fn fig04_filter_cdf(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let runs = run_workload(&wl);
    let ratios: Vec<f64> = runs
        .iter()
        .filter(|(kind, out)| {
            out.report.pruning.filter_eligible
                && !matches!(kind, QueryKind::FullScan)
                && out.report.pruning.partitions_total > 0
        })
        .map(|(_, out)| out.report.pruning.filter_ratio())
        .collect();
    let mut s = String::from("## Figure 4 — filter pruning CDF (queries with predicates)\n");
    for (p, v) in cdf_table(&ratios, &[0.1, 0.25, 0.5, 0.75, 0.9]) {
        s += &format!("  P{:>2.0}: {:>6.1}%\n", p * 100.0, v * 100.0);
    }
    s += &format!(
        "  share pruning >=90%: {:.1}% (paper: ~36%)\n",
        share(&ratios, |r| r >= 0.9) * 100.0
    );
    s += &format!(
        "  share pruning == 0%: {:.1}% (paper: ~27%)\n",
        share(&ratios, |r| r == 0.0) * 100.0
    );
    s
}

/// Table 1: query-type frequencies via SQL-text pattern matching.
pub fn tab1_query_mix(queries: usize, seed: u64) -> String {
    let wl = generate(
        &WorkloadConfig {
            queries,
            rows_per_partition: 50,
            fact_partitions: 4,
        },
        seed,
    );
    let shares = classify_workload(wl.queries.iter().map(|q| q.sql.as_str()));
    let get = |c: SqlClass| {
        shares
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, v)| *v * 100.0)
            .unwrap_or(0.0)
    };
    let mut s = String::from("## Table 1 — LIMIT/top-k query mix (measured vs paper)\n");
    s += &format!(
        "  LIMIT w/o predicate : {:>5.2}%  (paper 0.37%)\n",
        get(SqlClass::LimitNoPredicate)
    );
    s += &format!(
        "  LIMIT w/ predicate  : {:>5.2}%  (paper 2.23%)\n",
        get(SqlClass::LimitWithPredicate)
    );
    s += &format!(
        "  ORDER BY x LIMIT k  : {:>5.2}%  (paper 4.47%)\n",
        get(SqlClass::OrderByLimit)
    );
    s += &format!(
        "  GROUP/ORDER key     : {:>5.2}%  (paper 0.12%)\n",
        get(SqlClass::GroupByOrderByKeyLimit)
    );
    s += &format!(
        "  GROUP/ORDER agg     : {:>5.2}%  (paper 0.96%)\n",
        get(SqlClass::GroupByOrderByAggLimit)
    );
    s
}

/// Figure 6: CDF of k in LIMIT clauses.
pub fn fig06_k_cdf(samples: usize, seed: u64) -> String {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let ks: Vec<u64> = (0..samples)
        .map(|_| sample_k(&mut rng, true))
        .filter(|&k| k > 0)
        .collect();
    let anchor = |t: u64| snowprune_workload::cdf_at(&ks, t) * 100.0;
    let mut s = String::from("## Figure 6 — CDF of k in LIMIT clauses (k > 0)\n");
    for t in [1u64, 10, 100, 1_000, 10_000, 100_000, 2_000_000] {
        s += &format!("  P(k <= {t:>9}) = {:>5.1}%\n", anchor(t));
    }
    s += "  paper anchors: P(k<=10000) = 97%, P(k<=2000000) = 99.9%\n";
    s
}

/// Table 2: LIMIT pruning applicability breakdown.
pub fn tab2_limit_breakdown(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let exec = Executor::new(wl.catalog.clone(), ExecConfig::default());
    #[derive(Default, Clone, Copy)]
    struct Counts {
        minimal: u64,
        unsupported: u64,
        to_one: u64,
        to_many: u64,
        total: u64,
    }
    let mut with_pred = Counts::default();
    let mut without_pred = Counts::default();
    for q in &wl.queries {
        let bucket = match q.kind {
            QueryKind::LimitNoPredicate => &mut without_pred,
            QueryKind::LimitWithPredicate => &mut with_pred,
            _ => continue,
        };
        let Ok(out) = exec.run(&q.plan) else { continue };
        bucket.total += 1;
        match out.report.limit_outcome {
            Some(LimitOutcome::AlreadyMinimal) => bucket.minimal += 1,
            Some(LimitOutcome::Unsupported(UnsupportedReason::PlanShape))
            | Some(LimitOutcome::Unsupported(UnsupportedReason::InsufficientFullyMatching))
            | None => bucket.unsupported += 1,
            Some(LimitOutcome::PrunedToOne) => bucket.to_one += 1,
            Some(LimitOutcome::PrunedToMany(_)) => bucket.to_many += 1,
        }
    }
    let row = |c: &Counts, label: &str| -> String {
        if c.total == 0 {
            return format!("  {label:<22} (no samples)\n");
        }
        let pct = |x: u64| x as f64 / c.total as f64 * 100.0;
        format!(
            "  {label:<22} minimal={:>5.1}% unsupported={:>5.1}% ->1={:>5.1}% ->many={:>5.1}% (n={})\n",
            pct(c.minimal),
            pct(c.unsupported),
            pct(c.to_one),
            pct(c.to_many),
            c.total
        )
    };
    let mut s = String::from("## Table 2 — LIMIT pruning applicability\n");
    s += &row(&without_pred, "without predicate");
    s += &row(&with_pred, "with predicate");
    s += "  paper: w/o pred: 79.6/1.7/16.6/1.5; w/ pred: 61.7/36.2/1.7/0.0\n";
    s
}

/// Figure 8: influence of partition processing order on top-k pruning.
pub fn fig08_topk_sorting(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let mut rows = String::from("## Figure 8 — top-k pruning ratio by partition order\n");
    for (label, order) in [
        ("no sorting (random)", PartitionOrder::Random { seed: 99 }),
        ("full sort", PartitionOrder::ByBoundary),
        ("fm-first (ext.)", PartitionOrder::FullyMatchingFirst),
    ] {
        let mut cfg = ExecConfig::default();
        cfg.topk_order = order;
        cfg.topk_init_boundary = false; // isolate the ordering effect
        let exec = Executor::new(wl.catalog.clone(), cfg);
        let mut ratios = Vec::new();
        for q in &wl.queries {
            if !matches!(q.kind, QueryKind::TopK | QueryKind::TopKGroupByKey) {
                continue;
            }
            let Ok(out) = exec.run(&q.plan) else { continue };
            let st = out.report.topk_stats;
            if st.partitions_considered > 0 {
                ratios.push(st.pruning_ratio());
            }
        }
        rows += &format!("{}\n", summarize(&ratios).row(label));
    }
    rows += "paper: full sort clearly dominates random order (better median and tails)\n";
    rows
}

/// Figure 9: top-k pruning ratio and runtime change, bucketed by baseline
/// runtime.
pub fn fig09_topk_impact(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let pruned_exec = Executor::new(wl.catalog.clone(), ExecConfig::default());
    let base_exec = Executor::new(wl.catalog.clone(), ExecConfig::no_pruning());
    // Collect samples, then bucket by baseline simulated I/O terciles
    // (the wall-time stand-in for the paper's 1s/10s/60s buckets).
    let mut samples: Vec<(u64, f64, f64)> = Vec::new();
    for q in &wl.queries {
        if !matches!(q.kind, QueryKind::TopK) {
            continue;
        }
        let (Ok(p), Ok(b)) = (pruned_exec.run(&q.plan), base_exec.run(&q.plan)) else {
            continue;
        };
        let st = p.report.topk_stats;
        if st.partitions_skipped == 0 {
            continue; // "successfully applied" only, as in the paper
        }
        let ratio = st.pruning_ratio();
        let runtime_change = if b.io.simulated_io_ns > 0 {
            (p.io.simulated_io_ns as f64 - b.io.simulated_io_ns as f64)
                / b.io.simulated_io_ns as f64
        } else {
            0.0
        };
        samples.push((b.io.simulated_io_ns, ratio, runtime_change));
    }
    samples.sort_by_key(|(io, _, _)| *io);
    let n = samples.len();
    let mut buckets: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        ("fast baseline", Vec::new(), Vec::new()),
        ("mid baseline ", Vec::new(), Vec::new()),
        ("slow baseline", Vec::new(), Vec::new()),
    ];
    for (i, (_, ratio, change)) in samples.into_iter().enumerate() {
        let b = if n == 0 { 0 } else { (i * 3 / n.max(1)).min(2) };
        buckets[b].1.push(ratio);
        buckets[b].2.push(change);
    }
    let mut s =
        String::from("## Figure 9 — top-k pruning ratio and runtime change by baseline size\n");
    for (label, ratios, changes) in &buckets {
        s += &format!("{}\n", summarize(ratios).row(&format!("{label} ratio")));
        s += &format!("{}\n", summarize(changes).row(&format!("{label} dI/O")));
    }
    s += "paper: pruning-ratio and runtime-improvement CDFs track each other; avg ratio ~77%\n";
    s
}

/// Figure 10: CDF of join pruning ratio.
pub fn fig10_join_cdf(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let runs = run_workload(&wl);
    let ratios: Vec<f64> = runs
        .iter()
        .filter(|(kind, out)| {
            matches!(kind, QueryKind::Join) && out.report.pruning.pruned_by_join > 0
        })
        .map(|(_, out)| out.report.pruning.join_ratio())
        .collect();
    let mut s = String::from("## Figure 10 — join pruning ratio CDF (applied queries)\n");
    for (p, v) in cdf_table(&ratios, &[0.1, 0.25, 0.5, 0.75, 0.9]) {
        s += &format!("  P{:>2.0}: {:>6.1}%\n", p * 100.0, v * 100.0);
    }
    s += &format!(
        "  share at 100%: {:.1}% (paper ~13%); median (paper >=72%)\n",
        share(&ratios, |r| r >= 0.999) * 100.0
    );
    s
}

/// Figure 11: share of queries per technique combination.
pub fn fig11_flow(queries: usize, seed: u64) -> String {
    let wl = harness_workload(queries, seed);
    let runs = run_workload(&wl);
    let mut agg = snowprune_core::FlowAggregator::new();
    for (_, out) in &runs {
        agg.add(&out.report.pruning);
    }
    let mut s = String::from("## Figure 11 — technique-combination shares\n");
    for (label, frac) in agg.combination_shares() {
        s += &format!("  {label:<24} {:>6.2}%\n", frac * 100.0);
    }
    s += &format!(
        "  share using filter: {:.1}% (paper 58.7%); overall partition pruning ratio: {:.2}% (paper 99.4%)\n",
        agg.share_using(TechniqueSet::FILTER) * 100.0,
        agg.overall_pruning_ratio() * 100.0
    );
    s
}

/// Figure 12: repetitiveness of top-k plan shapes.
pub fn fig12_repetitiveness(seed: u64) -> String {
    let mut s = String::from("## Figure 12 — repetitiveness of top-k plan shapes\n");
    for (label, n, paper) in [
        ("3 days", 3000usize, "85/9/3/1/1/2"),
        ("1 month", 30_000, "87/8/2/1/0/2"),
    ] {
        let ids = repetition_shape_ids(n, seed);
        let hist = occurrence_histogram(&ids);
        let cells: Vec<String> = hist
            .iter()
            .map(|(b, v)| format!("{b}:{:.0}%", v * 100.0))
            .collect();
        s += &format!("  {label:<8} {} (paper {paper})\n", cells.join(" "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiments_run() {
        // Smoke-test the cheap experiments end to end.
        let s = fig06_k_cdf(5000, 3);
        assert!(s.contains("Figure 6"));
        let s = fig12_repetitiveness(4);
        assert!(s.contains("3 days"));
        let s = tab1_query_mix(800, 5);
        assert!(s.contains("Table 1"));
    }

    #[test]
    fn workload_experiments_run_small() {
        let s = fig01_overview(60, 11);
        assert!(s.contains("filter"));
        let s = fig11_flow(60, 11);
        assert!(s.contains("technique-combination"));
    }
}
