#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::field_reassign_with_default)] // config tweak idiom

//! `snowprune-bench`: the reproduction harness (one runner per table and
//! figure in the paper) plus Criterion benches. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded results.

pub mod experiments;
pub mod joinagg_exp;
pub mod pool_exp;
pub mod prefetch_exp;
pub mod production_exp;
pub mod report;
pub mod snapshot;
pub mod tpch_exp;
pub mod vector_exp;
