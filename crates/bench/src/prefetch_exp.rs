//! Extension experiment: the async prefetch pipeline — overlapping
//! simulated object-store GETs with predicate evaluation, and cancelling
//! in-flight loads that runtime pruning makes obsolete.
//!
//! Two legs, both sweeping `prefetch_depth ∈ {1, 2, 4, 8}` on the
//! deterministic virtual clock (the numbers are exact, not sampled):
//!
//! * **I/O-bound burst** — wide filtered scans where the partition set is
//!   fixed at compile time. Depth changes only the overlap: simulated
//!   wall-clock falls from the blocking `io + cpu` toward `max(io, cpu)`
//!   per lane, while `bytes_loaded` stays exactly the blocking path's.
//! * **Top-k tighten burst** — an ascending top-k whose boundary snaps
//!   shut after the first partition is evaluated. Any deeper-than-1
//!   pipeline has loads in flight at that moment; they are *cancelled*
//!   before their I/O cost is charged (`loads_cancelled > 0`), pruning
//!   work that the blocking model had already paid for.

use snowprune_exec::{ExecConfig, Executor, Session};
use snowprune_storage::{IoCostModel, IoSnapshot};
use snowprune_workload::{io_bound_burst, topk_tighten_burst, WorkloadConfig};

use crate::snapshot::Snapshot;

const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Cost model where GETs and evaluation are comparable, so overlap is
/// worth a large fraction of the wall-clock (a ~2ms GET against ~2ms of
/// evaluation per 400-row partition).
fn overlap_model() -> IoCostModel {
    IoCostModel {
        latency_ns_per_request: 2_000_000,
        throughput_bytes_per_sec: 200_000_000,
        metadata_ns_per_read: 0,
        eval_ns_per_row: 5_000,
    }
}

fn sum_io(outs: &[IoSnapshot]) -> IoSnapshot {
    let mut total = IoSnapshot::default();
    for o in outs {
        total.merge(o);
    }
    total
}

/// Run the prefetch experiment at default scale.
pub fn ext_prefetch(seed: u64) -> String {
    ext_prefetch_sized(seed, 12, 400, 60)
}

/// Size-parameterized variant (smoke runs use a tiny workload).
pub fn ext_prefetch_sized(
    seed: u64,
    queries: usize,
    rows_per_partition: usize,
    fact_partitions: usize,
) -> String {
    ext_prefetch_snap(seed, queries, rows_per_partition, fact_partitions).0
}

/// Like [`ext_prefetch_sized`], additionally returning the measured
/// numbers as a tracked [`Snapshot`] for `BENCH_prefetch.json`. The
/// numbers come off the deterministic virtual clock, so this snapshot is
/// exact rather than sampled.
pub fn ext_prefetch_snap(
    seed: u64,
    queries: usize,
    rows_per_partition: usize,
    fact_partitions: usize,
) -> (String, Snapshot) {
    let cfg = WorkloadConfig {
        queries,
        rows_per_partition,
        fact_partitions,
    };
    let mut snap = Snapshot::new("prefetch")
        .context("seed", seed)
        .context("queries", queries)
        .context("rows_per_partition", rows_per_partition)
        .context("fact_partitions", fact_partitions);
    let mut s = String::from("## Extension — async prefetch pipeline (overlap + cancellation)\n");

    // ---- leg 1: I/O-bound burst --------------------------------------
    let wl = io_bound_burst(&cfg, seed);
    let plans: Vec<_> = wl.queries.iter().map(|q| q.plan.clone()).collect();
    s += &format!(
        "  I/O-bound burst: {queries} wide filtered scans, 2 scan workers, \
         simulated wall = sum of per-lane pipeline makespans\n"
    );
    let mut blocking: Option<IoSnapshot> = None;
    for depth in DEPTHS {
        let mut ec = ExecConfig::default()
            .with_scan_threads(2)
            .with_prefetch_depth(depth);
        // Keep morsels as large as the deepest depth so per-depth walls are
        // directly comparable to the pre-chaining baselines (chain claiming
        // now carries the window across morsels either way, but a chain
        // never splits a partially-covered morsel, so tail overlap still
        // depends slightly on the morsel grid).
        ec.morsel_partitions = *DEPTHS.iter().max().unwrap();
        ec.io_cost = overlap_model();
        let session = Session::new(wl.catalog.clone(), ec);
        let outs: Vec<IoSnapshot> = session
            .run_batch(&plans)
            .into_iter()
            .map(|o| o.unwrap().io)
            .collect();
        let total = sum_io(&outs);
        s += &format!(
            "    depth {depth}: wall {:>8.2} ms  (io {:>8.2} + cpu {:>7.2} - overlapped {:>7.2}), \
             {} partitions / {} bytes loaded\n",
            total.simulated_wall_ns as f64 / 1e6,
            total.simulated_io_ns as f64 / 1e6,
            total.simulated_cpu_ns as f64 / 1e6,
            total.io_overlapped_ns as f64 / 1e6,
            total.partitions_loaded,
            total.bytes_loaded,
        );
        snap.metric(
            format!("io_wall_ms_depth_{depth}"),
            total.simulated_wall_ns as f64 / 1e6,
            "ms",
        );
        match &blocking {
            None => blocking = Some(total),
            Some(base) => {
                assert!(
                    total.simulated_wall_ns < base.simulated_wall_ns,
                    "depth {depth} must beat the blocking wall-clock"
                );
                assert!(
                    total.bytes_loaded <= base.bytes_loaded,
                    "prefetching must never load more bytes than blocking"
                );
            }
        }
    }
    let base = blocking.expect("depth 1 ran");
    s += &format!(
        "    blocking wall = io + cpu exactly: {}\n",
        base.simulated_wall_ns == base.simulated_io_ns + base.simulated_cpu_ns
    );

    // ---- leg 2: top-k boundary-tighten burst -------------------------
    let wl = topk_tighten_burst(&cfg, seed ^ 0x9e37);
    let plans: Vec<_> = wl.queries.iter().map(|q| q.plan.clone()).collect();
    s += &format!(
        "  top-k tighten burst: {queries} ascending top-k queries, sequential lanes \
         (deterministic cancellation)\n"
    );
    let mut base_bytes: Option<u64> = None;
    for depth in DEPTHS {
        let mut ec = ExecConfig::default().with_prefetch_depth(depth);
        // The boundary must tighten at runtime (from the heap) for loads to
        // be in flight when it does; upfront seeding would skip them at
        // submit time instead.
        ec.topk_init_boundary = false;
        ec.io_cost = overlap_model();
        // Sequential executor (no pool): heap tightenings happen
        // synchronously inside the pipeline's sink, so cancellation counts
        // are exact integers, reproducible across runs.
        let exec = Executor::new(wl.catalog.clone(), ec);
        let outs: Vec<IoSnapshot> = plans.iter().map(|p| exec.run(p).unwrap().io).collect();
        let total = sum_io(&outs);
        s += &format!(
            "    depth {depth}: {} loads cancelled in flight, {} partitions / {} bytes loaded, \
             wall {:>7.2} ms\n",
            total.loads_cancelled,
            total.partitions_loaded,
            total.bytes_loaded,
            total.simulated_wall_ns as f64 / 1e6,
        );
        snap.metric(
            format!("tighten_cancelled_depth_{depth}"),
            total.loads_cancelled as f64,
            "count",
        );
        snap.metric(
            format!("tighten_bytes_depth_{depth}"),
            total.bytes_loaded as f64,
            "bytes",
        );
        match base_bytes {
            None => base_bytes = Some(total.bytes_loaded),
            Some(base) => {
                assert!(
                    total.loads_cancelled > 0,
                    "depth {depth} must cancel in-flight loads on the tighten burst"
                );
                assert!(total.bytes_loaded <= base, "cancelled loads must be free");
            }
        }
    }
    s += "  cancelled loads charge zero bytes/latency: pruning that the blocking model paid for is free under prefetch\n";
    (s, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_experiment_runs_small() {
        let s = ext_prefetch_sized(7, 4, 50, 8);
        assert!(s.contains("I/O-bound burst"));
        assert!(s.contains("loads cancelled"));
        assert!(s.contains("blocking wall = io + cpu exactly: true"));
    }
}
