//! §5.1 lineage bench: exhaustive vs TA vs WAND vs Block-Max WAND.

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_ir::{
    block_max_wand, exhaustive_topk, threshold_algorithm, wand, Posting, PostingList,
};

fn lists() -> Vec<PostingList> {
    let mut state = 99u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..3)
        .map(|_| {
            let mut postings = Vec::new();
            for d in 0..20_000u32 {
                if next() % 2 == 0 {
                    postings.push(Posting {
                        doc: d,
                        score: (next() % 1000) as f64,
                    });
                }
            }
            PostingList::new(postings, 128)
        })
        .collect()
}

fn bench_ir(c: &mut Criterion) {
    let ls = lists();
    let mut g = c.benchmark_group("ir_topk");
    g.sample_size(20);
    g.bench_function("exhaustive", |b| {
        b.iter(|| std::hint::black_box(exhaustive_topk(&ls, 10)))
    });
    g.bench_function("ta", |b| {
        b.iter(|| std::hint::black_box(threshold_algorithm(&ls, 10)))
    });
    g.bench_function("wand", |b| b.iter(|| std::hint::black_box(wand(&ls, 10))));
    g.bench_function("block_max_wand", |b| {
        b.iter(|| std::hint::black_box(block_max_wand(&ls, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench_ir);
criterion_main!(benches);
