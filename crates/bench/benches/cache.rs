//! §8.2 bench: repeated top-k via predicate cache vs boundary pruning —
//! both the offline populate+replay loop and the engine-integrated warm
//! path (`Session` with `predicate_cache` on).

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_cache::{
    contributing_partitions_topk, CacheEntry, CacheLookup, EntryKind, PredicateCache,
};
use snowprune_exec::{ExecConfig, Executor, Session};
use snowprune_plan::{fingerprint, FingerprintMode, PlanBuilder};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn bench_cache(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new("v", ScalarType::Int),
        Field::new("p", ScalarType::Int),
    ]);
    let cat = Catalog::new();
    let mut b = TableBuilder::new("t", schema.clone())
        .target_rows_per_partition(500)
        .layout(Layout::Shuffle(5));
    for i in 0..50_000i64 {
        b.push_row(vec![Value::Int((i * 37) % 100_000), Value::Int(i)]);
    }
    let handle = cat.register(b.build());
    let plan = PlanBuilder::scan("t", schema)
        .order_by("v", true)
        .limit(10)
        .build();
    let mut g = c.benchmark_group("cache");
    g.sample_size(20);
    g.bench_function("topk_pruning_shuffled", |b| {
        let exec = Executor::new(cat.clone(), ExecConfig::default());
        b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
    });
    g.bench_function("topk_cached_replay", |b| {
        // Populate once (offline pass), then measure lookup + replay cost.
        let mut cache = PredicateCache::new(8);
        let fp = fingerprint(&plan, FingerprintMode::Exact);
        let parts = {
            let t = handle.read();
            contributing_partitions_topk(&t, None, "v", 10, true).unwrap()
        };
        let version = handle.read().version();
        cache.insert(
            fp,
            CacheEntry {
                kind: EntryKind::TopK {
                    order_column: "v".into(),
                },
                table: "t".into(),
                partitions: parts,
                predicate_columns: Vec::new(),
                table_version: version,
                appended: Vec::new(),
                shape: None,
                saved_loads: 0,
                aux_tables: Vec::new(),
            },
        );
        let t = handle.read().clone();
        b.iter(|| {
            let CacheLookup::Hit(parts) = cache.lookup(fp, version) else {
                panic!()
            };
            // Replay: load only the cached partitions.
            let mut top: Vec<i64> = Vec::new();
            for id in parts {
                let p = t.partition(id).unwrap();
                for i in 0..p.row_count() {
                    if let Value::Int(v) = p.column(0).value_at(i) {
                        top.push(v);
                    }
                }
            }
            top.sort_unstable_by(|a, b| b.cmp(a));
            top.truncate(10);
            std::hint::black_box(top)
        })
    });
    g.bench_function("topk_engine_warm_hit", |b| {
        // The integrated path: one cold miss populates, then every
        // iteration is a full engine run that hits the cache.
        let session = Session::new(
            cat.clone(),
            ExecConfig::default().with_predicate_cache(true),
        );
        session.run(&plan).unwrap();
        b.iter(|| std::hint::black_box(session.run(&plan).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
