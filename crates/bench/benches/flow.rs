//! Figure 1 / Figure 11 companion: end-to-end workload execution with all
//! pruning on vs all pruning off.

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_exec::{ExecConfig, Executor};
use snowprune_workload::{generate, WorkloadConfig};

fn bench_flow(c: &mut Criterion) {
    let wl = generate(
        &WorkloadConfig {
            queries: 40,
            rows_per_partition: 250,
            fact_partitions: 24,
        },
        7,
    );
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    g.bench_function("workload_pruned", |b| {
        let exec = Executor::new(wl.catalog.clone(), ExecConfig::default());
        b.iter(|| {
            for q in &wl.queries {
                std::hint::black_box(exec.run(&q.plan).unwrap());
            }
        })
    });
    g.bench_function("workload_unpruned", |b| {
        let exec = Executor::new(wl.catalog.clone(), ExecConfig::no_pruning());
        b.iter(|| {
            for q in &wl.queries {
                std::hint::black_box(exec.run(&q.plan).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
