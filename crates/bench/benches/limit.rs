//! §4 LIMIT pruning bench: Table 2 scenario — LIMIT with and without
//! pruning, sequential and parallel (the §4.4 n-worker effect).

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::PlanBuilder;
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn bench_limit(c: &mut Criterion) {
    let schema = Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("m", ScalarType::Int),
    ]);
    let cat = Catalog::new();
    let mut b = TableBuilder::new("t", schema.clone())
        .target_rows_per_partition(500)
        .layout(Layout::ClusterBy(vec!["ts".into()]));
    for i in 0..100_000i64 {
        b.push_row(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    cat.register(b.build());
    let plan = PlanBuilder::scan("t", schema)
        .filter(col("ts").lt(lit(50_000i64)))
        .limit(20)
        .build();
    let mut g = c.benchmark_group("limit");
    g.sample_size(20);
    for (label, pruning, workers) in [
        ("pruned_1w", true, 1usize),
        ("pruned_4w", true, 4),
        ("early_stop_1w", false, 1),
        ("early_stop_4w", false, 4),
    ] {
        g.bench_function(label, |b| {
            let mut cfg = ExecConfig::default();
            cfg.enable_limit_pruning = pruning;
            cfg.scan_threads = workers;
            let exec = Executor::new(cat.clone(), cfg);
            b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_limit);
criterion_main!(benches);
