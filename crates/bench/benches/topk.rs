//! §5 top-k pruning benches: Figure 8 (ordering strategies) and Figure 9
//! (pruning on/off runtime), plus §5.4 boundary initialization.

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_core::topk::PartitionOrder;
use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::PlanBuilder;
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn catalog(layout: Layout) -> (Catalog, Schema) {
    let schema = Schema::new(vec![
        Field::new("v", ScalarType::Int),
        Field::new("s", ScalarType::Int),
    ]);
    let mut b = TableBuilder::new("t", schema.clone())
        .target_rows_per_partition(400)
        .layout(layout);
    for i in 0..60_000i64 {
        b.push_row(vec![Value::Int((i * 37) % 100_000), Value::Int(i % 130)]);
    }
    let c = Catalog::new();
    c.register(b.build());
    (c, schema)
}

fn bench_topk(c: &mut Criterion) {
    let (cat, schema) = catalog(Layout::ClusterBy(vec!["v".into()]));
    let plan = PlanBuilder::scan("t", schema)
        .filter(col("s").ge(lit(50i64)))
        .order_by("v", true)
        .limit(10)
        .build();
    let mut g = c.benchmark_group("topk");
    g.sample_size(20);
    for (label, enable, order, init) in [
        ("pruned_sorted", true, PartitionOrder::ByBoundary, true),
        (
            "pruned_random",
            true,
            PartitionOrder::Random { seed: 3 },
            false,
        ),
        ("pruned_no_init", true, PartitionOrder::ByBoundary, false),
        ("unpruned", false, PartitionOrder::Unsorted, false),
    ] {
        g.bench_function(label, |b| {
            let mut cfg = ExecConfig::default();
            cfg.enable_topk_pruning = enable;
            cfg.topk_order = order;
            cfg.topk_init_boundary = init;
            let exec = Executor::new(cat.clone(), cfg);
            b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
