//! §6 join pruning bench: probe-side scan-set reduction with different
//! build-side summaries (Figure 10 scenario).

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_core::join::SummaryKind;
use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::{JoinType, PlanBuilder};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn setup() -> (Catalog, Schema, Schema) {
    let dim_schema = Schema::new(vec![
        Field::new("id", ScalarType::Int),
        Field::new("w", ScalarType::Int),
    ]);
    let fact_schema = Schema::new(vec![
        Field::new("fk", ScalarType::Int),
        Field::new("m", ScalarType::Int),
    ]);
    let c = Catalog::new();
    let mut dim = TableBuilder::new("dim", dim_schema.clone()).target_rows_per_partition(1000);
    for i in 0..1000i64 {
        dim.push_row(vec![Value::Int(i * 97), Value::Int(i % 50)]);
    }
    c.register(dim.build());
    let mut fact = TableBuilder::new("fact", fact_schema.clone())
        .target_rows_per_partition(500)
        .layout(Layout::ClusterBy(vec!["fk".into()]));
    for i in 0..80_000i64 {
        fact.push_row(vec![Value::Int(i % 97_000), Value::Int(i)]);
    }
    c.register(fact.build());
    (c, dim_schema, fact_schema)
}

fn bench_join(c: &mut Criterion) {
    let (cat, dim_schema, fact_schema) = setup();
    let plan = PlanBuilder::scan("dim", dim_schema)
        .filter(col("w").lt(lit(3i64)))
        .join(
            PlanBuilder::scan("fact", fact_schema),
            "id",
            "fk",
            JoinType::Inner,
        )
        .build();
    let mut g = c.benchmark_group("join");
    g.sample_size(10);
    for (label, enabled, kind, bloom) in [
        (
            "range_set",
            true,
            SummaryKind::RangeSet { budget: 128 },
            true,
        ),
        ("minmax", true, SummaryKind::MinMax, true),
        ("exact", true, SummaryKind::Exact, true),
        ("no_prune_bloom", false, SummaryKind::MinMax, true),
        ("no_prune_no_bloom", false, SummaryKind::MinMax, false),
    ] {
        g.bench_function(label, |b| {
            let mut cfg = ExecConfig::default();
            cfg.enable_join_pruning = enabled;
            cfg.join_summary = kind;
            cfg.join_bloom = bloom;
            let exec = Executor::new(cat.clone(), cfg);
            b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
