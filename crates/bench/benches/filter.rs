//! §3 filter pruning microbenches: compile-time pruning throughput and the
//! Figure 4 scenario, with reorder/cutoff ablations (§3.2).

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_core::filter::{FilterPruneConfig, FilterPruner};
use snowprune_expr::dsl::{col, lit};
use snowprune_storage::{Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn table(parts: usize) -> snowprune_storage::Table {
    let schema = Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("metric", ScalarType::Int),
    ]);
    let mut b = TableBuilder::new("t", schema)
        .target_rows_per_partition(100)
        .layout(Layout::ClusterBy(vec!["ts".into()]));
    for i in 0..(parts * 100) as i64 {
        b.push_row(vec![Value::Int(i), Value::Int(i % 997)]);
    }
    b.build()
}

fn bench_filter(c: &mut Criterion) {
    let t = table(500);
    let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
    let pred = col("ts")
        .between(lit(1000i64), lit(3000i64))
        .and(col("metric").lt(lit(500i64)))
        .bind(t.schema())
        .unwrap();
    let mut g = c.benchmark_group("filter_pruning");
    g.sample_size(20);
    for (label, reorder, cutoff) in [
        ("adaptive", true, true),
        ("no_reorder", false, true),
        ("no_cutoff", true, false),
        ("static", false, false),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = FilterPruneConfig::default();
                cfg.reorder = reorder;
                cfg.cutoff = cutoff;
                let mut pruner = FilterPruner::new(&pred, cfg);
                std::hint::black_box(pruner.prune(&metas))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
