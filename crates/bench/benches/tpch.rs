//! Figure 13 bench: TPC-H queries with pruning on vs off (tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use snowprune_exec::{ExecConfig, Executor};
use snowprune_workload::{generate_tpch, tpch_query, TpchConfig};

fn bench_tpch(c: &mut Criterion) {
    let catalog = generate_tpch(&TpchConfig {
        scale: 0.005,
        rows_per_partition: 600,
        clustered: true,
        seed: 1,
    });
    let mut g = c.benchmark_group("tpch");
    g.sample_size(10);
    for q in [1usize, 6, 14] {
        let plan = tpch_query(q);
        g.bench_function(format!("q{q}_pruned"), |b| {
            let exec = Executor::new(catalog.clone(), ExecConfig::default());
            b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
        });
        g.bench_function(format!("q{q}_unpruned"), |b| {
            let exec = Executor::new(catalog.clone(), ExecConfig::no_pruning());
            b.iter(|| std::hint::black_box(exec.run(&plan).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);
