//! A tiny catalog standing in for the cloud-services metadata layer (§2):
//! name → table resolution with shared, concurrently readable tables.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use snowprune_types::{Error, Result};

use crate::table::Table;

/// Shared handle to a table.
pub type TableRef = Arc<RwLock<Table>>;

/// Name → table mapping.
#[derive(Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, TableRef>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table under its own name, returning the
    /// shared handle.
    pub fn register(&self, table: Table) -> TableRef {
        let name = table.name().to_owned();
        let handle: TableRef = Arc::new(RwLock::new(table));
        self.tables.write().insert(name, Arc::clone(&handle));
        handle
    }

    /// Resolve a table by name.
    pub fn get(&self, name: &str) -> Result<TableRef> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// All registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use snowprune_types::ScalarType;

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        let schema = Schema::new(vec![Field::new("a", ScalarType::Int)]);
        cat.register(TableBuilder::new("t1", schema).build());
        assert!(cat.get("t1").is_ok());
        assert!(cat.get("t2").is_err());
        assert_eq!(cat.table_names(), vec!["t1".to_owned()]);
    }
}
