//! Table schemas.

use snowprune_types::{Error, Result, ScalarType};

/// A named, typed column in a table schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ScalarType,
    /// Whether the column admits NULLs.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, ty: ScalarType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// Mark the field NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// A schema from fields, in order.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields, in schema order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for the zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> Result<&Field> {
        self.fields
            .get(idx)
            .ok_or_else(|| Error::UnknownColumn(format!("#{idx}")))
    }

    /// Resolve a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_owned()))
    }

    /// True when a column with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// Concatenate two schemas (used for join outputs), prefixing duplicate
    /// names from the right side with `right_prefix`.
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.contains(&f.name) {
                format!("{right_prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field {
                name,
                ty: f.ty,
                nullable: f.nullable,
            });
        }
        Schema { fields }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Str),
        ]);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn join_prefixes_duplicates() {
        let l = Schema::new(vec![Field::new("id", ScalarType::Int)]);
        let r = Schema::new(vec![
            Field::new("id", ScalarType::Int),
            Field::new("x", ScalarType::Float),
        ]);
        let j = l.join(&r, "r_");
        assert_eq!(j.fields()[1].name, "r_id");
        assert_eq!(j.fields()[2].name, "x");
    }
}
