//! Typed columnar storage for one column of one micro-partition.
//!
//! Micro-partitions use a PAX-style layout (§2): all rows of a partition
//! live together, organized column-by-column. Each column chunk stores a
//! typed vector plus an optional validity bitmap.

use snowprune_types::{ScalarType, Value};

/// A packed validity bitmap; bit set = value present (non-null).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    pub fn new_unset(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        self.set(i, v);
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The typed values of a column chunk. Null slots hold a type-appropriate
/// placeholder and are masked by the chunk's validity bitmap.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnValues {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Date(Vec<i32>),
    Timestamp(Vec<i64>),
}

impl ColumnValues {
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Float(v) => v.len(),
            ColumnValues::Str(v) => v.len(),
            ColumnValues::Date(v) => v.len(),
            ColumnValues::Timestamp(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ColumnValues::Bool(_) => ScalarType::Bool,
            ColumnValues::Int(_) => ScalarType::Int,
            ColumnValues::Float(_) => ScalarType::Float,
            ColumnValues::Str(_) => ScalarType::Str,
            ColumnValues::Date(_) => ScalarType::Date,
            ColumnValues::Timestamp(_) => ScalarType::Timestamp,
        }
    }

    fn empty_for(ty: ScalarType) -> ColumnValues {
        match ty {
            ScalarType::Bool => ColumnValues::Bool(Vec::new()),
            ScalarType::Int => ColumnValues::Int(Vec::new()),
            ScalarType::Float => ColumnValues::Float(Vec::new()),
            ScalarType::Str => ColumnValues::Str(Vec::new()),
            ScalarType::Date => ColumnValues::Date(Vec::new()),
            ScalarType::Timestamp => ColumnValues::Timestamp(Vec::new()),
        }
    }
}

/// One column of one micro-partition: typed values + validity.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnChunk {
    values: ColumnValues,
    /// `None` means all values are valid (no nulls).
    validity: Option<Bitmap>,
}

impl ColumnChunk {
    pub fn new(values: ColumnValues, validity: Option<Bitmap>) -> Self {
        if let Some(v) = &validity {
            assert_eq!(v.len(), values.len(), "validity/values length mismatch");
        }
        ColumnChunk { values, validity }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn scalar_type(&self) -> ScalarType {
        self.values.scalar_type()
    }

    pub fn values(&self) -> &ColumnValues {
        &self.values
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|b| b.get(i))
    }

    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(b) => b.len() - b.count_set(),
        }
    }

    /// Materialize row `i` as a [`Value`]. Prefer the typed accessors in hot
    /// paths; this is for row-at-a-time consumers (joins, results).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.values {
            ColumnValues::Bool(v) => Value::Bool(v[i]),
            ColumnValues::Int(v) => Value::Int(v[i]),
            ColumnValues::Float(v) => Value::Float(v[i]),
            ColumnValues::Str(v) => Value::Str(v[i].clone()),
            ColumnValues::Date(v) => Value::Date(v[i]),
            ColumnValues::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Iterate rows as values (allocates for strings).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(|i| self.value_at(i))
    }

    /// Approximate encoded size in bytes (drives partition sizing and I/O
    /// accounting).
    pub fn approx_bytes(&self) -> usize {
        let data = match &self.values {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len() * 8,
            ColumnValues::Float(v) => v.len() * 8,
            ColumnValues::Str(v) => v.iter().map(|s| s.len() + 4).sum(),
            ColumnValues::Date(v) => v.len() * 4,
            ColumnValues::Timestamp(v) => v.len() * 8,
        };
        data + self.validity.as_ref().map_or(0, |b| b.len() / 8 + 1)
    }

    /// Gather the rows at `indices` into a new chunk.
    pub fn take(&self, indices: &[usize]) -> ColumnChunk {
        let mut b = ColumnBuilder::new(self.scalar_type());
        for &i in indices {
            b.push(self.value_at(i));
        }
        b.finish()
    }
}

/// Incremental builder for a [`ColumnChunk`].
#[derive(Debug)]
pub struct ColumnBuilder {
    values: ColumnValues,
    validity: Bitmap,
    any_null: bool,
}

impl ColumnBuilder {
    pub fn new(ty: ScalarType) -> Self {
        ColumnBuilder {
            values: ColumnValues::empty_for(ty),
            validity: Bitmap::new_set(0),
            any_null: false,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Push a value, converting `Null` into a masked placeholder. Panics on
    /// a type mismatch — schema enforcement happens at the table layer.
    pub fn push(&mut self, v: Value) {
        let valid = !v.is_null();
        if !valid {
            self.any_null = true;
        }
        self.validity.push(valid);
        match (&mut self.values, v) {
            (ColumnValues::Bool(c), Value::Bool(x)) => c.push(x),
            (ColumnValues::Bool(c), Value::Null) => c.push(false),
            (ColumnValues::Int(c), Value::Int(x)) => c.push(x),
            (ColumnValues::Int(c), Value::Null) => c.push(0),
            (ColumnValues::Float(c), Value::Float(x)) => c.push(x),
            (ColumnValues::Float(c), Value::Int(x)) => c.push(x as f64),
            (ColumnValues::Float(c), Value::Null) => c.push(0.0),
            (ColumnValues::Str(c), Value::Str(x)) => c.push(x),
            (ColumnValues::Str(c), Value::Null) => c.push(String::new()),
            (ColumnValues::Date(c), Value::Date(x)) => c.push(x),
            (ColumnValues::Date(c), Value::Null) => c.push(0),
            (ColumnValues::Timestamp(c), Value::Timestamp(x)) => c.push(x),
            (ColumnValues::Timestamp(c), Value::Null) => c.push(0),
            (vals, v) => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.scalar_type(),
                vals.scalar_type()
            ),
        }
    }

    pub fn finish(self) -> ColumnChunk {
        let validity = if self.any_null {
            Some(self.validity)
        } else {
            None
        };
        ColumnChunk {
            values: self.values,
            validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip() {
        let mut b = Bitmap::new_unset(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_set(), 3);
    }

    #[test]
    fn bitmap_push_across_word_boundary() {
        let mut b = Bitmap::new_set(0);
        for i in 0..100 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_set(), 34);
        assert!(b.get(99) && !b.get(98));
    }

    #[test]
    fn builder_handles_nulls_and_coercion() {
        let mut b = ColumnBuilder::new(ScalarType::Float);
        b.push(Value::Float(1.5));
        b.push(Value::Null);
        b.push(Value::Int(2)); // int literal into float column
        let chunk = b.finish();
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.null_count(), 1);
        assert_eq!(chunk.value_at(0), Value::Float(1.5));
        assert_eq!(chunk.value_at(1), Value::Null);
        assert_eq!(chunk.value_at(2), Value::Float(2.0));
    }

    #[test]
    fn no_validity_bitmap_when_dense() {
        let mut b = ColumnBuilder::new(ScalarType::Int);
        b.push(Value::Int(1));
        b.push(Value::Int(2));
        let chunk = b.finish();
        assert!(chunk.validity().is_none());
        assert_eq!(chunk.null_count(), 0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(ScalarType::Int);
        b.push(Value::Str("boom".into()));
    }

    #[test]
    fn take_gathers_rows() {
        let mut b = ColumnBuilder::new(ScalarType::Str);
        for s in ["a", "b", "c", "d"] {
            b.push(Value::Str(s.into()));
        }
        let chunk = b.finish();
        let taken = chunk.take(&[3, 1]);
        assert_eq!(taken.value_at(0), Value::Str("d".into()));
        assert_eq!(taken.value_at(1), Value::Str("b".into()));
    }
}
