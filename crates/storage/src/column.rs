//! Typed columnar storage for one column of one micro-partition.
//!
//! Micro-partitions use a PAX-style layout (§2): all rows of a partition
//! live together, organized column-by-column. Each column chunk stores a
//! typed vector plus an optional validity bitmap.

use snowprune_types::{ScalarType, Value};

/// A packed validity bitmap; bit set = value present (non-null).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set (all values valid).
    pub fn new_set(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// A bitmap of `len` bits, all clear (all values null).
    pub fn new_unset(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Append one bit.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        self.set(i, v);
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The typed values of a column chunk. Null slots hold a type-appropriate
/// placeholder and are masked by the chunk's validity bitmap.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnValues {
    /// Booleans.
    Bool(Vec<bool>),
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Dates as days since the epoch.
    Date(Vec<i32>),
    /// Timestamps as microseconds since the epoch.
    Timestamp(Vec<i64>),
}

impl ColumnValues {
    /// Number of rows (null placeholders included).
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Float(v) => v.len(),
            ColumnValues::Str(v) => v.len(),
            ColumnValues::Date(v) => v.len(),
            ColumnValues::Timestamp(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's scalar type.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            ColumnValues::Bool(_) => ScalarType::Bool,
            ColumnValues::Int(_) => ScalarType::Int,
            ColumnValues::Float(_) => ScalarType::Float,
            ColumnValues::Str(_) => ScalarType::Str,
            ColumnValues::Date(_) => ScalarType::Date,
            ColumnValues::Timestamp(_) => ScalarType::Timestamp,
        }
    }

    fn empty_for(ty: ScalarType) -> ColumnValues {
        match ty {
            ScalarType::Bool => ColumnValues::Bool(Vec::new()),
            ScalarType::Int => ColumnValues::Int(Vec::new()),
            ScalarType::Float => ColumnValues::Float(Vec::new()),
            ScalarType::Str => ColumnValues::Str(Vec::new()),
            ScalarType::Date => ColumnValues::Date(Vec::new()),
            ScalarType::Timestamp => ColumnValues::Timestamp(Vec::new()),
        }
    }
}

/// One column of one micro-partition: typed values + validity.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnChunk {
    values: ColumnValues,
    /// `None` means all values are valid (no nulls).
    validity: Option<Bitmap>,
}

impl ColumnChunk {
    /// A chunk from typed values plus an optional validity bitmap (`None`
    /// = no nulls). Panics when the bitmap length disagrees with the
    /// value count.
    pub fn new(values: ColumnValues, validity: Option<Bitmap>) -> Self {
        if let Some(v) = &validity {
            assert_eq!(v.len(), values.len(), "validity/values length mismatch");
        }
        ColumnChunk { values, validity }
    }

    /// Number of rows (null placeholders included).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The chunk's scalar type.
    pub fn scalar_type(&self) -> ScalarType {
        self.values.scalar_type()
    }

    /// The raw typed values (null slots hold placeholders; consult
    /// [`ColumnChunk::validity`]).
    pub fn values(&self) -> &ColumnValues {
        &self.values
    }

    /// The validity bitmap; `None` means every value is valid.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// True when row `i` is non-null.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|b| b.get(i))
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(b) => b.len() - b.count_set(),
        }
    }

    // Typed batch readers: the vectorized predicate kernels and any other
    // batch-at-a-time consumer read column windows straight off these
    // slices (with `validity()` masking nulls) instead of materializing
    // `Value`s row by row. Each returns `None` on a type mismatch.

    /// The chunk's values as a `bool` slice, when it is a Bool column.
    #[inline]
    pub fn as_bools(&self) -> Option<&[bool]> {
        match &self.values {
            ColumnValues::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The chunk's values as an `i64` slice, when it is an Int column.
    #[inline]
    pub fn as_ints(&self) -> Option<&[i64]> {
        match &self.values {
            ColumnValues::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The chunk's values as an `f64` slice, when it is a Float column.
    #[inline]
    pub fn as_floats(&self) -> Option<&[f64]> {
        match &self.values {
            ColumnValues::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The chunk's values as a `String` slice, when it is a Str column.
    #[inline]
    pub fn as_strs(&self) -> Option<&[String]> {
        match &self.values {
            ColumnValues::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The chunk's values as a days-since-epoch slice, when it is a Date
    /// column.
    #[inline]
    pub fn as_dates(&self) -> Option<&[i32]> {
        match &self.values {
            ColumnValues::Date(v) => Some(v),
            _ => None,
        }
    }

    /// The chunk's values as a microseconds-since-epoch slice, when it is
    /// a Timestamp column.
    #[inline]
    pub fn as_timestamps(&self) -> Option<&[i64]> {
        match &self.values {
            ColumnValues::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Materialize row `i` as a [`Value`]. Prefer the typed accessors in hot
    /// paths; this is for row-at-a-time consumers (joins, results).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.values {
            ColumnValues::Bool(v) => Value::Bool(v[i]),
            ColumnValues::Int(v) => Value::Int(v[i]),
            ColumnValues::Float(v) => Value::Float(v[i]),
            ColumnValues::Str(v) => Value::Str(v[i].clone()),
            ColumnValues::Date(v) => Value::Date(v[i]),
            ColumnValues::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Iterate rows as values (allocates for strings).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(|i| self.value_at(i))
    }

    /// Approximate encoded size in bytes (drives partition sizing and I/O
    /// accounting).
    pub fn approx_bytes(&self) -> usize {
        let data = match &self.values {
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Int(v) => v.len() * 8,
            ColumnValues::Float(v) => v.len() * 8,
            ColumnValues::Str(v) => v.iter().map(|s| s.len() + 4).sum(),
            ColumnValues::Date(v) => v.len() * 4,
            ColumnValues::Timestamp(v) => v.len() * 8,
        };
        data + self.validity.as_ref().map_or(0, |b| b.len() / 8 + 1)
    }

    /// Gather the rows at `indices` into a new chunk.
    pub fn take(&self, indices: &[usize]) -> ColumnChunk {
        let mut b = ColumnBuilder::new(self.scalar_type());
        for &i in indices {
            b.push(self.value_at(i));
        }
        b.finish()
    }
}

/// Incremental builder for a [`ColumnChunk`].
#[derive(Debug)]
pub struct ColumnBuilder {
    values: ColumnValues,
    validity: Bitmap,
    any_null: bool,
}

impl ColumnBuilder {
    /// An empty builder for a column of type `ty`.
    pub fn new(ty: ScalarType) -> Self {
        ColumnBuilder {
            values: ColumnValues::empty_for(ty),
            validity: Bitmap::new_set(0),
            any_null: false,
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Push a value, converting `Null` into a masked placeholder. Panics on
    /// a type mismatch — schema enforcement happens at the table layer.
    pub fn push(&mut self, v: Value) {
        let valid = !v.is_null();
        if !valid {
            self.any_null = true;
        }
        self.validity.push(valid);
        match (&mut self.values, v) {
            (ColumnValues::Bool(c), Value::Bool(x)) => c.push(x),
            (ColumnValues::Bool(c), Value::Null) => c.push(false),
            (ColumnValues::Int(c), Value::Int(x)) => c.push(x),
            (ColumnValues::Int(c), Value::Null) => c.push(0),
            (ColumnValues::Float(c), Value::Float(x)) => c.push(x),
            (ColumnValues::Float(c), Value::Int(x)) => c.push(x as f64),
            (ColumnValues::Float(c), Value::Null) => c.push(0.0),
            (ColumnValues::Str(c), Value::Str(x)) => c.push(x),
            (ColumnValues::Str(c), Value::Null) => c.push(String::new()),
            (ColumnValues::Date(c), Value::Date(x)) => c.push(x),
            (ColumnValues::Date(c), Value::Null) => c.push(0),
            (ColumnValues::Timestamp(c), Value::Timestamp(x)) => c.push(x),
            (ColumnValues::Timestamp(c), Value::Null) => c.push(0),
            // PANIC-OK: builders are constructed from the table schema; a
            // mismatched push is a storage-layer programming error.
            (vals, v) => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.scalar_type(),
                vals.scalar_type()
            ),
        }
    }

    /// Finish the chunk, attaching a validity bitmap only when a null was
    /// pushed.
    pub fn finish(self) -> ColumnChunk {
        let validity = if self.any_null {
            Some(self.validity)
        } else {
            None
        };
        ColumnChunk {
            values: self.values,
            validity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip() {
        let mut b = Bitmap::new_unset(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_set(), 3);
    }

    #[test]
    fn bitmap_push_across_word_boundary() {
        let mut b = Bitmap::new_set(0);
        for i in 0..100 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_set(), 34);
        assert!(b.get(99) && !b.get(98));
    }

    #[test]
    fn builder_handles_nulls_and_coercion() {
        let mut b = ColumnBuilder::new(ScalarType::Float);
        b.push(Value::Float(1.5));
        b.push(Value::Null);
        b.push(Value::Int(2)); // int literal into float column
        let chunk = b.finish();
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.null_count(), 1);
        assert_eq!(chunk.value_at(0), Value::Float(1.5));
        assert_eq!(chunk.value_at(1), Value::Null);
        assert_eq!(chunk.value_at(2), Value::Float(2.0));
    }

    #[test]
    fn no_validity_bitmap_when_dense() {
        let mut b = ColumnBuilder::new(ScalarType::Int);
        b.push(Value::Int(1));
        b.push(Value::Int(2));
        let chunk = b.finish();
        assert!(chunk.validity().is_none());
        assert_eq!(chunk.null_count(), 0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(ScalarType::Int);
        b.push(Value::Str("boom".into()));
    }

    #[test]
    fn typed_batch_readers_expose_slices() {
        let mut b = ColumnBuilder::new(ScalarType::Int);
        b.push(Value::Int(7));
        b.push(Value::Null);
        b.push(Value::Int(9));
        let chunk = b.finish();
        // Null slots stay in the slice as placeholders, masked by validity.
        assert_eq!(chunk.as_ints(), Some(&[7, 0, 9][..]));
        assert_eq!(chunk.as_floats(), None);
        assert!(chunk.is_valid(0) && !chunk.is_valid(1));

        let mut f = ColumnBuilder::new(ScalarType::Float);
        f.push(Value::Float(0.5));
        let chunk = f.finish();
        assert_eq!(chunk.as_floats(), Some(&[0.5][..]));
        assert_eq!(chunk.as_ints(), None);
        assert_eq!(chunk.as_bools(), None);
        assert_eq!(chunk.as_strs(), None);
        assert_eq!(chunk.as_dates(), None);
        assert_eq!(chunk.as_timestamps(), None);
    }

    #[test]
    fn take_gathers_rows() {
        let mut b = ColumnBuilder::new(ScalarType::Str);
        for s in ["a", "b", "c", "d"] {
            b.push(Value::Str(s.into()));
        }
        let chunk = b.finish();
        let taken = chunk.take(&[3, 1]);
        assert_eq!(taken.value_at(0), Value::Str("d".into()));
        assert_eq!(taken.value_at(1), Value::Str("b".into()));
    }
}
