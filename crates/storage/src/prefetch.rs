//! Asynchronous partition loading over the simulated object store — the
//! io_uring-style submit/complete abstraction behind the exec layer's
//! prefetch pipeline.
//!
//! An [`AsyncLake`] models one scan lane's serial network stream to the
//! object store. Loads are *submitted* ([`AsyncLake::submit_load`]) and
//! later either *completed* ([`AsyncLake::complete`]) or *cancelled*
//! ([`AsyncLake::cancel`]). All accounting is deferred to completion: a
//! cancelled ticket charges **zero** bytes and zero latency to [`IoStats`]
//! (only `loads_cancelled` is bumped), which is exactly what makes runtime
//! pruning *more* valuable under prefetching — a top-k boundary that
//! tightens while a load is in flight makes that load free.
//!
//! # The deterministic virtual clock
//!
//! Real async I/O would make overlap accounting depend on thread timing.
//! Instead each lane carries a *virtual clock* with two cursors:
//!
//! * `loader_busy_until` — the lane's serial GET stream: a submitted load
//!   starts at `max(loader_busy_until, eval_busy_until)` (a worker cannot
//!   issue a request before it reaches that point in its own timeline) and
//!   occupies the stream for its [`IoCostModel::load_cost_ns`].
//! * `eval_busy_until` — the evaluate stage: completing a load waits for
//!   its virtual ready time, and [`AsyncLake::note_evaluated`] advances the
//!   cursor by the simulated predicate-evaluation cost.
//!
//! The portion of a completed load's transfer window that falls *before*
//! the evaluator caught up is overlapped I/O (`io_overlapped_ns`); the lane
//! makespan recorded by [`AsyncLake::finish`] therefore approaches
//! `max(io, cpu)` with prefetching and degenerates to `io + cpu` for the
//! blocking depth-1 schedule (submit, complete, evaluate, repeat). Because
//! every quantity is pure arithmetic over the submit/complete/cancel
//! sequence, the counters are bit-identical under any thread interleaving
//! that produces the same sequence.
//!
//! Cancellation *refunds* the loader stream: later in-flight loads (and the
//! stream cursor) shift earlier by the cancelled cost, modelling a request
//! that is torn down before any byte moves.

use std::collections::VecDeque;
use std::sync::Arc;

use snowprune_types::{Error, Result};

use crate::io::{IoCostModel, IoStats};
use crate::partition::{MicroPartition, PartitionId};
use crate::table::Table;

/// Handle to one in-flight partition load. Deliberately neither `Clone` nor
/// `Copy`: a ticket is consumed exactly once, by `complete` or `cancel`.
#[derive(Debug)]
pub struct LoadTicket {
    seq: u64,
}

#[derive(Debug)]
struct Inflight {
    seq: u64,
    id: PartitionId,
    bytes: u64,
    cost_ns: u64,
    start_ns: u64,
    ready_ns: u64,
}

/// One scan lane's asynchronous view of the object store (see the module
/// docs for the clock model).
pub struct AsyncLake {
    table: Arc<Table>,
    io: IoStats,
    model: IoCostModel,
    inflight: VecDeque<Inflight>,
    next_seq: u64,
    loader_busy_until: u64,
    eval_busy_until: u64,
    finished: bool,
}

impl AsyncLake {
    /// A fresh lane over `table`, charging I/O to `io` under `model`.
    pub fn new(table: Arc<Table>, io: IoStats, model: IoCostModel) -> Self {
        AsyncLake {
            table,
            io,
            model,
            inflight: VecDeque::new(),
            next_seq: 0,
            loader_busy_until: 0,
            eval_busy_until: 0,
            finished: false,
        }
    }

    /// Number of submitted-but-unresolved loads.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The evaluate-stage cursor (virtual ns since the lane started).
    pub fn eval_clock_ns(&self) -> u64 {
        self.eval_busy_until
    }

    /// Submit an asynchronous load for `id`, whose metadata the caller has
    /// already read (`bytes` sizes the simulated GET — passing it in avoids
    /// a second metadata lookup on the hot path). Charges nothing yet; an
    /// unknown `id` surfaces as an error from [`AsyncLake::complete`].
    pub fn submit_load(&mut self, id: PartitionId, bytes: u64) -> LoadTicket {
        let cost_ns = self.model.load_cost_ns(bytes);
        let start_ns = self.loader_busy_until.max(self.eval_busy_until);
        let ready_ns = start_ns + cost_ns;
        self.loader_busy_until = ready_ns;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.push_back(Inflight {
            seq,
            id,
            bytes,
            cost_ns,
            start_ns,
            ready_ns,
        });
        LoadTicket { seq }
    }

    fn take(&mut self, ticket: &LoadTicket) -> Result<Inflight> {
        let pos = self
            .inflight
            .iter()
            .position(|f| f.seq == ticket.seq)
            .ok_or_else(|| Error::NotFound(format!("load ticket {}", ticket.seq)))?;
        // PANIC-OK: position() just returned this index under &mut self.
        Ok(self.inflight.remove(pos).expect("position just found"))
    }

    /// Complete an in-flight load: charge its bytes and latency, account
    /// the overlap with evaluation, and hand back the partition.
    pub fn complete(&mut self, ticket: LoadTicket) -> Result<Arc<MicroPartition>> {
        let load = self.take(&ticket)?;
        let part = self.table.partition(load.id)?;
        self.io.record_partition_load(load.bytes, &self.model);
        // Transfer window [start, ready): whatever part of it the evaluator
        // spent busy (or that has already elapsed on the lane's timeline)
        // was hidden by the pipeline.
        let overlapped = self
            .eval_busy_until
            .min(load.ready_ns)
            .saturating_sub(load.start_ns);
        self.io.record_io_overlap(overlapped);
        self.eval_busy_until = self.eval_busy_until.max(load.ready_ns);
        Ok(part)
    }

    /// Cancel an in-flight load before completion: zero bytes and zero
    /// latency are charged, and the loader stream is refunded — loads
    /// queued behind the cancelled one shift earlier by its cost.
    pub fn cancel(&mut self, ticket: LoadTicket) {
        let Ok(load) = self.take(&ticket) else {
            return;
        };
        self.io.record_load_cancelled();
        self.loader_busy_until = self.loader_busy_until.saturating_sub(load.cost_ns);
        for f in self.inflight.iter_mut().filter(|f| f.seq > load.seq) {
            f.start_ns = f.start_ns.saturating_sub(load.cost_ns);
            f.ready_ns = f.ready_ns.saturating_sub(load.cost_ns);
        }
    }

    /// Advance the evaluate cursor by the simulated cost of evaluating
    /// `rows` rows and charge it as CPU time.
    pub fn note_evaluated(&mut self, rows: u64) {
        let ns = rows.saturating_mul(self.model.eval_ns_per_row);
        self.eval_busy_until += ns;
        self.io.record_cpu(ns);
    }

    /// Close the lane: record its pipeline makespan as simulated
    /// wall-clock. Remaining in-flight loads are cancelled (free).
    pub fn finish(&mut self) {
        while let Some(f) = self.inflight.front() {
            let ticket = LoadTicket { seq: f.seq };
            self.cancel(ticket);
        }
        if !self.finished {
            self.finished = true;
            self.io.record_wall(self.eval_busy_until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use snowprune_types::{ScalarType, Value};

    fn table() -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        let mut b = TableBuilder::new("t", schema).target_rows_per_partition(10);
        for i in 0..40i64 {
            b.push_row(vec![Value::Int(i)]);
        }
        Arc::new(b.build())
    }

    fn submit(lake: &mut AsyncLake, t: &Table, id: u64) -> LoadTicket {
        lake.submit_load(id, t.partition_meta(id).unwrap().bytes)
    }

    fn model() -> IoCostModel {
        IoCostModel {
            latency_ns_per_request: 1_000,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 100,
        }
    }

    #[test]
    fn blocking_schedule_has_no_overlap() {
        let t = table();
        let io = IoStats::new();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model());
        for id in 0..4u64 {
            let ticket = submit(&mut lake, &t, id);
            let part = lake.complete(ticket).unwrap();
            lake.note_evaluated(part.row_count() as u64);
        }
        lake.finish();
        let s = io.snapshot();
        assert_eq!(s.partitions_loaded, 4);
        assert_eq!(s.io_overlapped_ns, 0);
        // wall = io + cpu exactly.
        assert_eq!(s.simulated_wall_ns, s.simulated_io_ns + s.simulated_cpu_ns);
        assert_eq!(s.simulated_io_ns, 4 * 1_000);
        assert_eq!(s.simulated_cpu_ns, 4 * 10 * 100);
    }

    #[test]
    fn prefetched_schedule_overlaps_io_with_eval() {
        let t = table();
        let io = IoStats::new();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model());
        // Depth-2 pipeline over 4 partitions.
        let mut tickets = VecDeque::new();
        tickets.push_back(submit(&mut lake, &t, 0));
        tickets.push_back(submit(&mut lake, &t, 1));
        for next in 2..=4u64 {
            let part = lake.complete(tickets.pop_front().unwrap()).unwrap();
            lake.note_evaluated(part.row_count() as u64);
            if next < 4 {
                let ticket = submit(&mut lake, &t, next);
                tickets.push_back(ticket);
            }
        }
        let part = lake.complete(tickets.pop_front().unwrap()).unwrap();
        lake.note_evaluated(part.row_count() as u64);
        lake.finish();
        let s = io.snapshot();
        assert_eq!(s.partitions_loaded, 4);
        assert!(s.io_overlapped_ns > 0, "pipeline must hide some I/O");
        assert_eq!(
            s.simulated_wall_ns,
            s.simulated_io_ns + s.simulated_cpu_ns - s.io_overlapped_ns
        );
        // io (1000/partition) and cpu (1000/partition) are equal here, so a
        // full overlap bounds the makespan below by max(io, cpu) = 4000.
        assert!(s.simulated_wall_ns >= 4_000);
        assert!(s.simulated_wall_ns < 8_000);
    }

    #[test]
    fn cancel_charges_nothing_and_refunds_the_stream() {
        let t = table();
        let io = IoStats::new();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model());
        let t0 = submit(&mut lake, &t, 0);
        let t1 = submit(&mut lake, &t, 1);
        let t2 = submit(&mut lake, &t, 2);
        lake.cancel(t1);
        let s = io.snapshot();
        assert_eq!(s.loads_cancelled, 1);
        assert_eq!(s.partitions_loaded, 0);
        assert_eq!(s.bytes_loaded, 0);
        assert_eq!(s.simulated_io_ns, 0);
        // p2 shifted into p1's slot: completing p0 then p2 behaves exactly
        // like a two-load stream.
        let _ = lake.complete(t0).unwrap();
        let _ = lake.complete(t2).unwrap();
        lake.finish();
        let s = io.snapshot();
        assert_eq!(s.partitions_loaded, 2);
        assert_eq!(s.simulated_wall_ns, 2_000);
    }

    #[test]
    fn finish_cancels_leftover_inflight() {
        let t = table();
        let io = IoStats::new();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model());
        let _t0 = submit(&mut lake, &t, 0);
        let _t1 = submit(&mut lake, &t, 1);
        lake.finish();
        let s = io.snapshot();
        assert_eq!(s.loads_cancelled, 2);
        assert_eq!(s.bytes_loaded, 0);
        assert_eq!(s.simulated_wall_ns, 0);
    }

    #[test]
    fn ticket_is_single_use_and_unknown_ids_fail_at_complete() {
        let t = table();
        let io = IoStats::new();
        let mut lake = AsyncLake::new(Arc::clone(&t), io.clone(), model());
        let ticket = submit(&mut lake, &t, 0);
        lake.complete(ticket).unwrap();
        assert_eq!(lake.in_flight(), 0);
        // An unknown id surfaces at completion, with nothing charged.
        let bogus = lake.submit_load(999, 64);
        assert!(lake.complete(bogus).is_err());
        assert_eq!(io.snapshot().partitions_loaded, 1);
    }
}
