//! Tables: ordered collections of micro-partitions plus a version counter
//! for DML tracking (consumed by the predicate cache, §8.2).

use std::cmp::Ordering;
use std::sync::Arc;

use snowprune_types::{Error, Result, Value, DEFAULT_STRING_PREFIX};

use crate::column::{ColumnBuilder, ColumnChunk};
use crate::io::{IoCostModel, IoStats};
use crate::partition::{MicroPartition, PartitionId, PartitionMeta};
use crate::schema::Schema;

/// How rows are laid out across micro-partitions at build time. The paper
/// stresses (§1) that achievable pruning depends primarily on this layout.
#[derive(Clone, Debug, Default)]
pub enum Layout {
    /// Keep insertion order.
    #[default]
    Natural,
    /// Sort by the named columns before partitioning (clustering keys).
    ClusterBy(Vec<String>),
    /// Deterministically shuffle rows (worst case for pruning).
    Shuffle(u64),
}

/// Builder that accumulates rows and splits them into micro-partitions.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
    target_rows_per_partition: usize,
    layout: Layout,
    string_prefix: usize,
}

impl TableBuilder {
    /// An empty builder for table `name`.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
            target_rows_per_partition: 10_000,
            layout: Layout::Natural,
            string_prefix: DEFAULT_STRING_PREFIX,
        }
    }

    /// Target number of rows per micro-partition (the stand-in for the
    /// 50–500 MB micro-partition size of §2).
    pub fn target_rows_per_partition(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.target_rows_per_partition = n;
        self
    }

    /// Physical row order applied before partition splitting.
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Metadata string-truncation length (see `snowprune_types::zonemap`).
    pub fn string_prefix(mut self, n: usize) -> Self {
        self.string_prefix = n;
        self
    }

    /// Append one row.
    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// Append many rows.
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Vec<Value>>) {
        self.rows.extend(rows);
    }

    /// Rows accumulated so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Apply the layout, split into micro-partitions, and build the
    /// table at version 0.
    pub fn build(self) -> Table {
        let TableBuilder {
            name,
            schema,
            mut rows,
            target_rows_per_partition,
            layout,
            string_prefix,
        } = self;
        apply_layout(&mut rows, &schema, &layout);
        let mut table = Table {
            name,
            schema,
            partitions: Vec::new(),
            version: 0,
            next_partition_id: 0,
            string_prefix,
            target_rows_per_partition,
        };
        table.append_partitions(rows);
        table
    }
}

fn apply_layout(rows: &mut [Vec<Value>], schema: &Schema, layout: &Layout) {
    match layout {
        Layout::Natural => {}
        Layout::ClusterBy(cols) => {
            let idxs: Vec<usize> = cols
                .iter()
                // PANIC-OK: clustering layout is validated against the schema
                // by the table builder before rows are partitioned.
                .map(|c| schema.index_of(c).expect("clustering column exists"))
                .collect();
            rows.sort_by(|a, b| {
                for &i in &idxs {
                    match a[i].total_ord_cmp(&b[i]) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            });
        }
        Layout::Shuffle(seed) => {
            // Fisher–Yates with a splitmix64 stream; deterministic per seed.
            let mut state = *seed ^ 0x9e37_79b9_7f4a_7c15;
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for i in (1..rows.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                rows.swap(i, j);
            }
        }
    }
}

/// A table: schema + micro-partitions. DML operations bump `version` and
/// report which partitions changed, which the predicate cache consumes.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    partitions: Vec<Arc<MicroPartition>>,
    version: u64,
    next_partition_id: u64,
    string_prefix: usize,
    target_rows_per_partition: usize,
}

/// Result of a DML statement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DmlResult {
    /// Rows inserted, updated, or deleted.
    pub rows_affected: u64,
    /// Partitions added by the statement (INSERTs and rewrites).
    pub partitions_added: Vec<PartitionId>,
    /// Partitions removed/rewritten by the statement.
    pub partitions_removed: Vec<PartitionId>,
    /// Table version after the statement.
    pub new_version: u64,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Version, bumped by every DML statement.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of micro-partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Rows across all partitions.
    pub fn total_rows(&self) -> u64 {
        self.partitions.iter().map(|p| p.meta.row_count).sum()
    }

    /// All partition ids in table order (the unpruned scan set).
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        self.partitions.iter().map(|p| p.meta.id).collect()
    }

    /// Read partition metadata through the metadata service, charging one
    /// metadata read per partition.
    pub fn read_metadata(&self, io: &IoStats, model: &IoCostModel) -> Vec<PartitionMeta> {
        self.partitions
            .iter()
            .map(|p| {
                io.record_metadata_read(model);
                p.meta.clone()
            })
            .collect()
    }

    /// Metadata access without I/O accounting (for tests and planning code
    /// that has already paid for the metadata).
    pub fn metadata(&self) -> Vec<&PartitionMeta> {
        self.partitions.iter().map(|p| &p.meta).collect()
    }

    /// Metadata of partition `id`, without I/O accounting.
    pub fn partition_meta(&self, id: PartitionId) -> Result<&PartitionMeta> {
        self.find(id).map(|p| &p.meta)
    }

    /// Load a partition's data from the object store, charging its bytes.
    pub fn load_partition(
        &self,
        id: PartitionId,
        io: &IoStats,
        model: &IoCostModel,
    ) -> Result<Arc<MicroPartition>> {
        let p = self.find(id)?;
        io.record_partition_load(p.meta.bytes, model);
        Ok(Arc::clone(p))
    }

    /// Direct access without accounting (tests, and [`crate::AsyncLake`],
    /// which does its own completion-time accounting).
    pub fn partition(&self, id: PartitionId) -> Result<Arc<MicroPartition>> {
        self.find(id).map(Arc::clone)
    }

    fn find(&self, id: PartitionId) -> Result<&Arc<MicroPartition>> {
        self.partitions
            .iter()
            .find(|p| p.meta.id == id)
            .ok_or_else(|| Error::NotFound(format!("partition {id} of table {}", self.name)))
    }

    fn append_partitions(&mut self, rows: Vec<Vec<Value>>) -> Vec<PartitionId> {
        let mut added = Vec::new();
        for chunk in rows.chunks(self.target_rows_per_partition) {
            if chunk.is_empty() {
                continue;
            }
            let mut builders: Vec<ColumnBuilder> = self
                .schema
                .fields()
                .iter()
                .map(|f| ColumnBuilder::new(f.ty))
                .collect();
            for row in chunk {
                for (b, v) in builders.iter_mut().zip(row.iter()) {
                    b.push(v.clone());
                }
            }
            let columns: Vec<ColumnChunk> =
                builders.into_iter().map(ColumnBuilder::finish).collect();
            let id = self.next_partition_id;
            self.next_partition_id += 1;
            let p = MicroPartition::from_chunks_with_prefix(
                id,
                &self.schema,
                columns,
                self.string_prefix,
            );
            added.push(id);
            self.partitions.push(Arc::new(p));
        }
        added
    }

    /// INSERT: append rows as new micro-partitions (immutable partitions,
    /// as in the paper's storage model).
    pub fn insert_rows(&mut self, rows: Vec<Vec<Value>>) -> DmlResult {
        let n = rows.len() as u64;
        let added = self.append_partitions(rows);
        self.version += 1;
        DmlResult {
            rows_affected: n,
            partitions_added: added,
            partitions_removed: Vec::new(),
            new_version: self.version,
        }
    }

    /// DELETE rows matching `pred`; affected partitions are rewritten
    /// (copy-on-write, preserving partition immutability).
    pub fn delete_rows(&mut self, pred: impl Fn(&[Value]) -> bool) -> DmlResult {
        self.rewrite_rows(|row| if pred(row) { None } else { Some(row.to_vec()) })
    }

    /// UPDATE: apply `f` to each row; `f` returns the new row.
    pub fn update_rows(&mut self, f: impl Fn(&[Value]) -> Vec<Value>) -> DmlResult {
        self.update_rows_tracked(f).0
    }

    /// UPDATE that additionally reports *which columns actually changed*
    /// (schema names, in schema order). The predicate cache's DML rules
    /// hinge on the true changed-column set — `Session::update_rows` uses
    /// this so callers cannot under-declare what an update touched.
    pub fn update_rows_tracked(
        &mut self,
        f: impl Fn(&[Value]) -> Vec<Value>,
    ) -> (DmlResult, Vec<String>) {
        let ncols = self.schema.len();
        let mut col_changed = vec![false; ncols];
        let mut changed_rows = 0u64;
        let res = self.rewrite_rows(|row| {
            let new = f(row);
            debug_assert_eq!(new.len(), row.len());
            let mut any = false;
            for (i, (old_v, new_v)) in row.iter().zip(new.iter()).enumerate() {
                if old_v != new_v {
                    col_changed[i] = true;
                    any = true;
                }
            }
            if any {
                changed_rows += 1;
            }
            Some(new)
        });
        let changed_columns = self
            .schema
            .fields()
            .iter()
            .zip(&col_changed)
            .filter(|(_, c)| **c)
            .map(|(f, _)| f.name.clone())
            .collect();
        (
            DmlResult {
                rows_affected: changed_rows,
                ..res
            },
            changed_columns,
        )
    }

    fn rewrite_rows(&mut self, mut f: impl FnMut(&[Value]) -> Option<Vec<Value>>) -> DmlResult {
        let mut removed = Vec::new();
        let mut added = Vec::new();
        let mut affected = 0u64;
        let old = std::mem::take(&mut self.partitions);
        for p in old {
            let mut new_rows = Vec::with_capacity(p.row_count());
            let mut dirty = false;
            for i in 0..p.row_count() {
                let row = p.row(i);
                match f(&row) {
                    Some(new) => {
                        if new != row {
                            dirty = true;
                            affected += 1;
                        }
                        new_rows.push(new);
                    }
                    None => {
                        dirty = true;
                        affected += 1;
                    }
                }
            }
            if dirty {
                removed.push(p.meta.id);
                added.extend(self.append_partitions(new_rows));
            } else {
                self.partitions.push(p);
            }
        }
        self.version += 1;
        DmlResult {
            rows_affected: affected,
            partitions_added: added,
            partitions_removed: removed,
            new_version: self.version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use snowprune_types::ScalarType;

    fn build(layout: Layout, per_part: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", ScalarType::Int),
            Field::new("v", ScalarType::Str),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(per_part)
            .layout(layout);
        for i in 0..100i64 {
            b.push_row(vec![Value::Int(97 - i), Value::Str(format!("row{i}"))]);
        }
        b.build()
    }

    #[test]
    fn splits_into_partitions() {
        let t = build(Layout::Natural, 30);
        assert_eq!(t.partition_count(), 4); // 30+30+30+10
        assert_eq!(t.total_rows(), 100);
        let last = t.partition(3).unwrap();
        assert_eq!(last.row_count(), 10);
    }

    #[test]
    fn clustering_tightens_zone_maps() {
        let natural = build(Layout::Shuffle(42), 25);
        let clustered = build(Layout::ClusterBy(vec!["k".into()]), 25);
        // With clustering, partition 0 holds the 25 smallest keys.
        let c0 = clustered.partition(0).unwrap();
        assert_eq!(c0.meta.zone_map(0).min, Some(Value::Int(-2)));
        assert_eq!(c0.meta.zone_map(0).max, Some(Value::Int(22)));
        // Shuffled partitions have much wider ranges than clustered ones.
        let width = |t: &Table| -> i64 {
            t.metadata()
                .iter()
                .map(|m| {
                    m.zone_map(0).max.as_ref().unwrap().as_i64().unwrap()
                        - m.zone_map(0).min.as_ref().unwrap().as_i64().unwrap()
                })
                .sum()
        };
        assert!(width(&natural) > 2 * width(&clustered));
    }

    #[test]
    fn load_accounts_io() {
        let t = build(Layout::Natural, 50);
        let io = IoStats::new();
        let model = IoCostModel::default();
        t.read_metadata(&io, &model);
        t.load_partition(0, &io, &model).unwrap();
        let s = io.snapshot();
        assert_eq!(s.metadata_reads, 2);
        assert_eq!(s.partitions_loaded, 1);
        assert!(s.bytes_loaded > 0);
    }

    #[test]
    fn insert_appends_partitions_and_bumps_version() {
        let mut t = build(Layout::Natural, 50);
        assert_eq!(t.version(), 0);
        let res = t.insert_rows(vec![vec![Value::Int(999), Value::Str("new".into())]]);
        assert_eq!(res.rows_affected, 1);
        assert_eq!(res.partitions_added.len(), 1);
        assert!(res.partitions_removed.is_empty());
        assert_eq!(t.version(), 1);
        assert_eq!(t.total_rows(), 101);
    }

    #[test]
    fn delete_rewrites_only_affected_partitions() {
        let mut t = build(Layout::ClusterBy(vec!["k".into()]), 25);
        // Keys run -2..=97; delete a key living in exactly one partition.
        let res = t.delete_rows(|row| row[0] == Value::Int(0));
        assert_eq!(res.rows_affected, 1);
        assert_eq!(res.partitions_removed.len(), 1);
        assert_eq!(t.total_rows(), 99);
        // Untouched partitions keep their ids.
        assert!(t.partition(3).is_ok());
    }

    #[test]
    fn update_reports_changed_rows() {
        let mut t = build(Layout::Natural, 50);
        let res = t.update_rows(|row| {
            let mut r = row.to_vec();
            if r[0] == Value::Int(5) {
                r[1] = Value::Str("updated".into());
            }
            r
        });
        assert_eq!(res.rows_affected, 1);
        assert_eq!(t.total_rows(), 100);
    }

    #[test]
    fn tracked_update_reports_changed_columns() {
        let mut t = build(Layout::Natural, 50);
        let (res, cols) = t.update_rows_tracked(|row| {
            let mut r = row.to_vec();
            if r[0] == Value::Int(5) {
                r[1] = Value::Str("updated".into());
            }
            r
        });
        assert_eq!(res.rows_affected, 1);
        assert_eq!(cols, vec!["v".to_owned()]);
        // A no-op update changes no columns and rewrites no partitions.
        let (res, cols) = t.update_rows_tracked(|row| row.to_vec());
        assert_eq!(res.rows_affected, 0);
        assert!(cols.is_empty());
        assert!(res.partitions_removed.is_empty());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let a = build(Layout::Shuffle(7), 30);
        let b = build(Layout::Shuffle(7), 30);
        assert_eq!(
            a.partition(0).unwrap().row(0),
            b.partition(0).unwrap().row(0)
        );
    }
}
