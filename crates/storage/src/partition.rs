//! Micro-partitions: the unit of pruning.
//!
//! Regular tables are implicitly horizontally partitioned into
//! micro-partitions (§2 "Data Storage"). Metadata ([`PartitionMeta`]) lives
//! in the metadata service and can be read without touching the data;
//! loading the data itself goes through the simulated object store and is
//! charged to [`crate::io::IoStats`].

use snowprune_types::{ZoneMap, DEFAULT_STRING_PREFIX};

use crate::column::ColumnChunk;
use crate::schema::Schema;

/// Identifier of a micro-partition within its table.
pub type PartitionId = u64;

/// Partition-level metadata kept in the metadata store.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionMeta {
    /// Partition id within its table.
    pub id: PartitionId,
    /// Rows in the partition.
    pub row_count: u64,
    /// Approximate encoded size, used for I/O accounting.
    pub bytes: u64,
    /// One zone map per schema field, in schema order.
    pub zone_maps: Vec<ZoneMap>,
}

impl PartitionMeta {
    /// Zone map for a column by index.
    pub fn zone_map(&self, col: usize) -> &ZoneMap {
        &self.zone_maps[col]
    }
}

/// A micro-partition: metadata plus PAX-layout column chunks.
#[derive(Clone, Debug)]
pub struct MicroPartition {
    /// The partition's metadata (id, zone maps, size).
    pub meta: PartitionMeta,
    /// One chunk per schema column, all of equal length.
    pub columns: Vec<ColumnChunk>,
}

impl MicroPartition {
    /// Build a partition (and its zone maps) from column chunks.
    pub fn from_chunks(id: PartitionId, schema: &Schema, columns: Vec<ColumnChunk>) -> Self {
        Self::from_chunks_with_prefix(id, schema, columns, DEFAULT_STRING_PREFIX)
    }

    /// As [`MicroPartition::from_chunks`] with an explicit string-metadata
    /// truncation length.
    pub fn from_chunks_with_prefix(
        id: PartitionId,
        schema: &Schema,
        columns: Vec<ColumnChunk>,
        string_prefix: usize,
    ) -> Self {
        assert_eq!(columns.len(), schema.len(), "column count != schema width");
        let row_count = columns.first().map_or(0, ColumnChunk::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), row_count, "ragged column {i}");
            assert_eq!(
                c.scalar_type(),
                schema.fields()[i].ty,
                "column {i} type mismatch"
            );
        }
        let zone_maps = columns
            .iter()
            .map(|c| {
                let values: Vec<_> = c.iter_values().collect();
                ZoneMap::build(values.iter(), string_prefix)
            })
            .collect();
        let bytes = columns.iter().map(ColumnChunk::approx_bytes).sum::<usize>() as u64;
        MicroPartition {
            meta: PartitionMeta {
                id,
                row_count: row_count as u64,
                bytes,
                zone_maps,
            },
            columns,
        }
    }

    /// Rows in the partition.
    pub fn row_count(&self) -> usize {
        self.meta.row_count as usize
    }

    /// The chunk of column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnChunk {
        &self.columns[idx]
    }

    /// Materialize row `i` across all columns.
    pub fn row(&self, i: usize) -> Vec<snowprune_types::Value> {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use crate::schema::Field;
    use snowprune_types::{ScalarType, Value};

    fn sample() -> (Schema, MicroPartition) {
        let schema = Schema::new(vec![
            Field::new("id", ScalarType::Int),
            Field::new("name", ScalarType::Str),
        ]);
        let mut ids = ColumnBuilder::new(ScalarType::Int);
        let mut names = ColumnBuilder::new(ScalarType::Str);
        for (i, n) in [(3i64, "carol"), (1, "alice"), (2, "bob")] {
            ids.push(Value::Int(i));
            names.push(Value::Str(n.into()));
        }
        let p = MicroPartition::from_chunks(7, &schema, vec![ids.finish(), names.finish()]);
        (schema, p)
    }

    #[test]
    fn builds_zone_maps() {
        let (_, p) = sample();
        assert_eq!(p.meta.id, 7);
        assert_eq!(p.meta.row_count, 3);
        assert_eq!(p.meta.zone_map(0).min, Some(Value::Int(1)));
        assert_eq!(p.meta.zone_map(0).max, Some(Value::Int(3)));
        assert_eq!(p.meta.zone_map(1).min, Some(Value::Str("alice".into())));
        assert_eq!(p.meta.zone_map(1).max, Some(Value::Str("carol".into())));
        assert!(p.meta.bytes > 0);
    }

    #[test]
    fn row_materialization() {
        let (_, p) = sample();
        assert_eq!(p.row(1), vec![Value::Int(1), Value::Str("alice".into())]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_columns() {
        let schema = Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
        ]);
        let mut a = ColumnBuilder::new(ScalarType::Int);
        a.push(Value::Int(1));
        let b = ColumnBuilder::new(ScalarType::Int);
        MicroPartition::from_chunks(0, &schema, vec![a.finish(), b.finish()]);
    }
}
