//! I/O accounting for the simulated decoupled storage architecture.
//!
//! In a cloud data platform, pruning saves (a) network I/O for partition
//! loads, (b) metadata-service traffic, and (c) scan-set (de)serialization
//! (§2.1 "Summary"). Real hardware is replaced by counters plus a simple
//! linear cost model so benchmarks can report "bytes not loaded" and
//! "simulated I/O time saved" deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost model for the simulated object store.
#[derive(Clone, Copy, Debug)]
pub struct IoCostModel {
    /// Fixed per-partition request latency in nanoseconds (object-store GET).
    pub latency_ns_per_request: u64,
    /// Sustained throughput in bytes per second once a request is running.
    pub throughput_bytes_per_sec: u64,
    /// Metadata-service lookup cost in nanoseconds per partition metadata read.
    pub metadata_ns_per_read: u64,
    /// Simulated CPU cost of predicate evaluation per row — the "evaluate"
    /// stage of the prefetch pipeline, overlapped against in-flight loads.
    pub eval_ns_per_row: u64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        // Loosely modelled on cloud object storage: ~10ms first-byte latency,
        // ~500 MB/s per stream, sub-microsecond metadata KV lookups (cached),
        // and a few million predicate evaluations per second per core.
        IoCostModel {
            latency_ns_per_request: 10_000_000,
            throughput_bytes_per_sec: 500_000_000,
            metadata_ns_per_read: 500,
            eval_ns_per_row: 250,
        }
    }
}

impl IoCostModel {
    /// A model in which all I/O and simulated CPU is free (for
    /// microbenchmarks that want to isolate real CPU work).
    pub fn free() -> Self {
        IoCostModel {
            latency_ns_per_request: 0,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 0,
        }
    }

    /// Simulated cost of one partition GET of `bytes` bytes.
    pub fn load_cost_ns(&self, bytes: u64) -> u64 {
        let transfer = if self.throughput_bytes_per_sec == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000_000) / self.throughput_bytes_per_sec.max(1)
        };
        self.latency_ns_per_request.saturating_add(transfer)
    }
}

/// Thread-safe I/O counters. Cloned handles share the same counters.
#[derive(Clone, Debug, Default)]
pub struct IoStats {
    inner: Arc<IoCounters>,
}

#[derive(Debug, Default)]
struct IoCounters {
    metadata_reads: AtomicU64,
    partitions_loaded: AtomicU64,
    bytes_loaded: AtomicU64,
    simulated_io_ns: AtomicU64,
    loads_cancelled: AtomicU64,
    io_overlapped_ns: AtomicU64,
    simulated_cpu_ns: AtomicU64,
    simulated_wall_ns: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Zone-map/metadata reads (one per partition considered at compile).
    pub metadata_reads: u64,
    /// Micro-partitions actually loaded from the simulated object store.
    pub partitions_loaded: u64,
    /// Bytes of partition data loaded.
    pub bytes_loaded: u64,
    /// Simulated object-store I/O time (request latency + throughput).
    pub simulated_io_ns: u64,
    /// In-flight prefetch loads cancelled before completion; charged zero
    /// bytes and zero latency.
    pub loads_cancelled: u64,
    /// Portion of `simulated_io_ns` hidden behind predicate evaluation by
    /// the prefetch pipeline.
    pub io_overlapped_ns: u64,
    /// Simulated predicate-evaluation CPU time (the evaluate stage).
    pub simulated_cpu_ns: u64,
    /// Simulated wall-clock: the sum of per-lane pipeline makespans. With
    /// prefetching this approaches `max(io, cpu)` per lane instead of the
    /// blocking model's `io + cpu`; the identity
    /// `wall = load_io + cpu - overlapped` holds exactly (metadata-read
    /// time is charged to `simulated_io_ns` but is not lane time).
    pub simulated_wall_ns: u64,
}

impl IoSnapshot {
    /// Accumulate another snapshot's counters (aggregating per-query
    /// deltas into totals). Lives here, next to the fields, so a future
    /// counter cannot be silently dropped from callers' aggregations.
    pub fn merge(&mut self, other: &IoSnapshot) {
        self.metadata_reads += other.metadata_reads;
        self.partitions_loaded += other.partitions_loaded;
        self.bytes_loaded += other.bytes_loaded;
        self.simulated_io_ns += other.simulated_io_ns;
        self.loads_cancelled += other.loads_cancelled;
        self.io_overlapped_ns += other.io_overlapped_ns;
        self.simulated_cpu_ns += other.simulated_cpu_ns;
        self.simulated_wall_ns += other.simulated_wall_ns;
    }

    /// Load-stage I/O time in nanoseconds — `simulated_io_ns` without the
    /// metadata-service share, recovered exactly from the lane identity
    /// `wall = load_io + cpu - overlapped` (metadata reads are charged to
    /// `simulated_io_ns` but are not lane time).
    pub fn load_io_ns(&self) -> u64 {
        (self.simulated_wall_ns + self.io_overlapped_ns).saturating_sub(self.simulated_cpu_ns)
    }

    /// Load-stage I/O the prefetch pipeline failed to hide behind
    /// evaluation (`load_io_ns - io_overlapped_ns`, i.e. `wall - cpu`).
    /// This is the feedback signal adaptive prefetch depth steers on: a
    /// large unhidden share means the lane is I/O-bound and a deeper
    /// window would help; zero means evaluation already covers every load.
    pub fn unhidden_io_ns(&self) -> u64 {
        self.simulated_wall_ns.saturating_sub(self.simulated_cpu_ns)
    }

    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            metadata_reads: self.metadata_reads - earlier.metadata_reads,
            partitions_loaded: self.partitions_loaded - earlier.partitions_loaded,
            bytes_loaded: self.bytes_loaded - earlier.bytes_loaded,
            simulated_io_ns: self.simulated_io_ns - earlier.simulated_io_ns,
            loads_cancelled: self.loads_cancelled - earlier.loads_cancelled,
            io_overlapped_ns: self.io_overlapped_ns - earlier.io_overlapped_ns,
            simulated_cpu_ns: self.simulated_cpu_ns - earlier.simulated_cpu_ns,
            simulated_wall_ns: self.simulated_wall_ns - earlier.simulated_wall_ns,
        }
    }
}

impl IoStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one zone-map/metadata read.
    pub fn record_metadata_read(&self, model: &IoCostModel) {
        self.inner.metadata_reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .simulated_io_ns
            .fetch_add(model.metadata_ns_per_read, Ordering::Relaxed);
    }

    /// Record one completed partition load of `bytes` bytes.
    pub fn record_partition_load(&self, bytes: u64, model: &IoCostModel) {
        self.inner.partitions_loaded.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_loaded.fetch_add(bytes, Ordering::Relaxed);
        self.inner
            .simulated_io_ns
            .fetch_add(model.load_cost_ns(bytes), Ordering::Relaxed);
    }

    /// Record an in-flight prefetch load that was cancelled before
    /// completion: nothing else is charged (no bytes, no latency).
    pub fn record_load_cancelled(&self) {
        self.inner.loads_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record I/O time that the prefetch pipeline hid behind evaluation.
    pub fn record_io_overlap(&self, ns: u64) {
        self.inner.io_overlapped_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record simulated evaluate-stage CPU time.
    pub fn record_cpu(&self, ns: u64) {
        self.inner.simulated_cpu_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one scan lane's simulated pipeline makespan.
    pub fn record_wall(&self, ns: u64) {
        self.inner
            .simulated_wall_ns
            .fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            metadata_reads: self.inner.metadata_reads.load(Ordering::Relaxed),
            partitions_loaded: self.inner.partitions_loaded.load(Ordering::Relaxed),
            bytes_loaded: self.inner.bytes_loaded.load(Ordering::Relaxed),
            simulated_io_ns: self.inner.simulated_io_ns.load(Ordering::Relaxed),
            loads_cancelled: self.inner.loads_cancelled.load(Ordering::Relaxed),
            io_overlapped_ns: self.inner.io_overlapped_ns.load(Ordering::Relaxed),
            simulated_cpu_ns: self.inner.simulated_cpu_ns.load(Ordering::Relaxed),
            simulated_wall_ns: self.inner.simulated_wall_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let io = IoStats::new();
        let model = IoCostModel::default();
        io.record_metadata_read(&model);
        io.record_partition_load(1_000_000, &model);
        io.record_partition_load(2_000_000, &model);
        let s = io.snapshot();
        assert_eq!(s.metadata_reads, 1);
        assert_eq!(s.partitions_loaded, 2);
        assert_eq!(s.bytes_loaded, 3_000_000);
        assert!(s.simulated_io_ns > 2 * model.latency_ns_per_request);
    }

    #[test]
    fn clones_share_counters() {
        let io = IoStats::new();
        let io2 = io.clone();
        io2.record_partition_load(10, &IoCostModel::free());
        assert_eq!(io.snapshot().partitions_loaded, 1);
        assert_eq!(io.snapshot().simulated_io_ns, 0);
    }

    #[test]
    fn cancelled_loads_charge_nothing() {
        let io = IoStats::new();
        let model = IoCostModel::default();
        io.record_load_cancelled();
        io.record_load_cancelled();
        let s = io.snapshot();
        assert_eq!(s.loads_cancelled, 2);
        assert_eq!(s.partitions_loaded, 0);
        assert_eq!(s.bytes_loaded, 0);
        assert_eq!(s.simulated_io_ns, 0);
        let _ = model;
    }

    #[test]
    fn overlap_identity_fields_accumulate() {
        let io = IoStats::new();
        io.record_cpu(700);
        io.record_io_overlap(300);
        io.record_wall(400);
        let s = io.snapshot();
        assert_eq!(s.simulated_cpu_ns, 700);
        assert_eq!(s.io_overlapped_ns, 300);
        assert_eq!(s.simulated_wall_ns, 400);
        // wall = io + cpu - overlapped (io contribution is 0 here).
        assert_eq!(
            s.simulated_wall_ns,
            s.simulated_io_ns + s.simulated_cpu_ns - s.io_overlapped_ns
        );
    }

    #[test]
    fn snapshot_delta() {
        let io = IoStats::new();
        let model = IoCostModel::free();
        io.record_partition_load(10, &model);
        let before = io.snapshot();
        io.record_partition_load(20, &model);
        let delta = io.snapshot().since(&before);
        assert_eq!(delta.partitions_loaded, 1);
        assert_eq!(delta.bytes_loaded, 20);
    }
}
