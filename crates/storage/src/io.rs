//! I/O accounting for the simulated decoupled storage architecture.
//!
//! In a cloud data platform, pruning saves (a) network I/O for partition
//! loads, (b) metadata-service traffic, and (c) scan-set (de)serialization
//! (§2.1 "Summary"). Real hardware is replaced by counters plus a simple
//! linear cost model so benchmarks can report "bytes not loaded" and
//! "simulated I/O time saved" deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost model for the simulated object store.
#[derive(Clone, Copy, Debug)]
pub struct IoCostModel {
    /// Fixed per-partition request latency in nanoseconds (object-store GET).
    pub latency_ns_per_request: u64,
    /// Sustained throughput in bytes per second once a request is running.
    pub throughput_bytes_per_sec: u64,
    /// Metadata-service lookup cost in nanoseconds per partition metadata read.
    pub metadata_ns_per_read: u64,
}

impl Default for IoCostModel {
    fn default() -> Self {
        // Loosely modelled on cloud object storage: ~10ms first-byte latency,
        // ~500 MB/s per stream, sub-microsecond metadata KV lookups (cached).
        IoCostModel {
            latency_ns_per_request: 10_000_000,
            throughput_bytes_per_sec: 500_000_000,
            metadata_ns_per_read: 500,
        }
    }
}

impl IoCostModel {
    /// A model in which all I/O is free (for microbenchmarks that want to
    /// isolate CPU work).
    pub fn free() -> Self {
        IoCostModel {
            latency_ns_per_request: 0,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
        }
    }

    fn load_cost_ns(&self, bytes: u64) -> u64 {
        let transfer = if self.throughput_bytes_per_sec == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000_000) / self.throughput_bytes_per_sec.max(1)
        };
        self.latency_ns_per_request.saturating_add(transfer)
    }
}

/// Thread-safe I/O counters. Cloned handles share the same counters.
#[derive(Clone, Debug, Default)]
pub struct IoStats {
    inner: Arc<IoCounters>,
}

#[derive(Debug, Default)]
struct IoCounters {
    metadata_reads: AtomicU64,
    partitions_loaded: AtomicU64,
    bytes_loaded: AtomicU64,
    simulated_io_ns: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub metadata_reads: u64,
    pub partitions_loaded: u64,
    pub bytes_loaded: u64,
    pub simulated_io_ns: u64,
}

impl IoSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            metadata_reads: self.metadata_reads - earlier.metadata_reads,
            partitions_loaded: self.partitions_loaded - earlier.partitions_loaded,
            bytes_loaded: self.bytes_loaded - earlier.bytes_loaded,
            simulated_io_ns: self.simulated_io_ns - earlier.simulated_io_ns,
        }
    }
}

impl IoStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_metadata_read(&self, model: &IoCostModel) {
        self.inner.metadata_reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .simulated_io_ns
            .fetch_add(model.metadata_ns_per_read, Ordering::Relaxed);
    }

    pub fn record_partition_load(&self, bytes: u64, model: &IoCostModel) {
        self.inner.partitions_loaded.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_loaded.fetch_add(bytes, Ordering::Relaxed);
        self.inner
            .simulated_io_ns
            .fetch_add(model.load_cost_ns(bytes), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            metadata_reads: self.inner.metadata_reads.load(Ordering::Relaxed),
            partitions_loaded: self.inner.partitions_loaded.load(Ordering::Relaxed),
            bytes_loaded: self.inner.bytes_loaded.load(Ordering::Relaxed),
            simulated_io_ns: self.inner.simulated_io_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let io = IoStats::new();
        let model = IoCostModel::default();
        io.record_metadata_read(&model);
        io.record_partition_load(1_000_000, &model);
        io.record_partition_load(2_000_000, &model);
        let s = io.snapshot();
        assert_eq!(s.metadata_reads, 1);
        assert_eq!(s.partitions_loaded, 2);
        assert_eq!(s.bytes_loaded, 3_000_000);
        assert!(s.simulated_io_ns > 2 * model.latency_ns_per_request);
    }

    #[test]
    fn clones_share_counters() {
        let io = IoStats::new();
        let io2 = io.clone();
        io2.record_partition_load(10, &IoCostModel::free());
        assert_eq!(io.snapshot().partitions_loaded, 1);
        assert_eq!(io.snapshot().simulated_io_ns, 0);
    }

    #[test]
    fn snapshot_delta() {
        let io = IoStats::new();
        let model = IoCostModel::free();
        io.record_partition_load(10, &model);
        let before = io.snapshot();
        io.record_partition_load(20, &model);
        let delta = io.snapshot().since(&before);
        assert_eq!(delta.partitions_loaded, 1);
        assert_eq!(delta.bytes_loaded, 20);
    }
}
