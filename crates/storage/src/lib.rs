//! The micro-partition storage substrate for `snowprune`.
//!
//! Models the decoupled compute/storage architecture of §2: immutable
//! columnar micro-partitions with zone-map metadata, a metadata service
//! (the [`catalog`]), I/O accounting for the simulated object store, and an
//! Iceberg/Parquet-like [`lake`] format with layered, backfillable
//! metadata (§8.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod io;
pub mod lake;
pub mod partition;
pub mod prefetch;
pub mod schema;
pub mod table;

pub use catalog::{Catalog, TableRef};
pub use column::{Bitmap, ColumnBuilder, ColumnChunk, ColumnValues};
pub use io::{IoCostModel, IoSnapshot, IoStats};
pub use lake::{DataFile, LakePruneStats, LakeTable, ManifestEntry, PageMeta, RowGroup};
pub use partition::{MicroPartition, PartitionId, PartitionMeta};
pub use prefetch::{AsyncLake, LoadTicket};
pub use schema::{Field, Schema};
pub use table::{DmlResult, Layout, Table, TableBuilder};
