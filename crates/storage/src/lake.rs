//! Data-lake tables: Iceberg-like layered metadata over Parquet-like files
//! (§8.1 of the paper).
//!
//! Pruning in a lake happens at three granularities — **file** (manifest
//! metadata), **row group**, and **page** — and any level's metadata may be
//! missing, in which case it can be *backfilled* by scanning the level
//! below (or the data itself).

use std::sync::Arc;

use snowprune_types::{Verdict, ZoneMap, DEFAULT_STRING_PREFIX};

use crate::column::ColumnChunk;
use crate::io::{IoCostModel, IoStats};
use crate::partition::MicroPartition;
use crate::schema::Schema;
use crate::table::Table;

/// Page-level metadata within a row group (like the Parquet page index).
#[derive(Clone, Debug)]
pub struct PageMeta {
    /// First row of the page within its row group.
    pub row_offset: usize,
    /// Rows in the page.
    pub row_count: usize,
    /// One zone map per column; may be absent (no page index written).
    pub zone_maps: Option<Vec<ZoneMap>>,
}

/// A row group: column chunks plus optional metadata.
#[derive(Clone, Debug)]
pub struct RowGroup {
    /// One chunk per schema column.
    pub columns: Vec<ColumnChunk>,
    /// Row-group level zone maps; absent for writers that skipped stats.
    pub zone_maps: Option<Vec<ZoneMap>>,
    /// Page index of the row group.
    pub pages: Vec<PageMeta>,
}

impl RowGroup {
    /// Rows in the group.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, ColumnChunk::len)
    }

    /// Approximate encoded size of the group's chunks.
    pub fn bytes(&self) -> u64 {
        self.columns
            .iter()
            .map(ColumnChunk::approx_bytes)
            .sum::<usize>() as u64
    }
}

/// A data file holding one or more row groups.
#[derive(Clone, Debug)]
pub struct DataFile {
    /// Object-store path of the file.
    pub path: String,
    /// The file's row groups.
    pub row_groups: Vec<RowGroup>,
}

impl DataFile {
    /// Rows across all row groups.
    pub fn row_count(&self) -> usize {
        self.row_groups.iter().map(RowGroup::row_count).sum()
    }
}

/// Manifest entry: file-level metadata, possibly missing.
#[derive(Clone, Debug)]
pub struct ManifestEntry {
    /// Index into [`LakeTable::files`].
    pub file_index: usize,
    /// File-level zone maps; absent for writers that skipped stats.
    pub zone_maps: Option<Vec<ZoneMap>>,
    /// Rows in the file.
    pub row_count: u64,
}

/// An Iceberg-like table: a manifest over data files.
#[derive(Clone, Debug)]
pub struct LakeTable {
    /// Table name.
    pub name: String,
    /// Table schema.
    pub schema: Schema,
    /// The table's data files.
    pub files: Vec<DataFile>,
    /// File-level manifest (one entry per file).
    pub manifest: Vec<ManifestEntry>,
}

/// What a hierarchical prune kept and skipped at each level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LakePruneStats {
    /// Files considered.
    pub files_total: usize,
    /// Files skipped by manifest zone maps.
    pub files_pruned: usize,
    /// Row groups considered (in surviving files).
    pub row_groups_total: usize,
    /// Row groups skipped by group zone maps.
    pub row_groups_pruned: usize,
    /// Pages considered (in surviving row groups).
    pub pages_total: usize,
    /// Pages skipped by the page index.
    pub pages_pruned: usize,
    /// Rows of surviving pages actually scanned.
    pub rows_scanned: u64,
}

impl LakeTable {
    /// Build a lake table from rows, splitting into files × row groups ×
    /// pages. `with_stats` controls which levels get metadata written, so
    /// tests can exercise the backfill path.
    #[allow(clippy::too_many_arguments)]
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Vec<snowprune_types::Value>>,
        rows_per_file: usize,
        rows_per_group: usize,
        rows_per_page: usize,
        file_stats: bool,
        group_stats: bool,
        page_stats: bool,
    ) -> Self {
        assert!(rows_per_page <= rows_per_group && rows_per_group <= rows_per_file);
        let mut files = Vec::new();
        let mut manifest = Vec::new();
        for (fi, file_rows) in rows.chunks(rows_per_file.max(1)).enumerate() {
            let mut row_groups = Vec::new();
            for group_rows in file_rows.chunks(rows_per_group.max(1)) {
                let columns = columns_from_rows(&schema, group_rows);
                let zone_maps = group_stats.then(|| zone_maps_of(&columns));
                let mut pages = Vec::new();
                let mut off = 0;
                for page_rows in group_rows.chunks(rows_per_page.max(1)) {
                    let pz = page_stats.then(|| {
                        let cols = columns_from_rows(&schema, page_rows);
                        zone_maps_of(&cols)
                    });
                    pages.push(PageMeta {
                        row_offset: off,
                        row_count: page_rows.len(),
                        zone_maps: pz,
                    });
                    off += page_rows.len();
                }
                row_groups.push(RowGroup {
                    columns,
                    zone_maps,
                    pages,
                });
            }
            let entry_maps = if file_stats {
                merge_group_maps(&row_groups)
            } else {
                None
            };
            manifest.push(ManifestEntry {
                file_index: fi,
                zone_maps: entry_maps,
                row_count: file_rows.len() as u64,
            });
            files.push(DataFile {
                path: format!("s3://lake/{fi:06}.parquet"),
                row_groups,
            });
        }
        LakeTable {
            name: name.into(),
            schema,
            files,
            manifest,
        }
    }

    /// Whether every manifest entry and row group carries metadata.
    pub fn metadata_complete(&self) -> bool {
        self.manifest.iter().all(|m| m.zone_maps.is_some())
            && self
                .files
                .iter()
                .all(|f| f.row_groups.iter().all(|g| g.zone_maps.is_some()))
    }

    /// Backfill missing metadata (§8.1: "Snowflake can reconstruct it by
    /// performing a full table scan"). Row-group stats come from scanning
    /// the data (charged as loads); manifest stats come from merging
    /// row-group stats (metadata-only work).
    pub fn backfill_metadata(&mut self, io: &IoStats, model: &IoCostModel) {
        for file in &mut self.files {
            for group in &mut file.row_groups {
                if group.zone_maps.is_none() {
                    io.record_partition_load(group.bytes(), model);
                    group.zone_maps = Some(zone_maps_of(&group.columns));
                }
            }
        }
        for entry in &mut self.manifest {
            if entry.zone_maps.is_none() {
                io.record_metadata_read(model);
                entry.zone_maps = merge_group_maps(&self.files[entry.file_index].row_groups);
            }
        }
    }

    /// Hierarchically prune using `judge`, a metadata-only predicate
    /// evaluator (zone maps + row count → verdict). Levels without metadata
    /// are conservatively retained. Returns per-level stats.
    pub fn prune_hierarchical(&self, judge: &dyn Fn(&[ZoneMap], u64) -> Verdict) -> LakePruneStats {
        let mut st = LakePruneStats {
            files_total: self.files.len(),
            ..Default::default()
        };
        for entry in &self.manifest {
            let file = &self.files[entry.file_index];
            st.row_groups_total += file.row_groups.len();
            st.pages_total += file.row_groups.iter().map(|g| g.pages.len()).sum::<usize>();
            if let Some(zm) = &entry.zone_maps {
                if judge(zm, entry.row_count).prunable() {
                    st.files_pruned += 1;
                    st.row_groups_pruned += file.row_groups.len();
                    st.pages_pruned += file.row_groups.iter().map(|g| g.pages.len()).sum::<usize>();
                    continue;
                }
            }
            for group in &file.row_groups {
                if let Some(zm) = &group.zone_maps {
                    if judge(zm, group.row_count() as u64).prunable() {
                        st.row_groups_pruned += 1;
                        st.pages_pruned += group.pages.len();
                        continue;
                    }
                }
                for page in &group.pages {
                    if let Some(zm) = &page.zone_maps {
                        if judge(zm, page.row_count as u64).prunable() {
                            st.pages_pruned += 1;
                            continue;
                        }
                    }
                    st.rows_scanned += page.row_count as u64;
                }
            }
        }
        st
    }

    /// Flatten row groups into micro-partitions so the regular engine can
    /// scan a lake table ("Snowflake's query engine seamlessly handles both
    /// formats", §8.1).
    pub fn to_table(&self) -> Table {
        let mut b = crate::table::TableBuilder::new(self.name.clone(), self.schema.clone());
        // Row-group granularity is preserved by pushing rows in order and
        // matching the partition size to the row-group size.
        let group_rows = self
            .files
            .iter()
            .flat_map(|f| &f.row_groups)
            .map(RowGroup::row_count)
            .max()
            .unwrap_or(1);
        b = b.target_rows_per_partition(group_rows.max(1));
        let mut builder_rows = Vec::new();
        for f in &self.files {
            for g in &f.row_groups {
                for i in 0..g.row_count() {
                    builder_rows.push(g.columns.iter().map(|c| c.value_at(i)).collect());
                }
            }
        }
        b.extend_rows(builder_rows);
        b.build()
    }
}

fn columns_from_rows(schema: &Schema, rows: &[Vec<snowprune_types::Value>]) -> Vec<ColumnChunk> {
    let mut builders: Vec<crate::column::ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| crate::column::ColumnBuilder::new(f.ty))
        .collect();
    for row in rows {
        for (b, v) in builders.iter_mut().zip(row.iter()) {
            b.push(v.clone());
        }
    }
    builders.into_iter().map(|b| b.finish()).collect()
}

fn zone_maps_of(columns: &[ColumnChunk]) -> Vec<ZoneMap> {
    columns
        .iter()
        .map(|c| {
            let vals: Vec<_> = c.iter_values().collect();
            ZoneMap::build(vals.iter(), DEFAULT_STRING_PREFIX)
        })
        .collect()
}

fn merge_group_maps(groups: &[RowGroup]) -> Option<Vec<ZoneMap>> {
    let mut acc: Option<Vec<ZoneMap>> = None;
    for g in groups {
        let zm = g.zone_maps.as_ref()?;
        acc = Some(match acc {
            None => zm.clone(),
            Some(prev) => prev
                .iter()
                .zip(zm.iter())
                .map(|(a, b)| a.merge(b))
                .collect(),
        });
    }
    acc
}

/// Convenience: wrap a flattened lake table in an `Arc` for engine use.
pub fn lake_to_shared_table(lake: &LakeTable) -> Arc<Table> {
    Arc::new(lake.to_table())
}

/// Re-export used by tests.
pub use crate::partition::PartitionId as LakePartitionId;

#[allow(unused)]
fn _assert_traits(p: MicroPartition) {
    // MicroPartition stays Send+Sync-compatible for the parallel engine.
    fn takes_send<T: Send>(_: T) {}
    takes_send(p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use snowprune_types::{ScalarType, Value, Verdict};

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::Int(i)]).collect()
    }

    fn lake(file_stats: bool, group_stats: bool, page_stats: bool) -> LakeTable {
        let schema = Schema::new(vec![Field::new("x", ScalarType::Int)]);
        LakeTable::from_rows(
            "lake",
            schema,
            rows(1000),
            250, // rows per file -> 4 files
            50,  // rows per group -> 5 groups per file
            10,  // rows per page -> 5 pages per group
            file_stats,
            group_stats,
            page_stats,
        )
    }

    /// Judge for `x >= lo AND x <= hi` on column 0.
    fn between(lo: i64, hi: i64) -> impl Fn(&[ZoneMap], u64) -> Verdict {
        move |zms: &[ZoneMap], _rc: u64| {
            let zm = &zms[0];
            let (Some(min), Some(max)) = (&zm.min, &zm.max) else {
                return Verdict::ALWAYS_FALSE;
            };
            let (min, max) = (min.as_i64().unwrap(), max.as_i64().unwrap());
            if max < lo || min > hi {
                Verdict::ALWAYS_FALSE
            } else if min >= lo && max <= hi && zm.null_count == 0 {
                Verdict::ALWAYS_TRUE
            } else {
                Verdict::TOP
            }
        }
    }

    #[test]
    fn hierarchical_pruning_hits_all_levels() {
        let t = lake(true, true, true);
        // x in [0, 9]: first page of first group of first file only.
        let st = t.prune_hierarchical(&between(0, 9));
        assert_eq!(st.files_total, 4);
        assert_eq!(st.files_pruned, 3);
        assert_eq!(st.row_groups_pruned, 15 + 4); // 3 files * 5 groups + 4 sibling groups
        assert_eq!(st.rows_scanned, 10);
    }

    #[test]
    fn missing_metadata_is_conservative() {
        let t = lake(false, false, false);
        let st = t.prune_hierarchical(&between(0, 9));
        assert_eq!(st.files_pruned, 0);
        assert_eq!(st.row_groups_pruned, 0);
        assert_eq!(st.pages_pruned, 0);
        assert_eq!(st.rows_scanned, 1000);
    }

    #[test]
    fn backfill_restores_pruning() {
        let mut t = lake(false, false, false);
        assert!(!t.metadata_complete());
        let io = IoStats::new();
        t.backfill_metadata(&io, &IoCostModel::free());
        assert!(t.metadata_complete());
        assert!(io.snapshot().partitions_loaded > 0, "backfill scans data");
        let st = t.prune_hierarchical(&between(0, 9));
        assert_eq!(st.files_pruned, 3);
        // Pages stay unpruned (no page index backfill) but groups prune.
        assert_eq!(st.rows_scanned, 50);
    }

    #[test]
    fn manifest_backfill_from_group_stats_is_metadata_only() {
        let mut t = lake(false, true, false);
        let io = IoStats::new();
        t.backfill_metadata(&io, &IoCostModel::free());
        assert_eq!(io.snapshot().partitions_loaded, 0);
        assert!(t.metadata_complete());
    }

    #[test]
    fn flatten_to_table_preserves_rows_and_granularity() {
        let t = lake(true, true, true);
        let flat = t.to_table();
        assert_eq!(flat.total_rows(), 1000);
        assert_eq!(flat.partition_count(), 20); // one partition per row group
    }
}
