//! Property test: top-k boundary behaviour under arbitrary morsel
//! interleavings.
//!
//! On the shared worker pool, partitions of one query are processed by
//! many workers in arbitrary order, and a worker may consult a boundary
//! snapshot that is several tightenings stale. Soundness rests on two
//! properties, checked here over random data, k, direction, interleaving,
//! and staleness lag:
//!
//! 1. **The boundary only ever tightens** — its value moves monotonically
//!    in the query direction and its epoch counter never decreases;
//! 2. **A stale boundary may under-prune but never over-prune** — any
//!    skip permitted by an old snapshot is still permitted by the current
//!    one, and a scan that skips partitions based on arbitrarily stale
//!    snapshots still produces the exact top-k.

use proptest::prelude::*;
use snowprune_core::topk::{boundary_allows_skip, Boundary, TopKHeap};
use snowprune_types::{Value, ZoneMap};
use std::sync::Arc;

fn zone_map(values: &[i64]) -> ZoneMap {
    ZoneMap {
        min: values.iter().min().map(|&v| Value::Int(v)),
        max: values.iter().max().map(|&v| Value::Int(v)),
        min_exact: true,
        max_exact: true,
        null_count: 0,
        row_count: values.len() as u64,
    }
}

/// Deterministic shuffle (splitmix-style), standing in for the pool's
/// nondeterministic morsel completion order.
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Is `new` at least as tight as `old` for the given direction?
fn tightened(desc: bool, old: &Option<Value>, new: &Option<Value>) -> bool {
    match (old, new) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(o), Some(n)) => {
            let ord = n.total_ord_cmp(o);
            if desc {
                ord != std::cmp::Ordering::Less
            } else {
                ord != std::cmp::Ordering::Greater
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn boundary_tightens_monotonically_and_stale_skips_never_overprune(
        partitions in proptest::collection::vec(
            proptest::collection::vec(-100i64..100, 1..12), 1..12),
        k in 1usize..8,
        desc in any::<bool>(),
        shuffle_seed in 0u64..1_000_000,
        lag in 0usize..4,
        seed_boundary in any::<bool>(),
    ) {
        let boundary = Boundary::new(desc);
        let mut all: Vec<i64> = partitions.iter().flatten().copied().collect();
        all.sort();
        if desc { all.reverse(); }

        // Optional sound §5.4 seeding: the exact k-th best over all rows is
        // the tightest externally derivable bound (strict skipping).
        if seed_boundary && all.len() >= k {
            boundary.tighten(&Value::Int(all[k - 1]));
        }

        let mut heap = TopKHeap::new(k, desc, Arc::clone(&boundary));
        // History of boundary states a worker might have cached.
        let mut history = vec![boundary.state()];
        let mut prev_epoch = boundary.epoch();

        for &pi in &shuffled(partitions.len(), shuffle_seed) {
            let part = &partitions[pi];
            let zm = zone_map(part);

            // A worker consults a snapshot up to `lag` tightenings old.
            let stale_idx = history.len() - 1 - lag.min(history.len() - 1);
            let (stale_bound, stale_incl) = history[stale_idx].clone();
            let stale_skip = stale_bound
                .as_ref()
                .is_some_and(|b| boundary_allows_skip(desc, b, stale_incl, &zm));

            // Property 2a: anything a stale snapshot skips, the live
            // boundary skips too (staleness only under-prunes).
            if stale_skip {
                prop_assert!(
                    boundary.should_skip(&zm),
                    "stale snapshot skipped a partition the live boundary would scan"
                );
            } else {
                for &v in part {
                    heap.insert(Value::Int(v), v);
                }
            }

            // Property 1: monotone tightening, observable via state + epoch.
            let (old_bound, _) = &history[history.len() - 1];
            let now = boundary.state();
            prop_assert!(
                tightened(desc, old_bound, &now.0),
                "boundary loosened: {old_bound:?} -> {:?}", now.0
            );
            let epoch = boundary.epoch();
            prop_assert!(epoch >= prev_epoch, "epoch went backwards");
            prev_epoch = epoch;
            history.push(now);
        }

        // Property 2b: despite stale-snapshot skipping, the result is the
        // exact top-k value multiset — skipped partitions never held a row
        // the final answer needed.
        let got: Vec<i64> = heap.into_sorted().into_iter().map(|(_, v)| v).collect();
        let expect: Vec<i64> = all.into_iter().take(k).collect();
        prop_assert_eq!(got, expect,
            "k={} desc={} lag={} seeded={}", k, desc, lag, seed_boundary);
    }
}
