//! LIMIT pruning (§4): shrink the scan set to the minimal number of
//! fully-matching partitions that cover `k` rows.
//!
//! If the fully-matching partitions together hold at least `k + offset`
//! rows, the scan set becomes exactly the smallest subset of them reaching
//! that count — globally I/O-optimal for supported queries, reading only
//! the minimal number of partitions. Otherwise no partition can be removed
//! (pruning must not introduce false negatives), but fully-matching
//! partitions are moved to the front of the processing order, which still
//! lets execution halt early.

use snowprune_types::MatchClass;

use crate::scan_set::ScanSet;

/// How a LIMIT query interacted with LIMIT pruning — the categories of
/// Table 2 in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LimitOutcome {
    /// Scan set already at ≤ 1 partition after filter pruning; nothing to do.
    AlreadyMinimal,
    /// The plan shape prevented pushing the LIMIT to a scan, or no
    /// fully-matching partitions could cover `k`.
    Unsupported(UnsupportedReason),
    /// Pruned to exactly one partition.
    PrunedToOne,
    /// Pruned to more than one partition (large `k`), still optimal.
    PrunedToMany(usize),
}

/// Why LIMIT pruning did not apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnsupportedReason {
    /// The LIMIT could not be pushed down to a table scan (§4.3).
    PlanShape,
    /// Fully-matching partitions cover fewer than `k + offset` rows.
    InsufficientFullyMatching,
}

/// Result of LIMIT pruning on one scan set.
#[derive(Clone, Debug)]
pub struct LimitPruneResult {
    /// Surviving partitions after LIMIT pruning.
    pub scan_set: ScanSet,
    /// What the pruning attempt concluded.
    pub outcome: LimitOutcome,
    /// Partition count before LIMIT pruning.
    pub partitions_before: usize,
}

impl LimitPruneResult {
    /// Fraction of the input partitions removed.
    pub fn pruning_ratio(&self) -> f64 {
        crate::scan_set::pruning_ratio(self.partitions_before, self.scan_set.len())
    }
}

/// Apply LIMIT pruning to a scan set that already went through filter
/// pruning (which annotated match classes). `needed` is `k + offset`.
pub fn prune_for_limit(scan_set: &ScanSet, needed: u64) -> LimitPruneResult {
    let before = scan_set.len();
    if before <= 1 {
        return LimitPruneResult {
            scan_set: scan_set.clone(),
            outcome: LimitOutcome::AlreadyMinimal,
            partitions_before: before,
        };
    }
    // LIMIT 0 still needs schema discovery but zero rows: one fully-matching
    // partition — or none at all — satisfies it. Treat needed == 0 as
    // needing zero rows: the empty scan set is correct.
    if needed == 0 {
        return LimitPruneResult {
            scan_set: ScanSet::default(),
            outcome: if before == 0 {
                LimitOutcome::AlreadyMinimal
            } else {
                LimitOutcome::PrunedToMany(0)
            },
            partitions_before: before,
        };
    }
    let mut fully: Vec<&crate::scan_set::ScanEntry> = scan_set.fully_matching().collect();
    let covered: u64 = fully.iter().map(|e| e.row_count).sum();
    if covered < needed {
        // Cannot prune; reorder fully-matching first so execution reaches k
        // fastest (§4.1: "starting the table scan with fully-matching
        // partitions promises faster query execution times").
        let mut entries = scan_set.entries.clone();
        entries.sort_by_key(|e| match e.class {
            MatchClass::FullyMatching => 0u8,
            MatchClass::PartiallyMatching => 1,
            MatchClass::NotMatching => 2,
        });
        return LimitPruneResult {
            scan_set: ScanSet { entries },
            outcome: LimitOutcome::Unsupported(UnsupportedReason::InsufficientFullyMatching),
            partitions_before: before,
        };
    }
    // Minimal partition count: take fully-matching partitions largest-first.
    fully.sort_by(|a, b| b.row_count.cmp(&a.row_count).then(a.id.cmp(&b.id)));
    let mut chosen = Vec::new();
    let mut rows = 0u64;
    for e in fully {
        chosen.push(e.clone());
        rows += e.row_count;
        if rows >= needed {
            break;
        }
    }
    let outcome = if chosen.len() == 1 {
        LimitOutcome::PrunedToOne
    } else {
        LimitOutcome::PrunedToMany(chosen.len())
    };
    LimitPruneResult {
        scan_set: ScanSet { entries: chosen },
        outcome,
        partitions_before: before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_set::ScanEntry;

    fn entry(id: u64, class: MatchClass, rows: u64) -> ScanEntry {
        ScanEntry {
            id,
            class,
            row_count: rows,
            bytes: rows * 64,
        }
    }

    fn figure5_scan_set() -> ScanSet {
        // After filter pruning on Figure 5: partitions 2 and 4 partially
        // match, partition 3 fully matches (3 rows each).
        ScanSet {
            entries: vec![
                entry(2, MatchClass::PartiallyMatching, 3),
                entry(3, MatchClass::FullyMatching, 3),
                entry(4, MatchClass::PartiallyMatching, 3),
            ],
        }
    }

    #[test]
    fn figure5_limit3_prunes_to_partition3() {
        let res = prune_for_limit(&figure5_scan_set(), 3);
        assert_eq!(res.outcome, LimitOutcome::PrunedToOne);
        assert_eq!(res.scan_set.ids(), vec![3]);
        assert!((res.pruning_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn limit_exceeding_fully_matching_rows_is_unsupported() {
        let res = prune_for_limit(&figure5_scan_set(), 4);
        assert_eq!(
            res.outcome,
            LimitOutcome::Unsupported(UnsupportedReason::InsufficientFullyMatching)
        );
        // But the fully-matching partition moved to the front.
        assert_eq!(res.scan_set.ids()[0], 3);
        assert_eq!(res.scan_set.len(), 3);
    }

    #[test]
    fn large_k_takes_minimal_number_of_partitions() {
        let ss = ScanSet {
            entries: vec![
                entry(0, MatchClass::FullyMatching, 10),
                entry(1, MatchClass::FullyMatching, 50),
                entry(2, MatchClass::FullyMatching, 30),
                entry(3, MatchClass::PartiallyMatching, 100),
            ],
        };
        let res = prune_for_limit(&ss, 60);
        // 50 + 30 = 80 >= 60 with two partitions (the two largest).
        assert_eq!(res.outcome, LimitOutcome::PrunedToMany(2));
        assert_eq!(res.scan_set.ids(), vec![1, 2]);
    }

    #[test]
    fn no_predicate_table_is_all_fully_matching() {
        // Without predicates every partition is fully matching (§4.2).
        let ss = ScanSet {
            entries: (0..10)
                .map(|i| entry(i, MatchClass::FullyMatching, 100))
                .collect(),
        };
        let res = prune_for_limit(&ss, 150);
        assert_eq!(res.outcome, LimitOutcome::PrunedToMany(2));
    }

    #[test]
    fn single_partition_already_minimal() {
        let ss = ScanSet {
            entries: vec![entry(0, MatchClass::PartiallyMatching, 5)],
        };
        let res = prune_for_limit(&ss, 3);
        assert_eq!(res.outcome, LimitOutcome::AlreadyMinimal);
        assert_eq!(res.scan_set.len(), 1);
    }

    #[test]
    fn limit_zero_empties_scan_set() {
        // BI tools issue LIMIT 0 for schema discovery (§4.1 footnote).
        let res = prune_for_limit(&figure5_scan_set(), 0);
        assert!(res.scan_set.is_empty());
    }
}
