//! Filter pruning (§3): min/max pruning over a *pruning tree* with
//! adaptive filter reordering, filter pruning cutoff, and a compile-time /
//! runtime split.
//!
//! The predicate's boolean structure becomes a tree (Figure 3): predicates
//! are the leaves, `∧`/`∨` the inner nodes. Per node, the pruner tracks
//! pruning ratio and evaluation time; children of a node may be freely
//! reordered, and leaves *below an `∧`* may be disabled ("cutoff") when
//! they are slow or ineffective. Disabling a leaf below an `∨` would render
//! the whole disjunction useless, so it is never allowed (§3.2).

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use std::time::Instant;

use snowprune_expr::{prune_eval, Expr};
use snowprune_storage::PartitionMeta;
use snowprune_types::{MatchClass, Verdict, ZoneMap};

use crate::scan_set::{ScanEntry, ScanSet};

/// Tuning knobs for adaptive reordering and cutoff.
#[derive(Clone, Debug)]
pub struct FilterPruneConfig {
    /// Re-rank children every N partitions.
    pub adapt_interval: u64,
    /// Leaves need this many evaluations before cutoff decisions.
    pub cutoff_min_evals: u64,
    /// Modelled cost of scanning one partition at execution time, in
    /// nanoseconds. The cutoff rule disables a pruner whose per-partition
    /// evaluation cost exceeds `pruning_ratio × scan_cost` (§3.2's
    /// continue-vs-stop comparison).
    pub scan_cost_ns_per_partition: u64,
    /// Enable adaptive reordering.
    pub reorder: bool,
    /// Enable pruning cutoff.
    pub cutoff: bool,
    /// Compile-time budget in nanoseconds; pruning of the remaining
    /// partitions is deferred to the (parallel) execution phase when the
    /// budget runs out. `u64::MAX` = unbounded.
    pub compile_time_budget_ns: u64,
}

impl Default for FilterPruneConfig {
    fn default() -> Self {
        FilterPruneConfig {
            adapt_interval: 64,
            cutoff_min_evals: 64,
            scan_cost_ns_per_partition: 2_000_000,
            reorder: true,
            cutoff: true,
            compile_time_budget_ns: u64::MAX,
        }
    }
}

/// Accumulated statistics for one pruning-tree node.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Number of zone-map evaluations of this node.
    pub evals: u64,
    /// Evaluations whose verdict allowed pruning (`!may_true`).
    pub pruned: u64,
    /// Total evaluation time, nanoseconds.
    pub nanos: u64,
}

impl NodeStats {
    /// Fraction of evaluations that pruned.
    pub fn prune_ratio(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.pruned as f64 / self.evals as f64
        }
    }

    /// Mean evaluation cost in nanoseconds.
    pub fn cost_per_eval_ns(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.nanos as f64 / self.evals as f64
        }
    }
}

/// A node in the pruning tree.
#[derive(Clone, Debug)]
pub enum PruneNode {
    /// A single predicate evaluated against zone maps.
    Leaf(LeafPruner),
    /// Conjunction: verdicts combine with `Verdict::and`.
    And(Vec<PruneNode>),
    /// Disjunction: verdicts combine with `Verdict::or`.
    Or(Vec<PruneNode>),
}

/// A leaf pruner: one predicate evaluated against zone maps.
#[derive(Clone, Debug)]
pub struct LeafPruner {
    /// The leaf predicate.
    pub expr: Expr,
    /// Adaptive statistics driving reordering and cutoff.
    pub stats: NodeStats,
    /// Cutoff state; a disabled leaf behaves as "might match anything".
    pub enabled: bool,
    /// Whether every ancestor is an AND node (cutoff precondition).
    pub cutoff_allowed: bool,
    /// Extra synthetic cost per evaluation (tests/benches model slow
    /// pruners, e.g. heavy UDF-style predicates, deterministically).
    pub synthetic_cost_ns: u64,
}

impl PruneNode {
    /// Mirror the predicate's AND/OR structure; other nodes become leaves.
    fn build(expr: &Expr, under_or: bool) -> PruneNode {
        match expr {
            Expr::And(xs) => PruneNode::And(xs.iter().map(|x| Self::build(x, under_or)).collect()),
            Expr::Or(xs) => PruneNode::Or(xs.iter().map(|x| Self::build(x, true)).collect()),
            leaf => PruneNode::Leaf(LeafPruner {
                expr: leaf.clone(),
                stats: NodeStats::default(),
                enabled: true,
                cutoff_allowed: !under_or,
                synthetic_cost_ns: 0,
            }),
        }
    }

    /// Evaluate this node against one partition's zone maps.
    fn evaluate(&mut self, meta: &[ZoneMap]) -> Verdict {
        match self {
            PruneNode::Leaf(leaf) => {
                if !leaf.enabled {
                    return Verdict::TOP;
                }
                let start = Instant::now();
                let v = prune_eval(&leaf.expr, meta);
                let mut elapsed = start.elapsed().as_nanos() as u64;
                elapsed += leaf.synthetic_cost_ns;
                if leaf.synthetic_cost_ns > 0 {
                    busy_wait_ns(leaf.synthetic_cost_ns);
                }
                leaf.stats.evals += 1;
                leaf.stats.nanos += elapsed;
                if v.prunable() {
                    leaf.stats.pruned += 1;
                }
                v
            }
            PruneNode::And(children) => {
                let mut acc = Verdict::ALWAYS_TRUE;
                for c in children.iter_mut() {
                    acc = acc.and(c.evaluate(meta));
                    if !acc.may_true {
                        // Short-circuit: the partition is already prunable
                        // and `and` can only keep may_true false.
                        break;
                    }
                }
                acc
            }
            PruneNode::Or(children) => {
                let mut acc = Verdict::ALWAYS_FALSE;
                for c in children.iter_mut() {
                    acc = acc.or(c.evaluate(meta));
                    if acc.all_true {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Locally reorder children by the §3.2 heuristics.
    fn reorder(&mut self) {
        match self {
            PruneNode::Leaf(_) => {}
            PruneNode::And(children) => {
                // Prioritize fast, highly selective filters: ascending
                // cost-per-pruned-partition.
                children.sort_by(|a, b| {
                    rank_and(a)
                        .partial_cmp(&rank_and(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for c in children.iter_mut() {
                    c.reorder();
                }
            }
            PruneNode::Or(children) => {
                // Prioritize fast filters with low selectivity (likely to
                // short-circuit the disjunction by passing the partition).
                children.sort_by(|a, b| {
                    rank_or(a)
                        .partial_cmp(&rank_or(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for c in children.iter_mut() {
                    c.reorder();
                }
            }
        }
    }

    fn aggregate_stats(&self) -> NodeStats {
        match self {
            PruneNode::Leaf(l) => l.stats,
            PruneNode::And(cs) | PruneNode::Or(cs) => {
                let mut acc = NodeStats::default();
                for c in cs {
                    let s = c.aggregate_stats();
                    acc.evals = acc.evals.max(s.evals);
                    acc.pruned += s.pruned;
                    acc.nanos += s.nanos;
                }
                acc
            }
        }
    }

    /// Apply the cutoff rule to eligible leaves.
    fn apply_cutoff(&mut self, cfg: &FilterPruneConfig, disabled: &mut usize) {
        match self {
            PruneNode::Leaf(leaf) => {
                if !leaf.enabled || !leaf.cutoff_allowed || leaf.stats.evals < cfg.cutoff_min_evals
                {
                    return;
                }
                // Continue-pruning cost per partition vs expected saving:
                // disable when eval cost exceeds ratio × scan cost.
                let saving = leaf.stats.prune_ratio() * cfg.scan_cost_ns_per_partition as f64;
                if leaf.stats.cost_per_eval_ns() > saving {
                    leaf.enabled = false;
                    *disabled += 1;
                }
            }
            PruneNode::And(cs) => {
                for c in cs {
                    c.apply_cutoff(cfg, disabled);
                }
            }
            // §3.2: "only filters below an ∧-expression may be removed" —
            // leaves under OR were marked cutoff_allowed=false at build
            // time, but we also skip descending for clarity.
            PruneNode::Or(cs) => {
                for c in cs {
                    if let PruneNode::And(_) = c {
                        // Nested ANDs under OR: their leaves have
                        // cutoff_allowed=false (an OR ancestor exists).
                        c.apply_cutoff(cfg, disabled);
                    }
                }
            }
        }
    }

    fn for_each_leaf(&self, f: &mut impl FnMut(&LeafPruner)) {
        match self {
            PruneNode::Leaf(l) => f(l),
            PruneNode::And(cs) | PruneNode::Or(cs) => {
                for c in cs {
                    c.for_each_leaf(f);
                }
            }
        }
    }

    fn for_each_leaf_mut(&mut self, f: &mut impl FnMut(&mut LeafPruner)) {
        match self {
            PruneNode::Leaf(l) => f(l),
            PruneNode::And(cs) | PruneNode::Or(cs) => {
                for c in cs {
                    c.for_each_leaf_mut(f);
                }
            }
        }
    }
}

fn rank_and(n: &PruneNode) -> f64 {
    let s = n.aggregate_stats();
    if s.evals == 0 {
        return 0.0; // unevaluated nodes keep their heuristic position
    }
    s.cost_per_eval_ns() / s.prune_ratio().max(1e-6)
}

fn rank_or(n: &PruneNode) -> f64 {
    let s = n.aggregate_stats();
    if s.evals == 0 {
        return 0.0;
    }
    let pass_ratio = 1.0 - s.prune_ratio();
    s.cost_per_eval_ns() / pass_ratio.max(1e-6)
}

fn busy_wait_ns(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Result of compile-time filter pruning for one table scan.
#[derive(Clone, Debug)]
pub struct FilterPruneResult {
    /// Surviving partitions, annotated with match classes.
    pub scan_set: ScanSet,
    /// Partition count before filter pruning.
    pub partitions_before: usize,
    /// Partitions removed at compile time.
    pub pruned: usize,
    /// Partitions classified fully-matching (§4.1).
    pub fully_matching: usize,
    /// Partitions whose pruning was deferred past the compile-time budget;
    /// they appear in the scan set and must be re-checked at runtime.
    pub deferred: usize,
    /// Leaves disabled by cutoff.
    pub disabled_leaves: usize,
}

impl FilterPruneResult {
    /// Fraction of the original partitions removed.
    pub fn pruning_ratio(&self) -> f64 {
        crate::scan_set::pruning_ratio(self.partitions_before, self.scan_set.len())
    }
}

/// The filter pruner: owns the pruning tree and its adaptive state.
#[derive(Clone, Debug)]
pub struct FilterPruner {
    tree: PruneNode,
    cfg: FilterPruneConfig,
    evaluated: u64,
}

impl FilterPruner {
    /// Build from a bound predicate.
    pub fn new(predicate: &Expr, cfg: FilterPruneConfig) -> Self {
        FilterPruner {
            tree: PruneNode::build(predicate, false),
            cfg,
            evaluated: 0,
        }
    }

    /// Inject a synthetic per-evaluation cost into the `idx`-th leaf
    /// (pre-order), for deterministic reorder/cutoff tests and benches.
    pub fn set_leaf_cost(&mut self, idx: usize, cost_ns: u64) {
        let mut i = 0;
        self.tree.for_each_leaf_mut(&mut |l| {
            if i == idx {
                l.synthetic_cost_ns = cost_ns;
            }
            i += 1;
        });
    }

    /// Evaluate one partition (runtime pruning entry point).
    pub fn evaluate(&mut self, zone_maps: &[ZoneMap]) -> Verdict {
        self.evaluated += 1;
        let v = self.tree.evaluate(zone_maps);
        if self.evaluated.is_multiple_of(self.cfg.adapt_interval) {
            if self.cfg.reorder {
                self.tree.reorder();
            }
            if self.cfg.cutoff {
                let mut disabled = 0;
                self.tree.apply_cutoff(&self.cfg, &mut disabled);
            }
        }
        v
    }

    /// Classify one partition.
    pub fn classify(&mut self, meta: &PartitionMeta) -> MatchClass {
        self.evaluate(&meta.zone_maps).classify(meta.row_count)
    }

    /// Compile-time pruning over a whole table's metadata, respecting the
    /// compile-time budget (§3.2: expensive pruning is deferred to the
    /// highly parallel execution phase).
    pub fn prune(&mut self, metas: &[PartitionMeta]) -> FilterPruneResult {
        let before = metas.len();
        let start = Instant::now();
        let mut entries = Vec::with_capacity(metas.len());
        let mut pruned = 0usize;
        let mut fully = 0usize;
        let mut deferred = 0usize;
        for meta in metas {
            if (start.elapsed().as_nanos() as u64) > self.cfg.compile_time_budget_ns {
                deferred += 1;
                entries.push(ScanEntry {
                    id: meta.id,
                    class: MatchClass::PartiallyMatching,
                    row_count: meta.row_count,
                    bytes: meta.bytes,
                });
                continue;
            }
            match self.classify(meta) {
                MatchClass::NotMatching => pruned += 1,
                class => {
                    if class == MatchClass::FullyMatching {
                        fully += 1;
                    }
                    entries.push(ScanEntry {
                        id: meta.id,
                        class,
                        row_count: meta.row_count,
                        bytes: meta.bytes,
                    });
                }
            }
        }
        FilterPruneResult {
            scan_set: ScanSet { entries },
            partitions_before: before,
            pruned,
            fully_matching: fully,
            deferred,
            disabled_leaves: self.disabled_leaves(),
        }
    }

    /// Number of leaves currently disabled by the pruning cutoff.
    pub fn disabled_leaves(&self) -> usize {
        let mut n = 0;
        self.tree.for_each_leaf(&mut |l| {
            if !l.enabled {
                n += 1;
            }
        });
        n
    }

    /// Pre-order leaf predicate order (exposed for reordering tests).
    pub fn leaf_order(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.tree
            .for_each_leaf(&mut |l| out.push(l.expr.to_string()));
        out
    }

    /// Per-leaf statistics, in pre-order (exposed for adaptivity tests).
    pub fn leaf_stats(&self) -> Vec<NodeStats> {
        let mut out = Vec::new();
        self.tree.for_each_leaf(&mut |l| out.push(l.stats));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_expr::dsl::{col, lit};
    use snowprune_storage::{Field, Layout, Schema, TableBuilder};
    use snowprune_types::{ScalarType, Value};

    fn table() -> snowprune_storage::Table {
        let schema = Schema::new(vec![
            Field::new("x", ScalarType::Int),
            Field::new("y", ScalarType::Int),
        ]);
        let mut b = TableBuilder::new("t", schema)
            .target_rows_per_partition(100)
            .layout(Layout::ClusterBy(vec!["x".into()]));
        for i in 0..10_000i64 {
            b.push_row(vec![Value::Int(i), Value::Int(i % 97)]);
        }
        b.build()
    }

    fn bound(e: snowprune_expr::Expr, t: &snowprune_storage::Table) -> snowprune_expr::Expr {
        e.bind(t.schema()).unwrap()
    }

    #[test]
    fn prunes_clustered_range_predicate() {
        let t = table();
        // x in [0, 999]: 10 of 100 partitions qualify.
        let pred = bound(col("x").lt(lit(1000i64)), &t);
        let mut pruner = FilterPruner::new(&pred, FilterPruneConfig::default());
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.scan_set.len(), 10);
        assert_eq!(res.pruned, 90);
        assert!((res.pruning_ratio() - 0.9).abs() < 1e-9);
        // Every surviving partition is fully matching (clustered layout,
        // clean boundary).
        assert_eq!(res.fully_matching, 10);
    }

    #[test]
    fn unclustered_column_prunes_nothing() {
        let t = table();
        // y cycles 0..97 in every partition: no partition can be excluded.
        let pred = bound(col("y").eq(lit(5i64)), &t);
        let mut pruner = FilterPruner::new(&pred, FilterPruneConfig::default());
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.pruned, 0);
        assert_eq!(res.scan_set.len(), 100);
        assert_eq!(res.fully_matching, 0);
    }

    #[test]
    fn reordering_moves_effective_cheap_filter_first() {
        let t = table();
        // Leaf 0: ineffective (y never prunes); leaf 1: highly effective.
        let pred = bound(col("y").ge(lit(0i64)).and(col("x").lt(lit(500i64))), &t);
        let mut cfg = FilterPruneConfig::default();
        cfg.adapt_interval = 16;
        cfg.cutoff = false;
        let mut pruner = FilterPruner::new(&pred, cfg);
        // Make the ineffective leaf slow, too.
        pruner.set_leaf_cost(0, 40_000);
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let before = pruner.leaf_order();
        assert!(before[0].contains('y'), "initial order keeps syntax order");
        pruner.prune(&metas);
        let after = pruner.leaf_order();
        assert!(
            after[0].contains('x'),
            "effective cheap filter should be first after adaptation: {after:?}"
        );
    }

    #[test]
    fn cutoff_disables_slow_ineffective_leaf_under_and() {
        let t = table();
        let pred = bound(col("y").ge(lit(0i64)).and(col("x").lt(lit(500i64))), &t);
        let mut cfg = FilterPruneConfig::default();
        cfg.adapt_interval = 8;
        cfg.cutoff_min_evals = 8;
        cfg.scan_cost_ns_per_partition = 10_000;
        let mut pruner = FilterPruner::new(&pred, cfg);
        pruner.set_leaf_cost(0, 50_000); // slow and never prunes
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.disabled_leaves, 1);
        // Pruning still works through the other leaf.
        assert_eq!(res.scan_set.len(), 5);
    }

    #[test]
    fn cutoff_never_disables_under_or() {
        let t = table();
        let pred = bound(col("y").ge(lit(0i64)).or(col("x").lt(lit(500i64))), &t);
        let mut cfg = FilterPruneConfig::default();
        cfg.adapt_interval = 8;
        cfg.cutoff_min_evals = 8;
        cfg.scan_cost_ns_per_partition = 1; // would disable anything eligible
        let mut pruner = FilterPruner::new(&pred, cfg);
        pruner.set_leaf_cost(0, 50_000);
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.disabled_leaves, 0, "OR leaves must never be cut off");
        // An always-true disjunct means nothing is pruned, and that is correct.
        assert_eq!(res.pruned, 0);
    }

    #[test]
    fn disabled_leaf_is_conservative() {
        let t = table();
        let pred = bound(col("x").lt(lit(500i64)), &t);
        let mut pruner = FilterPruner::new(&pred, FilterPruneConfig::default());
        // Manually disable the only leaf: everything must survive.
        let mut i = 0;
        pruner.tree.for_each_leaf_mut(&mut |l| {
            l.enabled = false;
            i += 1;
        });
        assert_eq!(i, 1);
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.pruned, 0);
        assert_eq!(res.scan_set.len(), 100);
    }

    #[test]
    fn compile_time_budget_defers() {
        let t = table();
        let pred = bound(col("x").lt(lit(500i64)), &t);
        let mut cfg = FilterPruneConfig::default();
        cfg.compile_time_budget_ns = 0; // everything deferred
        let mut pruner = FilterPruner::new(&pred, cfg);
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.deferred, 100);
        assert_eq!(
            res.scan_set.len(),
            100,
            "deferred partitions stay in the scan set"
        );
        assert_eq!(res.pruned, 0);
    }

    #[test]
    fn or_of_ranges_prunes_only_outside_both() {
        let t = table();
        let pred = bound(col("x").lt(lit(300i64)).or(col("x").ge(lit(9_700i64))), &t);
        let mut pruner = FilterPruner::new(&pred, FilterPruneConfig::default());
        let metas: Vec<_> = t.metadata().into_iter().cloned().collect();
        let res = pruner.prune(&metas);
        assert_eq!(res.scan_set.len(), 6); // 3 at the bottom + 3 at the top
        assert_eq!(res.fully_matching, 6);
    }
}
