//! The combined pruning flow (§7): bookkeeping for how the four techniques
//! compose on a query, and aggregation across workloads (Figure 11).
//!
//! Order of application (matching Snowflake): **filter → LIMIT → join →
//! top-k**. Filter and LIMIT pruning run at compile time, join and top-k
//! pruning at execution time. The execution engine drives the techniques;
//! this module owns the accounting.

use std::collections::BTreeMap;

/// The four techniques as bit flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TechniqueSet(pub u8);

impl TechniqueSet {
    /// The empty set: no technique pruned anything.
    pub const NONE: TechniqueSet = TechniqueSet(0);
    /// Min/max filter pruning (§3).
    pub const FILTER: u8 = 1;
    /// LIMIT pruning via fully-matching partitions (§4).
    pub const LIMIT: u8 = 2;
    /// Join probe-side pruning (§6).
    pub const JOIN: u8 = 4;
    /// Top-k boundary pruning (§5).
    pub const TOPK: u8 = 8;

    /// Set (or leave unset) one technique flag, builder style.
    pub fn with(mut self, flag: u8, on: bool) -> Self {
        if on {
            self.0 |= flag;
        }
        self
    }

    /// Is the given technique flag set?
    pub fn contains(self, flag: u8) -> bool {
        self.0 & flag != 0
    }

    /// Human-readable combination label, e.g. `filter+topk`.
    pub fn label(self) -> String {
        if self.0 == 0 {
            return "none".into();
        }
        let mut parts = Vec::new();
        if self.contains(Self::FILTER) {
            parts.push("filter");
        }
        if self.contains(Self::LIMIT) {
            parts.push("limit");
        }
        if self.contains(Self::JOIN) {
            parts.push("join");
        }
        if self.contains(Self::TOPK) {
            parts.push("topk");
        }
        parts.join("+")
    }
}

/// Per-query pruning report assembled by the execution pipeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryPruningReport {
    /// Total partitions across all table scans before any pruning.
    pub partitions_total: u64,
    /// Partitions removed by filter pruning (applied first).
    pub pruned_by_filter: u64,
    /// Partitions removed by LIMIT pruning (applied second).
    pub pruned_by_limit: u64,
    /// Partitions removed by join pruning (applied third).
    pub pruned_by_join: u64,
    /// Partitions removed by top-k pruning (applied last).
    pub pruned_by_topk: u64,
    /// Partitions actually loaded by execution.
    pub partitions_scanned: u64,
    /// Fully-matching partitions identified during filter pruning.
    pub fully_matching: u64,
    /// Whether filter pruning was *eligible* (not just effective).
    pub filter_eligible: bool,
    /// Whether LIMIT pruning was eligible.
    pub limit_eligible: bool,
    /// Whether join pruning was eligible.
    pub join_eligible: bool,
    /// Whether top-k pruning was eligible.
    pub topk_eligible: bool,
}

impl QueryPruningReport {
    /// Techniques that pruned at least one partition (Figure 11's notion of
    /// a query being "subject to" a technique).
    pub fn techniques_used(&self) -> TechniqueSet {
        TechniqueSet::NONE
            .with(TechniqueSet::FILTER, self.pruned_by_filter > 0)
            .with(TechniqueSet::LIMIT, self.pruned_by_limit > 0)
            .with(TechniqueSet::JOIN, self.pruned_by_join > 0)
            .with(TechniqueSet::TOPK, self.pruned_by_topk > 0)
    }

    /// Overall ratio of partitions never processed, relative to the total
    /// (the "99.4% of micro-partitions across all queries" metric).
    pub fn overall_pruning_ratio(&self) -> f64 {
        if self.partitions_total == 0 {
            return 0.0;
        }
        let pruned = self.partitions_total - self.partitions_scanned.min(self.partitions_total);
        pruned as f64 / self.partitions_total as f64
    }

    /// Per-technique ratios relative to what each technique saw as input,
    /// matching the paper's per-technique figures.
    pub fn filter_ratio(&self) -> f64 {
        ratio(self.pruned_by_filter, self.partitions_total)
    }

    /// LIMIT-pruning ratio over what filter pruning left behind.
    pub fn limit_ratio(&self) -> f64 {
        ratio(
            self.pruned_by_limit,
            self.partitions_total - self.pruned_by_filter,
        )
    }

    /// Join-pruning ratio over what filter and LIMIT pruning left behind.
    pub fn join_ratio(&self) -> f64 {
        ratio(
            self.pruned_by_join,
            self.partitions_total - self.pruned_by_filter - self.pruned_by_limit,
        )
    }

    /// Top-k-pruning ratio over what the other three techniques left.
    pub fn topk_ratio(&self) -> f64 {
        ratio(
            self.pruned_by_topk,
            self.partitions_total
                - self.pruned_by_filter
                - self.pruned_by_limit
                - self.pruned_by_join,
        )
    }
}

fn ratio(pruned: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        pruned as f64 / base as f64
    }
}

/// Aggregates reports across a workload for the Figure 11 flow diagram and
/// the Figure 1 distributions.
#[derive(Clone, Debug, Default)]
pub struct FlowAggregator {
    /// Number of reports folded in.
    pub queries: u64,
    /// Count of queries per technique combination.
    pub combo_counts: BTreeMap<TechniqueSet, u64>,
    /// Sum of `partitions_total` across reports.
    pub total_partitions: u64,
    /// Sum of `partitions_scanned` across reports.
    pub total_scanned: u64,
}

impl FlowAggregator {
    /// Start an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one query's report into the aggregate.
    pub fn add(&mut self, report: &QueryPruningReport) {
        self.queries += 1;
        *self
            .combo_counts
            .entry(report.techniques_used())
            .or_insert(0) += 1;
        self.total_partitions += report.partitions_total;
        self.total_scanned += report.partitions_scanned;
    }

    /// Share of queries where `technique` pruned at least one partition.
    pub fn share_using(&self, flag: u8) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        let n: u64 = self
            .combo_counts
            .iter()
            .filter(|(combo, _)| combo.contains(flag))
            .map(|(_, c)| c)
            .sum();
        n as f64 / self.queries as f64
    }

    /// The platform-wide pruning ratio across all partitions of all queries.
    pub fn overall_pruning_ratio(&self) -> f64 {
        if self.total_partitions == 0 {
            return 0.0;
        }
        (self.total_partitions - self.total_scanned.min(self.total_partitions)) as f64
            / self.total_partitions as f64
    }

    /// (combination label, query share) rows for the Figure 11 diagram.
    pub fn combination_shares(&self) -> Vec<(String, f64)> {
        self.combo_counts
            .iter()
            .map(|(combo, count)| (combo.label(), *count as f64 / self.queries.max(1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_set_labels() {
        let s = TechniqueSet::NONE
            .with(TechniqueSet::FILTER, true)
            .with(TechniqueSet::TOPK, true);
        assert_eq!(s.label(), "filter+topk");
        assert_eq!(TechniqueSet::NONE.label(), "none");
    }

    #[test]
    fn report_ratios_compose_in_order() {
        let r = QueryPruningReport {
            partitions_total: 100,
            pruned_by_filter: 50,
            pruned_by_limit: 0,
            pruned_by_join: 25,
            pruned_by_topk: 10,
            partitions_scanned: 15,
            ..Default::default()
        };
        assert_eq!(r.filter_ratio(), 0.5);
        assert_eq!(r.join_ratio(), 0.5); // 25 of the remaining 50
        assert_eq!(r.topk_ratio(), 0.4); // 10 of the remaining 25
        assert_eq!(r.overall_pruning_ratio(), 0.85);
        assert_eq!(r.techniques_used().label(), "filter+join+topk");
    }

    #[test]
    fn aggregator_counts_combinations() {
        let mut agg = FlowAggregator::new();
        let r1 = QueryPruningReport {
            partitions_total: 10,
            pruned_by_filter: 5,
            partitions_scanned: 5,
            ..Default::default()
        };
        agg.add(&r1);
        agg.add(&r1);
        let r2 = QueryPruningReport {
            partitions_total: 10,
            partitions_scanned: 10,
            ..Default::default()
        };
        agg.add(&r2);
        assert_eq!(agg.queries, 3);
        assert!((agg.share_using(TechniqueSet::FILTER) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(agg.share_using(TechniqueSet::TOPK), 0.0);
        assert!((agg.overall_pruning_ratio() - 10.0 / 30.0).abs() < 1e-9);
    }
}
