//! `snowprune-core`: the paper's four partition-pruning techniques.
//!
//! * [`filter`] — min/max filter pruning with an adaptive pruning tree:
//!   filter reordering, pruning cutoff, compile-time/runtime split (§3).
//! * [`limit`] — LIMIT pruning via fully-matching partitions (§4).
//! * [`topk`] — boundary-value top-k pruning with processing-order
//!   strategies and upfront boundary initialization (§5).
//! * [`join`] — probe-side partition pruning from build-side value
//!   summaries, plus a row-level Bloom filter (§6).
//! * [`flow`] — composition bookkeeping across techniques (§7).
//! * [`scan_set`] — the scan sets all techniques operate on (§2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
pub mod flow;
pub mod join;
pub mod limit;
pub mod scan_set;
pub mod topk;

pub use filter::{FilterPruneConfig, FilterPruneResult, FilterPruner};
pub use flow::{FlowAggregator, QueryPruningReport, TechniqueSet};
pub use join::{
    prune_probe_side, BloomFilter, JoinPruneResult, JoinSummary, RangeSetSummary, SummaryKind,
};
pub use limit::{prune_for_limit, LimitOutcome, LimitPruneResult, UnsupportedReason};
pub use scan_set::{pruning_ratio, ScanEntry, ScanSet};
pub use topk::{
    initial_boundary, order_scan_set, Boundary, PartitionOrder, TopKHeap, TopKScanStats,
};
