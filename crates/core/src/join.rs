//! Join pruning (§6): summarize build-side join-key values, ship the
//! summary to the probe side, and prune probe partitions whose min/max
//! ranges cannot overlap the summary.
//!
//! The summary trades accuracy against (network) size. Three variants:
//!
//! * [`JoinSummary::MinMax`] — global min/max: negligible size, weak.
//! * [`JoinSummary::RangeSet`] — sorted disjoint ranges under a budget,
//!   built by merging the closest-gap neighbours ("a small fraction of the
//!   build-side size"); this is the production default. Probabilistic in
//!   the paper's sense: it may fail to prune a prunable partition but never
//!   prunes a partition that could contain joinable rows.
//! * [`JoinSummary::Exact`] — the exact distinct key set (accuracy upper
//!   bound for ablations).
//!
//! A row-level [`BloomFilter`] complements partition pruning inside the
//! join operator, skipping hash-table probes for individual rows.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use snowprune_types::{Value, ZoneMap};

use crate::scan_set::ScanSet;

/// Build-side value summary for partition-level join pruning.
#[derive(Clone, Debug)]
pub enum JoinSummary {
    /// Build side produced no rows: every probe partition prunes.
    Empty,
    /// Global [min, max] of the build keys.
    MinMax {
        /// Smallest build key.
        min: Value,
        /// Largest build key.
        max: Value,
    },
    /// Sorted, disjoint, inclusive value ranges.
    RangeSet(RangeSetSummary),
    /// Exact distinct key set (sorted).
    Exact(Vec<Value>),
}

/// Which summary to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummaryKind {
    /// Single global [min, max] of the build keys.
    MinMax,
    /// Range set with at most this many ranges.
    RangeSet {
        /// Maximum number of ranges kept after merging.
        budget: usize,
    },
    /// Exact distinct key set.
    Exact,
}

impl JoinSummary {
    /// Summarize build-side key values (nulls never join and are dropped).
    pub fn build<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        kind: SummaryKind,
    ) -> JoinSummary {
        let mut keys: Vec<Value> = values
            .into_iter()
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        if keys.is_empty() {
            return JoinSummary::Empty;
        }
        keys.sort_by(|a, b| a.total_ord_cmp(b));
        keys.dedup();
        match kind {
            SummaryKind::MinMax => JoinSummary::MinMax {
                min: keys.first().unwrap().clone(),
                max: keys.last().unwrap().clone(),
            },
            SummaryKind::Exact => JoinSummary::Exact(keys),
            SummaryKind::RangeSet { budget } => {
                JoinSummary::RangeSet(RangeSetSummary::from_sorted_keys(keys, budget.max(1)))
            }
        }
    }

    /// Could a probe partition with this join-key zone map contain any
    /// joinable row? `false` ⇒ the partition is safely prunable.
    pub fn might_overlap(&self, zm: &ZoneMap) -> bool {
        if zm.non_null_count() == 0 {
            // Only NULL keys: they never match an equi-join.
            return false;
        }
        let (Some(min), max) = (&zm.min, &zm.max) else {
            return true; // no usable metadata: conservative
        };
        match self {
            JoinSummary::Empty => false,
            JoinSummary::MinMax {
                min: smin,
                max: smax,
            } => range_overlaps(min, max.as_ref(), smin, Some(smax)),
            JoinSummary::RangeSet(rs) => rs.overlaps(min, max.as_ref()),
            JoinSummary::Exact(keys) => keys.iter().any(|k| value_in_range(k, min, max.as_ref())),
        }
    }

    /// Approximate wire size of the summary (what sideways information
    /// passing ships between workers).
    pub fn serialized_bytes(&self) -> usize {
        match self {
            JoinSummary::Empty => 1,
            JoinSummary::MinMax { min, max } => 1 + min.approx_size() + max.approx_size(),
            JoinSummary::RangeSet(rs) => {
                1 + rs
                    .ranges
                    .iter()
                    .map(|(a, b)| a.approx_size() + b.approx_size())
                    .sum::<usize>()
            }
            JoinSummary::Exact(keys) => 1 + keys.iter().map(Value::approx_size).sum::<usize>(),
        }
    }
}

fn value_in_range(v: &Value, lo: &Value, hi: Option<&Value>) -> bool {
    let above_lo = !matches!(v.sql_cmp(lo), Some(Ordering::Less));
    let below_hi = match hi {
        Some(h) => !matches!(v.sql_cmp(h), Some(Ordering::Greater)),
        None => true,
    };
    // Incomparable types: sql_cmp returns None -> conservative true via the
    // !matches! structure above.
    above_lo && below_hi
}

fn range_overlaps(a_lo: &Value, a_hi: Option<&Value>, b_lo: &Value, b_hi: Option<&Value>) -> bool {
    let a_below_b = match a_hi {
        Some(ah) => matches!(ah.sql_cmp(b_lo), Some(Ordering::Less)),
        None => false,
    };
    let b_below_a = match b_hi {
        Some(bh) => matches!(bh.sql_cmp(a_lo), Some(Ordering::Less)),
        None => false,
    };
    !(a_below_b || b_below_a)
}

/// Sorted disjoint inclusive ranges under a count budget.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeSetSummary {
    /// Sorted, disjoint `[lo, hi]` inclusive ranges.
    pub ranges: Vec<(Value, Value)>,
}

impl RangeSetSummary {
    /// Build from sorted, deduplicated keys by greedily merging the
    /// closest-gap neighbouring ranges until within budget.
    fn from_sorted_keys(keys: Vec<Value>, budget: usize) -> RangeSetSummary {
        if keys.len() <= budget {
            return RangeSetSummary {
                ranges: keys.into_iter().map(|k| (k.clone(), k)).collect(),
            };
        }
        // Gaps between consecutive keys, ranked by a numeric projection.
        // Keeping the (budget-1) largest gaps open yields exactly `budget`
        // ranges that cover all keys with minimal added coverage.
        let n = keys.len();
        let mut gap_idx: Vec<usize> = (0..n - 1).collect();
        gap_idx.sort_by(|&i, &j| {
            gap_size(&keys[j], &keys[j + 1])
                .partial_cmp(&gap_size(&keys[i], &keys[i + 1]))
                .unwrap_or(Ordering::Equal)
        });
        let keep_open: std::collections::HashSet<usize> =
            gap_idx.into_iter().take(budget - 1).collect();
        let mut ranges = Vec::with_capacity(budget);
        let mut start = 0usize;
        for i in 0..n - 1 {
            if keep_open.contains(&i) {
                ranges.push((keys[start].clone(), keys[i].clone()));
                start = i + 1;
            }
        }
        ranges.push((keys[start].clone(), keys[n - 1].clone()));
        RangeSetSummary { ranges }
    }

    /// Binary-search overlap test against [lo, hi].
    pub fn overlaps(&self, lo: &Value, hi: Option<&Value>) -> bool {
        // Find the first range whose end >= lo, then check it starts <= hi.
        let idx = self
            .ranges
            .partition_point(|(_, end)| matches!(end.sql_cmp(lo), Some(Ordering::Less)));
        match self.ranges.get(idx) {
            None => {
                // lo is above all ranges; if any comparison was incomparable
                // partition_point may be off — fall back conservatively.
                self.ranges
                    .iter()
                    .any(|(s, e)| range_overlaps(lo, hi, s, Some(e)))
            }
            Some((start, _)) => match hi {
                None => true,
                Some(h) => !matches!(start.sql_cmp(h), Some(Ordering::Greater)),
            },
        }
    }

    /// Number of ranges in the summary.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the summary holds no ranges (empty build side).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Numeric projection of the gap between consecutive sorted values, used to
/// pick which gaps stay open when merging down to the budget.
fn gap_size(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => (y - x) as f64,
        (Value::Date(x), Value::Date(y)) => (y - x) as f64,
        (Value::Timestamp(x), Value::Timestamp(y)) => (y - x) as f64,
        (Value::Float(x), Value::Float(y)) => y - x,
        (Value::Int(x), Value::Float(y)) => y - *x as f64,
        (Value::Float(x), Value::Int(y)) => *y as f64 - x,
        (Value::Str(x), Value::Str(y)) => string_gap(x, y),
        _ => 1.0,
    }
}

/// Approximate lexicographic distance via the first 8 bytes.
fn string_gap(a: &str, b: &str) -> f64 {
    fn key(s: &str) -> u64 {
        let mut buf = [0u8; 8];
        for (i, byte) in s.bytes().take(8).enumerate() {
            buf[i] = byte;
        }
        u64::from_be_bytes(buf)
    }
    (key(b) as f64) - (key(a) as f64)
}

/// Result of probe-side join pruning.
#[derive(Clone, Debug)]
pub struct JoinPruneResult {
    /// Probe-side partitions that survived the summary check.
    pub scan_set: ScanSet,
    /// Probe-side partition count before join pruning.
    pub partitions_before: usize,
    /// Partitions removed by the summary check.
    pub pruned: usize,
    /// Bytes of summary shipped from build to probe side.
    pub summary_bytes: usize,
}

impl JoinPruneResult {
    /// Fraction of probe-side partitions removed.
    pub fn pruning_ratio(&self) -> f64 {
        crate::scan_set::pruning_ratio(self.partitions_before, self.scan_set.len())
    }
}

/// Prune a probe-side scan set using the build-side summary. `key_col` is
/// the probe-side join key's column index.
pub fn prune_probe_side(
    summary: &JoinSummary,
    scan_set: &ScanSet,
    metas: &[snowprune_storage::PartitionMeta],
    key_col: usize,
) -> JoinPruneResult {
    let before = scan_set.len();
    let entries: Vec<_> = scan_set
        .entries
        .iter()
        .filter(|e| {
            let Some(meta) = metas.iter().find(|m| m.id == e.id) else {
                return true; // metadata unavailable: conservative
            };
            summary.might_overlap(&meta.zone_maps[key_col])
        })
        .cloned()
        .collect();
    JoinPruneResult {
        pruned: before - entries.len(),
        scan_set: ScanSet { entries },
        partitions_before: before,
        summary_bytes: summary.serialized_bytes(),
    }
}

/// A simple partitioned Bloom filter over join keys for row-level probe
/// filtering (the classic sideways-information-passing companion, §6.1).
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
}

impl BloomFilter {
    /// `expected` insertions at roughly 1% false-positive rate.
    pub fn with_capacity(expected: usize) -> Self {
        let bits_needed = (expected.max(1) * 10).next_power_of_two().max(64);
        BloomFilter {
            bits: vec![0; bits_needed / 64],
            mask: bits_needed as u64 - 1,
            hashes: 7,
        }
    }

    fn hash_pair(v: &Value) -> (u64, u64) {
        let mut h1 = DefaultHasher::new();
        v.hash(&mut h1);
        let a = h1.finish();
        let mut h2 = DefaultHasher::new();
        (a ^ 0x9e37_79b9_7f4a_7c15).hash(&mut h2);
        v.hash(&mut h2);
        (a, h2.finish() | 1)
    }

    /// Add one build-side key to the filter.
    pub fn insert(&mut self, v: &Value) {
        let (a, b) = Self::hash_pair(v);
        for i in 0..self.hashes as u64 {
            let bit = a.wrapping_add(i.wrapping_mul(b)) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Probe the filter: false means the key is definitely absent.
    pub fn might_contain(&self, v: &Value) -> bool {
        let (a, b) = Self::hash_pair(v);
        (0..self.hashes as u64).all(|i| {
            let bit = a.wrapping_add(i.wrapping_mul(b)) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Wire size of the bit array, for summary-shipping accounting.
    pub fn serialized_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_set::ScanEntry;
    use snowprune_storage::PartitionMeta;
    use snowprune_types::MatchClass;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().copied().map(Value::Int).collect()
    }

    fn zm(min: i64, max: i64) -> ZoneMap {
        ZoneMap {
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            min_exact: true,
            max_exact: true,
            null_count: 0,
            row_count: 10,
        }
    }

    #[test]
    fn empty_build_side_prunes_everything() {
        let s = JoinSummary::build(&[], SummaryKind::MinMax);
        assert!(matches!(s, JoinSummary::Empty));
        assert!(!s.might_overlap(&zm(0, 100)));
        let nulls_only = vec![Value::Null, Value::Null];
        let s2 = JoinSummary::build(&nulls_only, SummaryKind::Exact);
        assert!(matches!(s2, JoinSummary::Empty));
    }

    #[test]
    fn range_set_respects_budget_and_keeps_biggest_gaps() {
        let keys = ints(&[1, 2, 3, 100, 101, 500]);
        let s = JoinSummary::build(&keys, SummaryKind::RangeSet { budget: 3 });
        let JoinSummary::RangeSet(rs) = &s else {
            panic!()
        };
        assert_eq!(
            rs.ranges,
            vec![
                (Value::Int(1), Value::Int(3)),
                (Value::Int(100), Value::Int(101)),
                (Value::Int(500), Value::Int(500)),
            ]
        );
        // Partition [4, 99] falls into a kept-open gap: pruned.
        assert!(!s.might_overlap(&zm(4, 99)));
        assert!(s.might_overlap(&zm(3, 4)));
        assert!(s.might_overlap(&zm(400, 600)));
        assert!(!s.might_overlap(&zm(501, 900)));
        assert!(!s.might_overlap(&zm(-10, 0)));
    }

    #[test]
    fn min_max_summary_is_weaker_than_range_set() {
        let keys = ints(&[1, 1000]);
        let minmax = JoinSummary::build(&keys, SummaryKind::MinMax);
        let ranges = JoinSummary::build(&keys, SummaryKind::RangeSet { budget: 8 });
        // The hole [2, 999] is invisible to min/max but visible to ranges.
        assert!(minmax.might_overlap(&zm(500, 600)));
        assert!(!ranges.might_overlap(&zm(500, 600)));
    }

    #[test]
    fn exact_summary_point_lookups() {
        let keys = ints(&[5, 10, 15]);
        let s = JoinSummary::build(&keys, SummaryKind::Exact);
        assert!(s.might_overlap(&zm(9, 11)));
        assert!(!s.might_overlap(&zm(11, 14)));
    }

    #[test]
    fn null_only_probe_partition_prunes() {
        let s = JoinSummary::build(&ints(&[1, 2]), SummaryKind::Exact);
        let null_zm = ZoneMap {
            min: None,
            max: None,
            min_exact: false,
            max_exact: false,
            null_count: 10,
            row_count: 10,
        };
        assert!(!s.might_overlap(&null_zm), "NULL keys never equi-join");
    }

    #[test]
    fn probe_side_pruning_end_to_end() {
        let metas: Vec<PartitionMeta> = (0..10)
            .map(|i| PartitionMeta {
                id: i,
                row_count: 10,
                bytes: 100,
                zone_maps: vec![zm(i as i64 * 100, i as i64 * 100 + 99)],
            })
            .collect();
        let ss = ScanSet {
            entries: metas
                .iter()
                .map(|m| ScanEntry {
                    id: m.id,
                    class: MatchClass::PartiallyMatching,
                    row_count: m.row_count,
                    bytes: m.bytes,
                })
                .collect(),
        };
        // Build keys live only in partitions 1 and 7's ranges.
        let summary =
            JoinSummary::build(&ints(&[150, 160, 720]), SummaryKind::RangeSet { budget: 4 });
        let res = prune_probe_side(&summary, &ss, &metas, 0);
        assert_eq!(res.scan_set.ids(), vec![1, 7]);
        assert_eq!(res.pruned, 8);
        assert!((res.pruning_ratio() - 0.8).abs() < 1e-9);
        assert!(res.summary_bytes > 0);
    }

    #[test]
    fn bloom_filter_has_no_false_negatives() {
        let mut bf = BloomFilter::with_capacity(1000);
        for i in 0..1000i64 {
            bf.insert(&Value::Int(i * 3));
        }
        for i in 0..1000i64 {
            assert!(bf.might_contain(&Value::Int(i * 3)));
        }
        // False-positive rate sane (well under 10%).
        let fps = (0..1000i64)
            .filter(|i| bf.might_contain(&Value::Int(i * 3 + 1)))
            .count();
        assert!(fps < 100, "false positive rate too high: {fps}/1000");
    }

    #[test]
    fn summary_sizes_ordered_by_fidelity() {
        let keys: Vec<Value> = (0..1000i64).map(Value::Int).collect();
        let minmax = JoinSummary::build(&keys, SummaryKind::MinMax);
        let ranges = JoinSummary::build(&keys, SummaryKind::RangeSet { budget: 64 });
        let exact = JoinSummary::build(&keys, SummaryKind::Exact);
        assert!(minmax.serialized_bytes() < ranges.serialized_bytes());
        assert!(ranges.serialized_bytes() < exact.serialized_bytes());
    }
}
