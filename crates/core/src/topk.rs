//! Top-k pruning (§5): boundary-value runtime pruning in the style of
//! block-max WAND, plus partition processing-order strategies (§5.3) and
//! upfront boundary initialization from fully-matching partitions (§5.4).
//!
//! Semantics note: the top-k heap ranks **non-null** ORDER BY values (NULLS
//! LAST for descending queries, mirroring common SQL defaults); rows with a
//! NULL ordering key never enter the heap, so partitions whose ordering
//! column is entirely NULL can be skipped outright.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::RwLock;
use snowprune_storage::PartitionMeta;
use snowprune_types::{KeyValue, MatchClass, Value, ZoneMap};

use crate::scan_set::ScanSet;

/// The shared pruning boundary: the k-th best ORDER BY value seen so far.
/// Shared between the TopK operator and table scans ("passing information
/// both horizontally and vertically", §2.1).
///
/// A boundary can be *seeded* upfront (§5.4) before the heap holds k rows.
/// A seeded bound only guarantees that k qualifying rows `>= boundary`
/// exist — some of those rows may sit in partitions whose max *equals* the
/// boundary, so skipping must be **strict** (`max < boundary`). The
/// inclusive rule (`max <= boundary`) becomes sound exactly when the
/// stored bound is the heap's own k-th value (set via
/// [`Boundary::tighten_inclusive`]): a row equal to the k-th value cannot
/// displace anything.
#[derive(Debug)]
pub struct Boundary {
    desc: bool,
    /// (bound, inclusive_ok): `inclusive_ok` is true when `bound` came
    /// from a full heap (bound == current k-th best).
    value: RwLock<(Option<Value>, bool)>,
    /// Bumped on every effective tightening (new bound, or an inclusive
    /// upgrade of the current bound). Because the boundary is monotone,
    /// a worker that cached a skip decision at epoch `e` knows the decision
    /// still holds at any later epoch — staleness can only under-prune.
    epoch: AtomicU64,
}

impl Boundary {
    /// Create an empty boundary for the given sort direction.
    pub fn new(desc: bool) -> Arc<Self> {
        Arc::new(Boundary {
            desc,
            value: RwLock::new((None, false)),
            epoch: AtomicU64::new(0),
        })
    }

    /// Create with an upfront initial value (§5.4); seeded bounds use
    /// strict skipping.
    pub fn with_initial(desc: bool, initial: Option<Value>) -> Arc<Self> {
        Arc::new(Boundary {
            desc,
            value: RwLock::new((initial, false)),
            epoch: AtomicU64::new(0),
        })
    }

    /// The sort direction the boundary tracks.
    pub fn desc(&self) -> bool {
        self.desc
    }

    /// Current boundary value, if one has been published.
    pub fn get(&self) -> Option<Value> {
        self.value.read().0.clone()
    }

    /// Whether the inclusive skip rule currently applies.
    pub fn is_inclusive(&self) -> bool {
        self.value.read().1
    }

    /// Consistent snapshot of `(bound, inclusive)` — what a scan worker
    /// sees when it consults the boundary between two morsels.
    pub fn state(&self) -> (Option<Value>, bool) {
        self.value.read().clone()
    }

    /// Number of effective tightenings so far. Strictly monotone; two
    /// equal epochs imply identical `state()`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(AtomicOrdering::Acquire)
    }

    /// Tighten the boundary with an *external* bound (upfront seeding):
    /// monotone, and resets the bound to strict-skip semantics.
    pub fn tighten(&self, v: &Value) {
        self.tighten_impl(v, false);
    }

    /// Tighten with the heap's own k-th best value. When this value becomes
    /// (or already equals) the stored bound, inclusive skipping is sound.
    pub fn tighten_inclusive(&self, v: &Value) {
        self.tighten_impl(v, true);
    }

    fn tighten_impl(&self, v: &Value, from_heap: bool) {
        if v.is_null() {
            return;
        }
        let mut guard = self.value.write();
        let (better, equal) = match &guard.0 {
            None => (true, false),
            Some(cur) => match v.total_ord_cmp(cur) {
                Ordering::Greater => (self.desc, false),
                Ordering::Less => (!self.desc, false),
                Ordering::Equal => (false, true),
            },
        };
        if better {
            *guard = (Some(v.clone()), from_heap);
            self.epoch.fetch_add(1, AtomicOrdering::Release);
        } else if equal && from_heap && !guard.1 {
            guard.1 = true;
            self.epoch.fetch_add(1, AtomicOrdering::Release);
        }
    }

    /// Can a partition with this ORDER BY zone map be skipped?
    ///
    /// For DESC: skip when the partition's max is `<=` the boundary — no
    /// row in it can displace the current k-th value. Unbounded or missing
    /// metadata never skips. All-NULL ordering columns always skip.
    pub fn should_skip(&self, zm: &ZoneMap) -> bool {
        if zm.row_count == 0 || zm.all_null() {
            return true;
        }
        let guard = self.value.read();
        let (Some(bound), inclusive) = (&guard.0, guard.1) else {
            return false;
        };
        boundary_allows_skip(self.desc, bound, inclusive, zm)
    }
}

/// The pure skip rule, factored out of [`Boundary::should_skip`] so that
/// pruning against a *stale snapshot* of the boundary (what pooled scan
/// workers do between morsels) can be reasoned about and property-tested
/// directly: because bounds only tighten, any `(bound, inclusive)` state
/// that once allowed a skip keeps allowing it — a stale snapshot may
/// under-prune but never over-prune. Callers must have already handled the
/// empty / all-NULL zone-map cases.
pub fn boundary_allows_skip(desc: bool, bound: &Value, inclusive: bool, zm: &ZoneMap) -> bool {
    if desc {
        match &zm.max {
            Some(max) => match max.sql_cmp(bound) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => inclusive,
                _ => false,
            },
            None => false,
        }
    } else {
        match &zm.min {
            Some(min) => match min.sql_cmp(bound) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => inclusive,
                _ => false,
            },
            None => false,
        }
    }
}

struct HeapEntry<T> {
    key: KeyValue,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// The heap-based top-k accumulator (the "standard heap-based approach" of
/// §5) that additionally feeds the pruning [`Boundary`].
pub struct TopKHeap<T> {
    k: usize,
    desc: bool,
    // For DESC queries this is a min-heap (via Reverse) holding the k
    // largest; for ASC a max-heap holding the k smallest.
    desc_heap: BinaryHeap<std::cmp::Reverse<HeapEntry<T>>>,
    asc_heap: BinaryHeap<HeapEntry<T>>,
    boundary: Arc<Boundary>,
    seq: u64,
}

impl<T> TopKHeap<T> {
    /// Create a heap of capacity `k` sharing `boundary` with the scan.
    pub fn new(k: usize, desc: bool, boundary: Arc<Boundary>) -> Self {
        assert_eq!(boundary.desc(), desc);
        TopKHeap {
            k,
            desc,
            desc_heap: BinaryHeap::new(),
            asc_heap: BinaryHeap::new(),
            boundary,
            seq: 0,
        }
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        if self.desc {
            self.desc_heap.len()
        } else {
            self.asc_heap.len()
        }
    }

    /// True when the heap holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once `k` rows are held (the boundary is live from here on).
    pub fn is_full(&self) -> bool {
        self.len() >= self.k
    }

    /// Offer a row. NULL keys are ignored (NULLS LAST semantics).
    pub fn insert(&mut self, key: Value, payload: T) {
        if key.is_null() || self.k == 0 {
            return;
        }
        self.seq += 1;
        let entry = HeapEntry {
            key: KeyValue(key),
            seq: self.seq,
            payload,
        };
        if self.desc {
            if self.desc_heap.len() < self.k {
                self.desc_heap.push(std::cmp::Reverse(entry));
            } else {
                let min = &self.desc_heap.peek().unwrap().0;
                if entry.key > min.key {
                    self.desc_heap.pop();
                    self.desc_heap.push(std::cmp::Reverse(entry));
                }
            }
            if self.desc_heap.len() >= self.k {
                let min = &self.desc_heap.peek().unwrap().0;
                self.boundary.tighten_inclusive(&min.key.0.clone());
            }
        } else {
            if self.asc_heap.len() < self.k {
                self.asc_heap.push(entry);
            } else {
                let max = self.asc_heap.peek().unwrap();
                if entry.key < max.key {
                    self.asc_heap.pop();
                    self.asc_heap.push(entry);
                }
            }
            if self.asc_heap.len() >= self.k {
                let max = self.asc_heap.peek().unwrap();
                self.boundary.tighten_inclusive(&max.key.0.clone());
            }
        }
    }

    /// Drain into final result order (best first).
    pub fn into_sorted(self) -> Vec<(Value, T)> {
        let mut items: Vec<HeapEntry<T>> = if self.desc {
            self.desc_heap.into_iter().map(|r| r.0).collect()
        } else {
            self.asc_heap.into_vec()
        };
        if self.desc {
            items.sort_by(|a, b| b.key.cmp(&a.key).then(a.seq.cmp(&b.seq)));
        } else {
            items.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        }
        items.into_iter().map(|e| (e.key.0, e.payload)).collect()
    }
}

/// Partition processing-order strategies evaluated in §5.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionOrder {
    /// Keep the scan-set order as produced by earlier pruning.
    Unsorted,
    /// Deterministic random order (the paper's "None/random" baseline).
    Random {
        /// Shuffle seed, so the baseline is reproducible.
        seed: u64,
    },
    /// Full sort by the ORDER BY column's max (DESC) / min (ASC): partitions
    /// likely to hold top values first.
    ByBoundary,
    /// Extension: like `ByBoundary` but fully-matching partitions first
    /// within equal bounds, countering the selective-filter pathology the
    /// paper describes (sorting may prioritize partitions whose rows are
    /// all filtered out).
    FullyMatchingFirst,
}

/// Reorder a scan set in place for top-k processing.
pub fn order_scan_set(
    scan_set: &mut ScanSet,
    metas: &[PartitionMeta],
    order_col: usize,
    desc: bool,
    strategy: PartitionOrder,
) {
    let find = |id: u64| metas.iter().find(|m| m.id == id);
    match strategy {
        PartitionOrder::Unsorted => {}
        PartitionOrder::Random { seed } => {
            let mut state = seed ^ 0x243f_6a88_85a3_08d3;
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let n = scan_set.entries.len();
            for i in (1..n).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                scan_set.entries.swap(i, j);
            }
        }
        PartitionOrder::ByBoundary | PartitionOrder::FullyMatchingFirst => {
            let fm_first = strategy == PartitionOrder::FullyMatchingFirst;
            scan_set.entries.sort_by(|a, b| {
                if fm_first {
                    let fa = a.class == MatchClass::FullyMatching;
                    let fb = b.class == MatchClass::FullyMatching;
                    if fa != fb {
                        return fb.cmp(&fa);
                    }
                }
                let bound = |id: u64| -> Option<Value> {
                    let zm = &find(id)?.zone_maps[order_col];
                    if desc {
                        zm.max.clone()
                    } else {
                        zm.min.clone()
                    }
                };
                let (ba, bb) = (bound(a.id), bound(b.id));
                match (ba, bb) {
                    // Unbounded (None) sorts first: it may hold anything.
                    (None, None) => a.id.cmp(&b.id),
                    (None, Some(_)) => Ordering::Less,
                    (Some(_), None) => Ordering::Greater,
                    (Some(x), Some(y)) => {
                        let ord = x.total_ord_cmp(&y);
                        if desc { ord.reverse() } else { ord }.then(a.id.cmp(&b.id))
                    }
                }
            });
        }
    }
}

/// Upfront boundary initialization (§5.4): derive an initial boundary from
/// fully-matching partitions so pruning can start before the heap fills.
///
/// Two candidate bounds are computed and the stricter one returned:
/// * the k-th largest **exact** max of the ORDER BY column over
///   fully-matching partitions (each exact max is a real qualifying row);
/// * sort fully-matching partitions by min (descending for DESC), take the
///   min of the first partition at which the cumulative non-null row count
///   reaches `k` — all those rows are qualifying and at least that min.
pub fn initial_boundary(
    scan_set: &ScanSet,
    metas: &[PartitionMeta],
    order_col: usize,
    k: u64,
    desc: bool,
) -> Option<Value> {
    if k == 0 {
        return None;
    }
    let fm_maps: Vec<&ZoneMap> = scan_set
        .fully_matching()
        .filter_map(|e| metas.iter().find(|m| m.id == e.id))
        .map(|m| &m.zone_maps[order_col])
        .collect();
    if fm_maps.is_empty() {
        return None;
    }
    let candidate_a = kth_exact_extremum(&fm_maps, k, desc);
    let candidate_b = cumulative_bound(&fm_maps, k, desc);
    match (candidate_a, candidate_b) {
        (Some(a), Some(b)) => Some(stricter(a, b, desc)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

fn stricter(a: Value, b: Value, desc: bool) -> Value {
    match a.total_ord_cmp(&b) {
        Ordering::Greater => {
            if desc {
                a
            } else {
                b
            }
        }
        _ => {
            if desc {
                b
            } else {
                a
            }
        }
    }
}

fn kth_exact_extremum(maps: &[&ZoneMap], k: u64, desc: bool) -> Option<Value> {
    let mut extremes: Vec<Value> = maps
        .iter()
        .filter(|zm| zm.non_null_count() > 0)
        .filter_map(|zm| {
            if desc {
                zm.max_exact.then(|| zm.max.clone()).flatten()
            } else {
                zm.min_exact.then(|| zm.min.clone()).flatten()
            }
        })
        .collect();
    if (extremes.len() as u64) < k {
        return None;
    }
    extremes.sort_by(|a, b| {
        let ord = a.total_ord_cmp(b);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    extremes.into_iter().nth(k as usize - 1)
}

fn cumulative_bound(maps: &[&ZoneMap], k: u64, desc: bool) -> Option<Value> {
    let mut with_bound: Vec<(&&ZoneMap, Value)> = maps
        .iter()
        .filter(|zm| zm.non_null_count() > 0)
        .filter_map(|zm| {
            let b = if desc { zm.min.clone() } else { zm.max.clone() };
            b.map(|v| (zm, v))
        })
        .collect();
    with_bound.sort_by(|(_, a), (_, b)| {
        let ord = a.total_ord_cmp(b);
        if desc {
            ord.reverse()
        } else {
            ord
        }
    });
    let mut cum = 0u64;
    for (zm, bound) in with_bound {
        cum += zm.non_null_count();
        if cum >= k {
            return Some(bound);
        }
    }
    None
}

/// Runtime statistics for top-k pruning on one scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopKScanStats {
    /// Partitions that reached the boundary check.
    pub partitions_considered: u64,
    /// Partitions skipped because they could not beat the boundary.
    pub partitions_skipped: u64,
}

impl TopKScanStats {
    /// Fraction of considered partitions skipped.
    pub fn pruning_ratio(&self) -> f64 {
        if self.partitions_considered == 0 {
            0.0
        } else {
            self.partitions_skipped as f64 / self.partitions_considered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_set::ScanEntry;

    fn zm(min: i64, max: i64, rows: u64) -> ZoneMap {
        ZoneMap {
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            min_exact: true,
            max_exact: true,
            null_count: 0,
            row_count: rows,
        }
    }

    fn meta(id: u64, min: i64, max: i64, rows: u64) -> PartitionMeta {
        PartitionMeta {
            id,
            row_count: rows,
            bytes: rows * 8,
            zone_maps: vec![zm(min, max, rows)],
        }
    }

    #[test]
    fn heap_keeps_top_k_desc() {
        let boundary = Boundary::new(true);
        let mut h = TopKHeap::new(3, true, Arc::clone(&boundary));
        for v in [5i64, 1, 9, 3, 7, 7, 2] {
            h.insert(Value::Int(v), v);
        }
        let top: Vec<i64> = h.into_sorted().into_iter().map(|(_, p)| p).collect();
        assert_eq!(top, vec![9, 7, 7]);
        assert_eq!(boundary.get(), Some(Value::Int(7)));
    }

    #[test]
    fn heap_keeps_bottom_k_asc() {
        let boundary = Boundary::new(false);
        let mut h = TopKHeap::new(2, false, Arc::clone(&boundary));
        for v in [5i64, 1, 9, 3] {
            h.insert(Value::Int(v), v);
        }
        let top: Vec<i64> = h.into_sorted().into_iter().map(|(_, p)| p).collect();
        assert_eq!(top, vec![1, 3]);
        assert_eq!(boundary.get(), Some(Value::Int(3)));
    }

    #[test]
    fn heap_ignores_nulls() {
        let boundary = Boundary::new(true);
        let mut h = TopKHeap::new(2, true, Arc::clone(&boundary));
        h.insert(Value::Null, 0);
        h.insert(Value::Int(4), 4);
        assert_eq!(h.len(), 1);
        assert!(!h.is_full());
    }

    #[test]
    fn boundary_skip_rules_desc() {
        let b = Boundary::new(true);
        assert!(!b.should_skip(&zm(0, 10, 5)), "no boundary yet");
        b.tighten(&Value::Int(7));
        // Seeded boundary: strict skipping only — a partition whose max
        // equals the bound may hold the k-th row itself.
        assert!(!b.should_skip(&zm(0, 7, 5)), "equal max survives seeding");
        assert!(b.should_skip(&zm(0, 6, 5)));
        // A heap-derived bound *below* the seed must not enable inclusive
        // skipping at the seed value.
        b.tighten_inclusive(&Value::Int(5));
        assert!(!b.should_skip(&zm(0, 7, 5)));
        // Once the heap's k-th value reaches the bound, inclusive applies.
        b.tighten_inclusive(&Value::Int(7));
        assert!(
            b.should_skip(&zm(0, 7, 5)),
            "max == heap k-th cannot improve"
        );
        assert!(b.should_skip(&zm(0, 6, 5)));
        assert!(!b.should_skip(&zm(0, 8, 5)));
        // All-null ordering column: skip.
        let all_null = ZoneMap {
            min: None,
            max: None,
            min_exact: false,
            max_exact: false,
            null_count: 5,
            row_count: 5,
        };
        assert!(b.should_skip(&all_null));
        // Unbounded max (truncation carry): never skip.
        let unbounded = ZoneMap {
            max: None,
            ..zm(0, 0, 5)
        };
        assert!(!b.should_skip(&unbounded));
    }

    #[test]
    fn boundary_only_tightens() {
        let b = Boundary::new(true);
        b.tighten(&Value::Int(5));
        b.tighten(&Value::Int(3)); // looser: ignored
        assert_eq!(b.get(), Some(Value::Int(5)));
        b.tighten(&Value::Int(8));
        assert_eq!(b.get(), Some(Value::Int(8)));
        let asc = Boundary::new(false);
        asc.tighten(&Value::Int(5));
        asc.tighten(&Value::Int(8));
        assert_eq!(asc.get(), Some(Value::Int(5)));
    }

    fn scan_set_for(metas: &[PartitionMeta], classes: &[MatchClass]) -> ScanSet {
        ScanSet {
            entries: metas
                .iter()
                .zip(classes)
                .map(|(m, c)| ScanEntry {
                    id: m.id,
                    class: *c,
                    row_count: m.row_count,
                    bytes: m.bytes,
                })
                .collect(),
        }
    }

    #[test]
    fn full_sort_orders_by_max_desc() {
        let metas = vec![meta(0, 0, 10, 5), meta(1, 5, 99, 5), meta(2, 20, 50, 5)];
        let mut ss = scan_set_for(&metas, &[MatchClass::PartiallyMatching; 3]);
        order_scan_set(&mut ss, &metas, 0, true, PartitionOrder::ByBoundary);
        assert_eq!(ss.ids(), vec![1, 2, 0]);
        order_scan_set(&mut ss, &metas, 0, false, PartitionOrder::ByBoundary);
        assert_eq!(ss.ids(), vec![0, 1, 2]); // by min asc
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let metas: Vec<PartitionMeta> = (0..20).map(|i| meta(i, 0, 10, 5)).collect();
        let mut a = scan_set_for(&metas, &[MatchClass::PartiallyMatching; 20]);
        let mut b = scan_set_for(&metas, &[MatchClass::PartiallyMatching; 20]);
        order_scan_set(&mut a, &metas, 0, true, PartitionOrder::Random { seed: 9 });
        order_scan_set(&mut b, &metas, 0, true, PartitionOrder::Random { seed: 9 });
        assert_eq!(a.ids(), b.ids());
        assert_ne!(a.ids(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn initial_boundary_uses_stricter_method() {
        // Three fully-matching partitions, k = 2.
        // Maxes: 100, 80, 60 -> method A: 2nd largest max = 80.
        // Mins desc: 50, 40, 10; cumulative rows reach 2 at first partition
        // (5 rows) -> method B: 50.
        let metas = vec![meta(0, 50, 100, 5), meta(1, 40, 80, 5), meta(2, 10, 60, 5)];
        let ss = scan_set_for(&metas, &[MatchClass::FullyMatching; 3]);
        let b = initial_boundary(&ss, &metas, 0, 2, true).unwrap();
        assert_eq!(b, Value::Int(80));
        // With k = 20, method A has too few partitions; method B needs all
        // three partitions: min of the last = 10.
        let b2 = initial_boundary(&ss, &metas, 0, 15, true).unwrap();
        assert_eq!(b2, Value::Int(10));
        assert_eq!(initial_boundary(&ss, &metas, 0, 16, true), None);
    }

    #[test]
    fn initial_boundary_for_sorted_table_prefers_min_method() {
        // Disjoint (sorted) partitions: method B shines (§5.4: "for
        // (partially) sorted tables, the largest min-value is often the
        // better choice").
        let metas = vec![
            meta(0, 90, 100, 10),
            meta(1, 70, 89, 10),
            meta(2, 0, 69, 10),
        ];
        let ss = scan_set_for(&metas, &[MatchClass::FullyMatching; 3]);
        let b = initial_boundary(&ss, &metas, 0, 10, true).unwrap();
        // Method A: 10th largest exact max over 3 partitions -> None.
        // Method B: first partition already holds 10 rows, min 90.
        assert_eq!(b, Value::Int(90));
    }

    #[test]
    fn initial_boundary_ignores_inexact_maxes() {
        let mut m = meta(0, 0, 100, 5);
        m.zone_maps[0].max_exact = false;
        let metas = vec![m, meta(1, 10, 60, 5)];
        let ss = scan_set_for(&metas, &[MatchClass::FullyMatching; 2]);
        // k=1: method A must use partition 1's exact max (60), not the
        // inexact 100; method B: mins desc = [10, 0] -> first has 5 rows >= 1 -> 10.
        let b = initial_boundary(&ss, &metas, 0, 1, true).unwrap();
        assert_eq!(b, Value::Int(60));
    }

    #[test]
    fn no_fully_matching_no_boundary() {
        let metas = vec![meta(0, 0, 10, 5)];
        let ss = scan_set_for(&metas, &[MatchClass::PartiallyMatching]);
        assert_eq!(initial_boundary(&ss, &metas, 0, 1, true), None);
    }
}
