//! Scan sets: the serialized list of micro-partitions a query plan ships to
//! the virtual warehouse (§2 "Virtual Warehouses").

use snowprune_storage::{PartitionId, PartitionMeta};
use snowprune_types::MatchClass;

/// One surviving partition in a scan set, annotated with its match class
/// from filter pruning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanEntry {
    /// The partition's id.
    pub id: PartitionId,
    /// Filter-pruning match class (partially vs fully matching).
    pub class: MatchClass,
    /// Rows in the partition.
    pub row_count: u64,
    /// Serialized size of the partition.
    pub bytes: u64,
}

/// The ordered set of partitions a table scan will process.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanSet {
    /// Surviving partitions, in processing order.
    pub entries: Vec<ScanEntry>,
}

impl ScanSet {
    /// An unpruned scan set covering all partitions.
    pub fn full(metas: &[PartitionMeta]) -> Self {
        ScanSet {
            entries: metas
                .iter()
                .map(|m| ScanEntry {
                    id: m.id,
                    class: MatchClass::PartiallyMatching,
                    row_count: m.row_count,
                    bytes: m.bytes,
                })
                .collect(),
        }
    }

    /// Number of surviving partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no partition survived pruning.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The surviving partition ids, in order.
    pub fn ids(&self) -> Vec<PartitionId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Total rows across surviving partitions.
    pub fn total_rows(&self) -> u64 {
        self.entries.iter().map(|e| e.row_count).sum()
    }

    /// Total bytes across surviving partitions.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Entries classified fully-matching (§4.1).
    pub fn fully_matching(&self) -> impl Iterator<Item = &ScanEntry> {
        self.entries
            .iter()
            .filter(|e| e.class == MatchClass::FullyMatching)
    }

    /// Total rows in fully-matching partitions.
    pub fn fully_matching_rows(&self) -> u64 {
        self.fully_matching().map(|e| e.row_count).sum()
    }

    /// Approximate wire size of the serialized scan set (benefit (4) of
    /// §2.1: smaller scan sets mean less (de)serialization work).
    pub fn serialized_bytes(&self) -> usize {
        // id (8) + class tag (1) + row count varint (~4)
        self.entries.len() * 13 + 16
    }
}

/// Ratio of partitions removed, relative to `before` partitions.
pub fn pruning_ratio(before: usize, after: usize) -> f64 {
    if before == 0 {
        return 0.0;
    }
    debug_assert!(after <= before);
    (before - after) as f64 / before as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, class: MatchClass, rows: u64) -> ScanEntry {
        ScanEntry {
            id,
            class,
            row_count: rows,
            bytes: rows * 100,
        }
    }

    #[test]
    fn fully_matching_accounting() {
        let ss = ScanSet {
            entries: vec![
                entry(0, MatchClass::PartiallyMatching, 10),
                entry(1, MatchClass::FullyMatching, 20),
                entry(2, MatchClass::FullyMatching, 5),
            ],
        };
        assert_eq!(ss.fully_matching().count(), 2);
        assert_eq!(ss.fully_matching_rows(), 25);
        assert_eq!(ss.total_rows(), 35);
    }

    #[test]
    fn ratio() {
        assert_eq!(pruning_ratio(100, 25), 0.75);
        assert_eq!(pruning_ratio(0, 0), 0.0);
        assert_eq!(pruning_ratio(10, 10), 0.0);
    }
}
