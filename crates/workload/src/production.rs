//! The calibrated production-like workload: tables with realistic layout
//! diversity plus a query generator whose mix matches the statistics the
//! paper publishes (Table 1 frequencies, Figure 6 k-distribution,
//! Figure 4-style selectivity profile, Figure 12 repetitiveness).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snowprune_expr::dsl::{col, lit};
use snowprune_expr::Expr;
use snowprune_plan::{to_sql, AggFunc, JoinType, Plan, PlanBuilder};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

use crate::kdist::sample_k;

/// What kind of query the generator produced (drives per-figure filtering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// SELECT with ≥1 predicate, no LIMIT.
    FilteredSelect,
    /// SELECT without predicates.
    FullScan,
    /// LIMIT without predicate.
    LimitNoPredicate,
    /// LIMIT with predicate.
    LimitWithPredicate,
    /// ORDER BY x LIMIT k.
    TopK,
    /// GROUP BY x ORDER BY x LIMIT k.
    TopKGroupByKey,
    /// GROUP BY y ORDER BY agg(x) LIMIT k (not prunable, §5.2).
    TopKGroupByAgg,
    /// Join query.
    Join,
}

/// A generated query.
#[derive(Clone, Debug)]
pub struct GeneratedQuery {
    /// The logical plan to execute.
    pub plan: Plan,
    /// SQL rendering of the plan (for logs and corpus dumps).
    pub sql: String,
    /// Which generator arm produced it.
    pub kind: QueryKind,
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Rows per micro-partition for the generated tables.
    pub rows_per_partition: usize,
    /// Partitions in the large fact tables.
    pub fact_partitions: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 500,
            rows_per_partition: 500,
            fact_partitions: 80,
        }
    }
}

/// A generated catalog + query stream.
pub struct ProductionWorkload {
    /// The generated tables.
    pub catalog: Catalog,
    /// The generated query stream.
    pub queries: Vec<GeneratedQuery>,
}

fn events_schema() -> Schema {
    Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("user_id", ScalarType::Int),
        Field::new("category", ScalarType::Str),
        Field::new("metric", ScalarType::Int),
        Field::new("name", ScalarType::Str),
    ])
}

fn dim_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", ScalarType::Int),
        Field::new("label", ScalarType::Str),
        Field::new("weight", ScalarType::Int),
    ])
}

/// Build the workload tables: fact tables with clustered / partially
/// clustered / shuffled layouts plus a small dimension table. The layout
/// mix is what produces the Figure 4 shape (a large well-clustered share
/// pruning ≥90%, a long tail pruning nothing).
fn build_tables(catalog: &Catalog, cfg: &WorkloadConfig, rng: &mut StdRng) {
    let categories = ["web", "mobile", "batch", "iot", "ops", "ml"];
    let rows = cfg.rows_per_partition * cfg.fact_partitions;
    for (name, layout) in [
        ("events_clustered", Layout::ClusterBy(vec!["ts".into()])),
        ("events_partial", Layout::Natural),
        ("events_shuffled", Layout::Shuffle(17)),
        // Clustered by the join key: the "sufficient correlation in data
        // layout between build and probe sides" that §8.3 calls out as a
        // precondition for join pruning.
        ("events_bykey", Layout::ClusterBy(vec!["user_id".into()])),
    ] {
        let mut b = TableBuilder::new(name, events_schema())
            .target_rows_per_partition(cfg.rows_per_partition)
            .layout(layout);
        for i in 0..rows as i64 {
            // "Partial" layout: mostly increasing ts with local jitter, the
            // common ingestion pattern (roughly time-ordered arrival).
            let ts = match name {
                "events_partial" => i * 10 + rng.random_range(-2000i64..2000),
                _ => i * 10,
            };
            b.push_row(vec![
                Value::Int(ts),
                Value::Int(rng.random_range(0..100_000)),
                Value::Str(categories[rng.random_range(0..categories.len())].into()),
                Value::Int(rng.random_range(0..1_000_000)),
                Value::Str(format!("name-{:06}", rng.random_range(0..100_000))),
            ]);
        }
        catalog.register(b.build());
    }
    let mut dim = TableBuilder::new("dim_users", dim_schema()).target_rows_per_partition(1000);
    for i in 0..2000i64 {
        dim.push_row(vec![
            // Contiguous ids at the bottom of the fact key space: selective
            // dimension filters produce key sets whose range excludes most
            // key-clustered fact partitions.
            Value::Int(i),
            Value::Str(format!("label-{i}")),
            Value::Int(rng.random_range(0..100)),
        ]);
    }
    catalog.register(dim.build());
}

/// Generate the workload.
pub fn generate(cfg: &WorkloadConfig, seed: u64) -> ProductionWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();
    build_tables(&catalog, cfg, &mut rng);
    let max_ts = (cfg.rows_per_partition * cfg.fact_partitions) as i64 * 10;

    // Figure 12: plan shapes are drawn from a heavy-tailed template pool so
    // ~85% of shapes appear exactly once in a 3-day-sized sample.
    let mut queries = Vec::with_capacity(cfg.queries);
    for _ in 0..cfg.queries {
        let kind = sample_kind(&mut rng);
        let q = match kind {
            QueryKind::FilteredSelect => gen_filtered_select(&mut rng, max_ts),
            QueryKind::FullScan => gen_full_scan(&mut rng),
            QueryKind::LimitNoPredicate => gen_limit(&mut rng, max_ts, false),
            QueryKind::LimitWithPredicate => gen_limit(&mut rng, max_ts, true),
            QueryKind::TopK => gen_topk(&mut rng, max_ts),
            QueryKind::TopKGroupByKey => gen_topk_group_key(&mut rng),
            QueryKind::TopKGroupByAgg => gen_topk_group_agg(&mut rng),
            QueryKind::Join => gen_join(&mut rng, max_ts),
        };
        let sql = to_sql(&q.plan);
        queries.push(GeneratedQuery { sql, ..q });
    }
    ProductionWorkload { catalog, queries }
}

/// Query-type mix calibrated to Table 1 (LIMIT 2.60% split 0.37/2.23;
/// top-k 5.55% split 4.47/0.12/0.96) with the remainder split between
/// filtered selects, full scans, and joins.
fn sample_kind(rng: &mut StdRng) -> QueryKind {
    let r: f64 = rng.random::<f64>() * 100.0;
    if r < 0.37 {
        QueryKind::LimitNoPredicate
    } else if r < 2.60 {
        QueryKind::LimitWithPredicate
    } else if r < 2.60 + 4.47 {
        QueryKind::TopK
    } else if r < 2.60 + 4.59 {
        QueryKind::TopKGroupByKey
    } else if r < 2.60 + 5.55 {
        QueryKind::TopKGroupByAgg
    } else if r < 2.60 + 5.55 + 12.0 {
        QueryKind::Join
    } else if r < 2.60 + 5.55 + 12.0 + 14.0 {
        QueryKind::FullScan
    } else {
        QueryKind::FilteredSelect
    }
}

fn fact_table(rng: &mut StdRng) -> (&'static str, bool) {
    // (name, is_clustered_on_ts): the mix shapes Figure 4's CDF.
    match rng.random_range(0..10) {
        0..=5 => ("events_clustered", true),
        6..=7 => ("events_partial", true),
        _ => ("events_shuffled", false),
    }
}

/// A predicate whose selectivity follows the paper's "real-world queries
/// are much more selective than benchmarks assume" profile: many narrow
/// time-range scans, some moderate, some non-selective, plus predicates on
/// unclustered columns (prunable in principle, not in practice).
fn gen_predicate(rng: &mut StdRng, max_ts: i64) -> Expr {
    let r: f64 = rng.random();
    if r < 0.55 {
        // Narrow ts range: 0.1% - 2% of the key space.
        let width = (max_ts as f64 * rng.random_range(0.001..0.02)) as i64;
        let start = rng.random_range(0..(max_ts - width).max(1));
        col("ts").between(lit(start), lit(start + width))
    } else if r < 0.70 {
        // Moderate range: 5% - 30%.
        let width = (max_ts as f64 * rng.random_range(0.05..0.30)) as i64;
        let start = rng.random_range(0..(max_ts - width).max(1));
        col("ts").between(lit(start), lit(start + width))
    } else if r < 0.80 {
        // Point-ish lookup on ts plus a category filter.
        let start = rng.random_range(0..max_ts);
        col("ts")
            .ge(lit(start))
            .and(col("ts").lt(lit(start + 500)))
            .and(col("category").eq(lit("iot")))
    } else if r < 0.93 {
        // Unclustered column: pruning-eligible but ineffective.
        col("metric").lt(lit(rng.random_range(1000i64..900_000)))
    } else {
        // Non-selective: covers nearly everything.
        col("ts").ge(lit(0i64))
    }
}

fn gen_filtered_select(rng: &mut StdRng, max_ts: i64) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let plan = PlanBuilder::scan(table, events_schema())
        .filter(gen_predicate(rng, max_ts))
        .build();
    GeneratedQuery {
        plan,
        sql: String::new(),
        kind: QueryKind::FilteredSelect,
    }
}

fn gen_full_scan(rng: &mut StdRng) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let plan = PlanBuilder::scan(table, events_schema())
        .project(vec!["ts", "metric"])
        .build();
    GeneratedQuery {
        plan,
        sql: String::new(),
        kind: QueryKind::FullScan,
    }
}

fn gen_limit(rng: &mut StdRng, max_ts: i64, with_predicate: bool) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let mut b = PlanBuilder::scan(table, events_schema());
    if with_predicate {
        b = b.filter(gen_predicate(rng, max_ts));
    }
    let k = sample_k(rng, true);
    GeneratedQuery {
        plan: b.limit(k).build(),
        sql: String::new(),
        kind: if with_predicate {
            QueryKind::LimitWithPredicate
        } else {
            QueryKind::LimitNoPredicate
        },
    }
}

fn gen_topk(rng: &mut StdRng, max_ts: i64) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let mut b = PlanBuilder::scan(table, events_schema());
    if rng.random::<f64>() < 0.7 {
        b = b.filter(gen_predicate(rng, max_ts));
    }
    let order_col = if rng.random::<f64>() < 0.75 {
        "ts"
    } else {
        "metric"
    };
    let k = sample_k(rng, false).min(1000);
    GeneratedQuery {
        plan: b
            .order_by(order_col, rng.random::<f64>() < 0.8)
            .limit(k)
            .build(),
        sql: String::new(),
        kind: QueryKind::TopK,
    }
}

fn gen_topk_group_key(rng: &mut StdRng) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let plan = PlanBuilder::scan(table, events_schema())
        .aggregate(vec!["ts"], vec![AggFunc::CountStar])
        .order_by("ts", true)
        .limit(sample_k(rng, false).min(100))
        .build();
    GeneratedQuery {
        plan,
        sql: String::new(),
        kind: QueryKind::TopKGroupByKey,
    }
}

fn gen_topk_group_agg(rng: &mut StdRng) -> GeneratedQuery {
    let (table, _) = fact_table(rng);
    let plan = PlanBuilder::scan(table, events_schema())
        .aggregate(vec!["category"], vec![AggFunc::Sum("metric".into())])
        .order_by("sum_metric", true)
        .limit(sample_k(rng, false).min(100))
        .build();
    GeneratedQuery {
        plan,
        sql: String::new(),
        kind: QueryKind::TopKGroupByAgg,
    }
}

fn gen_join(rng: &mut StdRng, max_ts: i64) -> GeneratedQuery {
    // Probe side: mostly the key-clustered fact (join pruning effective),
    // sometimes a time-clustered one (join pruning eligible but weak).
    let fact = if rng.random::<f64>() < 0.65 {
        "events_bykey"
    } else {
        fact_table(rng).0
    };
    // Build-side selectivity mix: ~10% of builds are empty (Figure 10's
    // 13%-at-100% population), the rest select a small dimension slice.
    let r: f64 = rng.random();
    let weight_cut = if r < 0.10 {
        -1 // empty build side
    } else if r < 0.75 {
        rng.random_range(1i64..8)
    } else {
        rng.random_range(8i64..40)
    };
    let mut dim =
        PlanBuilder::scan("dim_users", dim_schema()).filter(col("weight").lt(lit(weight_cut)));
    // Often narrow the build side to a random id window, varying how much
    // of the probe key space the summary covers (drives the Figure 10
    // spread rather than a single ratio).
    if rng.random::<f64>() < 0.6 {
        let lo = rng.random_range(0i64..1800);
        let hi = lo + rng.random_range(20i64..800);
        dim = dim.filter(col("id").between(lit(lo), lit(hi)));
    }
    let mut probe = PlanBuilder::scan(fact, events_schema());
    if rng.random::<f64>() < 0.4 {
        probe = probe.filter(gen_predicate(rng, max_ts));
    }
    let plan = dim.join(probe, "id", "user_id", JoinType::Inner).build();
    GeneratedQuery {
        plan,
        sql: String::new(),
        kind: QueryKind::Join,
    }
}

/// A burst of `cfg.queries` concurrent tenant queries hitting one virtual
/// warehouse at once — the scenario the shared morsel pool exists for.
/// Unlike [`generate`], which models a long query *stream*, this draws a
/// small batch with a fixed round-robin over the concurrency-relevant
/// shapes (scans, joins, top-k, filtered selects, LIMITs) so every burst
/// exercises cross-query interleaving of all pruning hooks regardless of
/// batch size.
pub fn tenant_burst(cfg: &WorkloadConfig, seed: u64) -> ProductionWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();
    build_tables(&catalog, cfg, &mut rng);
    let max_ts = (cfg.rows_per_partition * cfg.fact_partitions) as i64 * 10;
    let mut queries = Vec::with_capacity(cfg.queries);
    for i in 0..cfg.queries {
        let q = match i % 5 {
            0 => gen_filtered_select(&mut rng, max_ts),
            1 => gen_join(&mut rng, max_ts),
            2 => gen_topk(&mut rng, max_ts),
            3 => gen_full_scan(&mut rng),
            _ => gen_limit(&mut rng, max_ts, true),
        };
        let sql = to_sql(&q.plan);
        queries.push(GeneratedQuery { sql, ..q });
    }
    ProductionWorkload { catalog, queries }
}

/// I/O-bound burst for the prefetch experiment: wide filtered range scans
/// over the clustered fact table, no LIMIT/top-k shapes. The partition set
/// is fixed at scan-compile time, so sweeping the prefetch depth changes
/// *only* the overlap accounting — never which partitions load — which is
/// exactly what makes the depth-1 vs depth-n wall-clock comparison fair.
pub fn io_bound_burst(cfg: &WorkloadConfig, seed: u64) -> ProductionWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();
    build_tables(&catalog, cfg, &mut rng);
    let max_ts = (cfg.rows_per_partition * cfg.fact_partitions) as i64 * 10;
    let queries = (0..cfg.queries)
        .map(|_| {
            // Wide windows (~40-80% of the key space): plenty of partitions
            // survive pruning, so the scan is dominated by partition GETs.
            let width = max_ts * 2 / 5 + rng.random_range(0..max_ts * 2 / 5);
            let lo = rng.random_range(0..(max_ts - width).max(1));
            let plan = PlanBuilder::scan("events_clustered", events_schema())
                .filter(col("ts").between(lit(lo), lit(lo + width)))
                .build();
            let sql = to_sql(&plan);
            GeneratedQuery {
                plan,
                sql,
                kind: QueryKind::FilteredSelect,
            }
        })
        .collect();
    ProductionWorkload { catalog, queries }
}

/// Top-k burst engineered so the pruning boundary tightens *mid-scan*: an
/// ascending top-k over the `ts`-clustered fact, whose first partition
/// alone fills the heap. Every later partition becomes prunable only once
/// that first partition has been evaluated — so a prefetching scan always
/// has loads in flight at the moment the boundary snaps shut, and those
/// loads are cancelled before their I/O is charged (run with upfront
/// boundary seeding disabled, or the scan never submits them at all).
pub fn topk_tighten_burst(cfg: &WorkloadConfig, seed: u64) -> ProductionWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();
    build_tables(&catalog, cfg, &mut rng);
    let queries = (0..cfg.queries)
        .map(|_| {
            let k = rng.random_range(1u64..(cfg.rows_per_partition as u64 / 2).max(2));
            let plan = PlanBuilder::scan("events_clustered", events_schema())
                .order_by("ts", false)
                .limit(k)
                .build();
            let sql = to_sql(&plan);
            GeneratedQuery {
                plan,
                sql,
                kind: QueryKind::TopK,
            }
        })
        .collect();
    ProductionWorkload { catalog, queries }
}

/// Parameters for the production-*scale* multi-tenant burst: a lake with
/// orders of magnitude more micro-partitions than the calibrated stream
/// workload, and arrivals attributed to tenants under a skewed (Zipf)
/// popularity distribution — a few tenants dominate the burst, a long
/// tail contributes single queries, mirroring fleet telemetry.
#[derive(Clone, Debug)]
pub struct ProductionScaleConfig {
    /// Distinct tenant sessions contributing arrivals.
    pub tenants: usize,
    /// Total arrivals in the burst.
    pub queries: usize,
    /// Micro-partitions in the scale fact table (default 100k).
    pub fact_partitions: usize,
    /// Rows per micro-partition (small: the scale axis is partitions, and
    /// scans over the lake stay I/O-bound under the default cost model).
    pub rows_per_partition: usize,
    /// Zipf exponent for tenant arrival skew (higher = more skewed).
    pub zipf_s: f64,
}

impl Default for ProductionScaleConfig {
    fn default() -> Self {
        ProductionScaleConfig {
            tenants: 512,
            queries: 2048,
            fact_partitions: 100_000,
            rows_per_partition: 8,
            zipf_s: 1.1,
        }
    }
}

/// A production-scale burst: the lake plus `(tenant, query)` arrivals in
/// arrival order, ready for `Session::run_admitted`.
pub struct ProductionScaleWorkload {
    /// The catalog holding the scale lake.
    pub catalog: Catalog,
    /// Arrivals in order: tenant id plus the generated query.
    pub arrivals: Vec<(u64, GeneratedQuery)>,
}

fn scale_schema() -> Schema {
    Schema::new(vec![
        Field::new("ts", ScalarType::Int),
        Field::new("tenant_key", ScalarType::Int),
        Field::new("metric", ScalarType::Int),
    ])
}

/// Generate the production-scale multi-tenant burst.
///
/// Every query shape here has a partition set decided at compile time (ts
/// ranges over a strictly-clustered fact) or derived from a deterministic
/// build side (dimension joins) — no top-k boundaries or LIMIT stop
/// signals — so per-query counters are bit-identical under any pool
/// interleaving and the burst is safe to fingerprint in the stress suite.
pub fn production_scale(cfg: &ProductionScaleConfig, seed: u64) -> ProductionScaleWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Catalog::new();

    // The scale lake: all-integer columns, strictly increasing ts, no rng
    // in the row loop — building 100k+ partitions has to be cheap.
    let rows = (cfg.rows_per_partition * cfg.fact_partitions) as i64;
    let mut fact = TableBuilder::new("scale_events", scale_schema())
        .target_rows_per_partition(cfg.rows_per_partition)
        .layout(Layout::ClusterBy(vec!["ts".into()]));
    for i in 0..rows {
        fact.push_row(vec![
            Value::Int(i * 10),
            Value::Int(i % 4096),
            Value::Int((i * 7919) % 1_000_000),
        ]);
    }
    catalog.register(fact.build());
    let mut dim = TableBuilder::new("scale_dim", dim_schema()).target_rows_per_partition(64);
    for i in 0..256i64 {
        dim.push_row(vec![
            Value::Int(i),
            Value::Str(format!("tenant-{i}")),
            Value::Int(i % 100),
        ]);
    }
    catalog.register(dim.build());

    // Zipf CDF over tenant ranks: tenant r arrives with weight 1/(r+1)^s.
    let weights: Vec<f64> = (0..cfg.tenants.max(1))
        .map(|r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }

    let max_ts = rows * 10;
    let arrivals = (0..cfg.queries)
        .map(|_| {
            let u: f64 = rng.random();
            let tenant = cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64;
            let r: f64 = rng.random();
            let plan = if r < 0.70 {
                // Narrow dashboard slice: 0.05% - 1% of the key space.
                let width = ((max_ts as f64) * rng.random_range(0.0005..0.01)) as i64;
                let lo = rng.random_range(0..(max_ts - width).max(1));
                PlanBuilder::scan("scale_events", scale_schema())
                    .filter(col("ts").between(lit(lo), lit(lo + width)))
                    .build()
            } else if r < 0.90 {
                // Moderate report window: 2% - 8%.
                let width = ((max_ts as f64) * rng.random_range(0.02..0.08)) as i64;
                let lo = rng.random_range(0..(max_ts - width).max(1));
                PlanBuilder::scan("scale_events", scale_schema())
                    .filter(col("ts").between(lit(lo), lit(lo + width)))
                    .project(vec!["ts", "metric"])
                    .build()
            } else {
                // Dimension join: the build side is a deterministic dim
                // slice, so the probe's partition set is too.
                let lo = rng.random_range(0i64..200);
                let hi = lo + rng.random_range(8i64..56);
                PlanBuilder::scan("scale_dim", dim_schema())
                    .filter(col("id").between(lit(lo), lit(hi)))
                    .join(
                        PlanBuilder::scan("scale_events", scale_schema()),
                        "id",
                        "tenant_key",
                        JoinType::Inner,
                    )
                    .build()
            };
            let sql = to_sql(&plan);
            let kind = if r < 0.90 {
                QueryKind::FilteredSelect
            } else {
                QueryKind::Join
            };
            (tenant, GeneratedQuery { plan, sql, kind })
        })
        .collect();
    ProductionScaleWorkload { catalog, arrivals }
}

/// Figure 12: repetitiveness model. Draws `n` top-k queries where shapes
/// follow a heavy-tailed popularity distribution calibrated so that ~85%
/// of observed shapes occur exactly once over a 3-day-sized window.
pub fn repetition_shape_ids(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut next_fresh: u64 = 1_000_000;
    let mut seen: Vec<u64> = Vec::new();
    for _ in 0..n {
        // 88% of arrivals are brand-new shapes (ad-hoc analysis); the rest
        // re-draw from recently seen shapes with Zipf-ish preference.
        if seen.is_empty() || rng.random::<f64>() < 0.88 {
            next_fresh += 1;
            seen.push(next_fresh);
            out.push(next_fresh);
        } else {
            // Prefer recent/popular shapes.
            let idx = (rng.random::<f64>().powi(3) * seen.len() as f64) as usize;
            let id = seen[seen.len() - 1 - idx.min(seen.len() - 1)];
            out.push(id);
        }
    }
    out
}

/// Histogram of occurrence counts (Figure 12's x-axis: 1, 2, .., >=6).
pub fn occurrence_histogram(ids: &[u64]) -> Vec<(String, f64)> {
    use std::collections::HashMap;
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for id in ids {
        *counts.entry(*id).or_insert(0) += 1;
    }
    let total = counts.len() as f64;
    let mut buckets = [0u64; 6];
    for (_, c) in counts {
        let b = (c.min(6) - 1) as usize;
        buckets[b] += 1;
    }
    buckets
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let label = if i == 5 {
                ">=6".to_owned()
            } else {
                format!("{}", i + 1)
            };
            (label, c as f64 / total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_plans() {
        let wl = generate(
            &WorkloadConfig {
                queries: 120,
                rows_per_partition: 100,
                fact_partitions: 10,
            },
            7,
        );
        assert_eq!(wl.queries.len(), 120);
        for q in &wl.queries {
            q.plan.check().unwrap();
            assert!(!q.sql.is_empty());
        }
        assert_eq!(wl.catalog.table_names().len(), 5);
    }

    #[test]
    fn mix_is_roughly_calibrated() {
        let wl = generate(
            &WorkloadConfig {
                queries: 4000,
                rows_per_partition: 50,
                fact_partitions: 4,
            },
            13,
        );
        let frac = |k: QueryKind| {
            wl.queries.iter().filter(|q| q.kind == k).count() as f64 / wl.queries.len() as f64
        };
        let limit_total = frac(QueryKind::LimitNoPredicate) + frac(QueryKind::LimitWithPredicate);
        assert!(
            (limit_total - 0.026).abs() < 0.01,
            "LIMIT share {limit_total}"
        );
        let topk_total = frac(QueryKind::TopK)
            + frac(QueryKind::TopKGroupByKey)
            + frac(QueryKind::TopKGroupByAgg);
        assert!(
            (topk_total - 0.0555).abs() < 0.015,
            "topk share {topk_total}"
        );
    }

    #[test]
    fn tenant_burst_covers_concurrency_shapes() {
        let wl = tenant_burst(
            &WorkloadConfig {
                queries: 16,
                rows_per_partition: 60,
                fact_partitions: 6,
            },
            21,
        );
        assert_eq!(wl.queries.len(), 16);
        for q in &wl.queries {
            q.plan.check().unwrap();
        }
        for kind in [
            QueryKind::FilteredSelect,
            QueryKind::Join,
            QueryKind::TopK,
            QueryKind::FullScan,
            QueryKind::LimitWithPredicate,
        ] {
            assert!(
                wl.queries.iter().any(|q| q.kind == kind),
                "burst missing {kind:?}"
            );
        }
    }

    #[test]
    fn prefetch_bursts_have_expected_shapes() {
        let cfg = WorkloadConfig {
            queries: 8,
            rows_per_partition: 40,
            fact_partitions: 6,
        };
        let io = io_bound_burst(&cfg, 9);
        assert_eq!(io.queries.len(), 8);
        for q in &io.queries {
            q.plan.check().unwrap();
            assert_eq!(q.kind, QueryKind::FilteredSelect);
        }
        let topk = topk_tighten_burst(&cfg, 9);
        for q in &topk.queries {
            q.plan.check().unwrap();
            assert_eq!(q.kind, QueryKind::TopK);
        }
    }

    #[test]
    fn production_scale_burst_is_skewed_and_valid() {
        let cfg = ProductionScaleConfig {
            tenants: 32,
            queries: 400,
            fact_partitions: 200,
            rows_per_partition: 8,
            zipf_s: 1.1,
        };
        let wl = production_scale(&cfg, 11);
        assert_eq!(wl.arrivals.len(), 400);
        let mut per_tenant = vec![0usize; cfg.tenants];
        for (tenant, q) in &wl.arrivals {
            q.plan.check().unwrap();
            per_tenant[*tenant as usize] += 1;
        }
        // Zipf skew: the most popular tenant dominates the median tenant.
        let max = *per_tenant.iter().max().unwrap();
        let busy = per_tenant.iter().filter(|&&c| c > 0).count();
        assert!(busy >= cfg.tenants / 2, "long tail exists ({busy} active)");
        assert!(
            max >= 400 / cfg.tenants * 4,
            "head tenant ({max} arrivals) must dominate a uniform share"
        );
        // The scale axis is partitions: the fact table really has them.
        let parts = wl
            .catalog
            .get("scale_events")
            .unwrap()
            .read()
            .partition_count();
        assert_eq!(parts, cfg.fact_partitions);
    }

    #[test]
    fn repetition_is_mostly_singletons() {
        let ids = repetition_shape_ids(3000, 3);
        let hist = occurrence_histogram(&ids);
        let singles = hist[0].1;
        assert!(
            (0.80..0.92).contains(&singles),
            "singleton share {singles} (paper: 85%)"
        );
    }
}
