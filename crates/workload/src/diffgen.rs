//! The seeded random workload generator behind the differential
//! pruning-oracle suite (`tests/differential.rs`) — extracted here so the
//! static-analyzer property suite (`crates/analyze/tests/prop_analyze.rs`)
//! exercises the *identical* plan corpus: every plan the differential
//! harness executes must analyze clean, and the harness in turn
//! executes every plan this module can produce.
//!
//! Determinism contract: all randomness flows through the caller's
//! seeded [`StdRng`], and the call sequence is part of the public
//! behaviour — reordering draws would silently change every downstream
//! differential fingerprint.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snowprune_expr::dsl::{col, lit};
use snowprune_expr::Expr;
use snowprune_plan::{AggFunc, JoinType, Plan, PlanBuilder, SortKey};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

/// One generated workload: a `fact`/`dim` catalog with randomized schema
/// order, layout, and partitioning.
pub struct Workload {
    /// The generated `fact` and `dim` tables.
    pub catalog: Catalog,
    /// Schema of the fact table (column order is randomized per seed).
    pub fact_schema: Schema,
    /// Schema of the dim table.
    pub dim_schema: Schema,
    /// Number of rows in the fact table (LIMIT determinism bookkeeping).
    pub fact_rows: usize,
}

/// How a query's result must be compared against the oracle.
pub enum Check {
    /// Multiset equality (canonical row order).
    Sorted,
    /// Exact ordered equality (deterministic ORDER BY on the unique key).
    Ordered,
    /// LIMIT-without-ORDER-BY: `min(k, |matching|)` rows, all contained in
    /// the oracle result of `unlimited`.
    Limited {
        /// The LIMIT count.
        k: usize,
        /// The same plan without the LIMIT (the containment oracle).
        unlimited: Plan,
    },
}

/// Build the seeded random `fact`/`dim` workload: shuffled column order,
/// an optional pad column, random partition count/size/layout, `a` unique
/// (the deterministic ORDER BY key), `b` nullable, `c` categorical.
pub fn build_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random schema: core columns in shuffled order plus an optional pad
    // column, so column indices differ across workloads.
    let mut fields = vec![
        Field::new("a", ScalarType::Int),
        Field::new("b", ScalarType::Int),
        Field::new("c", ScalarType::Str),
    ];
    if rng.random::<f64>() < 0.5 {
        fields.push(Field::new("d", ScalarType::Int));
    }
    for i in (1..fields.len()).rev() {
        let j = rng.random_range(0..(i + 1));
        fields.swap(i, j);
    }
    let fact_schema = Schema::new(fields);

    let partitions = rng.random_range(8usize..24);
    let rows_per_part = rng.random_range(16usize..40);
    let fact_rows = partitions * rows_per_part;
    let layout = match rng.random_range(0u32..3) {
        0 => Layout::ClusterBy(vec!["a".into()]),
        1 => Layout::Natural,
        _ => Layout::Shuffle(rng.random_range(1u64..64)),
    };
    let cats = ["red", "green", "blue", "teal"];
    let mut fact = TableBuilder::new("fact", fact_schema.clone())
        .target_rows_per_partition(rows_per_part)
        .layout(layout);
    for i in 0..fact_rows as i64 {
        let mut row = Vec::with_capacity(fact_schema.len());
        for f in fact_schema.fields() {
            row.push(match f.name.as_str() {
                // `a` is unique: the deterministic ORDER BY key.
                "a" => Value::Int(i),
                "b" => {
                    if rng.random::<f64>() < 0.08 {
                        Value::Null
                    } else {
                        Value::Int(rng.random_range(-500i64..500))
                    }
                }
                "c" => Value::Str(cats[rng.random_range(0usize..cats.len())].into()),
                _ => Value::Int(rng.random_range(0i64..1000)),
            });
        }
        fact.push_row(row);
    }

    let dim_schema = Schema::new(vec![
        Field::new("id", ScalarType::Int),
        Field::new("weight", ScalarType::Int),
    ]);
    let mut dim = TableBuilder::new("dim", dim_schema.clone()).target_rows_per_partition(32);
    for id in 0..rng.random_range(40i64..120) {
        dim.push_row(vec![Value::Int(id), Value::Int(rng.random_range(0i64..50))]);
    }

    let catalog = Catalog::new();
    catalog.register(fact.build());
    catalog.register(dim.build());
    Workload {
        catalog,
        fact_schema,
        dim_schema,
        fact_rows,
    }
}

/// One of five random single/two-column fact predicates (range on `a`,
/// threshold on nullable `b`, category equality on `c`, a conjunction,
/// and an open range).
pub fn random_predicate(rng: &mut StdRng, fact_rows: usize) -> Expr {
    let hi = fact_rows as i64;
    match rng.random_range(0u32..5) {
        0 => {
            let lo = rng.random_range(0..hi);
            let width = rng.random_range(1..hi / 2 + 2);
            col("a").between(lit(lo), lit((lo + width).min(hi)))
        }
        1 => col("b").ge(lit(rng.random_range(-400i64..400))),
        2 => col("c").eq(lit(
            ["red", "green", "blue", "teal"][rng.random_range(0usize..4)]
        )),
        3 => {
            let lo = rng.random_range(0..hi);
            col("a")
                .ge(lit(lo))
                .and(col("b").lt(lit(rng.random_range(-100i64..450))))
        }
        _ => col("a").lt(lit(rng.random_range(1..hi))),
    }
}

/// The six-arm random query mix of the core differential legs: filtered
/// select, projected scan, top-k on the unique key, top-k above GROUP BY
/// (Figure 7d), dim⋈fact join, and LIMIT-with-predicate.
pub fn random_queries(rng: &mut StdRng, wl: &Workload) -> Vec<(Plan, Check)> {
    let fs = &wl.fact_schema;
    let mut out = Vec::new();
    // 1. Filtered select.
    out.push((
        PlanBuilder::scan("fact", fs.clone())
            .filter(random_predicate(rng, wl.fact_rows))
            .build(),
        Check::Sorted,
    ));
    // 2. Projected (optionally filtered) scan.
    {
        let mut b = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.5 {
            b = b.filter(random_predicate(rng, wl.fact_rows));
        }
        out.push((b.project(vec!["a", "c"]).build(), Check::Sorted));
    }
    // 3. Top-k on the unique key (exact ordered check).
    {
        let mut b = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.6 {
            b = b.filter(random_predicate(rng, wl.fact_rows));
        }
        let k = rng.random_range(1u64..30);
        let desc = rng.random::<bool>();
        out.push((b.order_by("a", desc).limit(k).build(), Check::Ordered));
    }
    // 4. Top-k above GROUP BY on the grouping key (Figure 7d shape).
    {
        let k = rng.random_range(1u64..20);
        out.push((
            PlanBuilder::scan("fact", fs.clone())
                .aggregate(vec!["a"], vec![AggFunc::CountStar])
                .order_by("a", rng.random::<bool>())
                .limit(k)
                .build(),
            Check::Ordered,
        ));
    }
    // 5. Join: filtered dim build side, fact probe side on `b`.
    {
        let dim = PlanBuilder::scan("dim", wl.dim_schema.clone())
            .filter(col("weight").lt(lit(rng.random_range(1i64..40))));
        let mut probe = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.4 {
            probe = probe.filter(random_predicate(rng, wl.fact_rows));
        }
        out.push((
            dim.join(probe, "id", "b", JoinType::Inner).build(),
            Check::Sorted,
        ));
    }
    // 6. LIMIT with predicate, no ORDER BY.
    {
        let pred = random_predicate(rng, wl.fact_rows);
        let k = rng.random_range(1u64..60);
        let unlimited = PlanBuilder::scan("fact", fs.clone())
            .filter(pred.clone())
            .build();
        out.push((
            PlanBuilder::scan("fact", fs.clone())
                .filter(pred)
                .limit(k)
                .build(),
            Check::Limited {
                k: k as usize,
                unlimited,
            },
        ));
    }
    out
}

/// The §8.2 cacheable-shape mix of the predicate-cache differential leg:
/// filtered chains (bare and projected), an optionally-filtered top-k,
/// and an unfiltered top-k.
pub fn cacheable_queries(rng: &mut StdRng, wl: &Workload) -> Vec<(Plan, Check)> {
    let fs = &wl.fact_schema;
    let mut out = Vec::new();
    out.push((
        PlanBuilder::scan("fact", fs.clone())
            .filter(random_predicate(rng, wl.fact_rows))
            .build(),
        Check::Sorted,
    ));
    out.push((
        PlanBuilder::scan("fact", fs.clone())
            .filter(random_predicate(rng, wl.fact_rows))
            .project(vec!["a", "c"])
            .build(),
        Check::Sorted,
    ));
    {
        let mut b = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.6 {
            b = b.filter(random_predicate(rng, wl.fact_rows));
        }
        let k = rng.random_range(1u64..30);
        out.push((
            b.order_by("a", rng.random::<bool>()).limit(k).build(),
            Check::Ordered,
        ));
    }
    out.push((
        PlanBuilder::scan("fact", fs.clone())
            .order_by("a", rng.random::<bool>())
            .limit(rng.random_range(1u64..20))
            .build(),
        Check::Ordered,
    ));
    out
}

/// The join/aggregation mix of the batch-native differential leg: inner
/// and outer-preserve-build joins, top-k over a join (Figure 7b), a
/// filtered GROUP BY chain with every aggregate function, and GROUP BY
/// over a join.
pub fn joinagg_queries(rng: &mut StdRng, wl: &Workload) -> Vec<(Plan, Check)> {
    let fs = &wl.fact_schema;
    let ds = &wl.dim_schema;
    let mut out = Vec::new();
    // 1. Inner join: filtered dim build side, optionally filtered fact
    //    probe side (batch-native build and probe).
    {
        let dim = PlanBuilder::scan("dim", ds.clone())
            .filter(col("weight").lt(lit(rng.random_range(1i64..40))));
        let mut probe = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.5 {
            probe = probe.filter(random_predicate(rng, wl.fact_rows));
        }
        out.push((
            dim.join(probe, "id", "b", JoinType::Inner).build(),
            Check::Sorted,
        ));
    }
    // 2. Outer preserve-build join: NULL-padded build rows ride along and
    //    NULL join keys must never match (Kleene semantics).
    {
        let dim = PlanBuilder::scan("dim", ds.clone());
        let probe =
            PlanBuilder::scan("fact", fs.clone()).filter(random_predicate(rng, wl.fact_rows));
        out.push((
            dim.join(probe, "id", "b", JoinType::OuterPreserveBuild)
                .build(),
            Check::Sorted,
        ));
    }
    // 3. Top-k over a join on the probe-side unique key (Figure 7b):
    //    boundary logs above the join, per-row provenance through it.
    {
        let dim = PlanBuilder::scan("dim", ds.clone());
        let mut probe = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.5 {
            probe = probe.filter(random_predicate(rng, wl.fact_rows));
        }
        let k = rng.random_range(1u64..25);
        out.push((
            dim.join(probe, "id", "b", JoinType::Inner)
                .order_by("a", rng.random::<bool>())
                .limit(k)
                .build(),
            Check::Ordered,
        ));
    }
    // 4. Filtered GROUP BY straight over the fact chain: the columnar
    //    fold path, with NULLs in `b` exercising the skip semantics.
    {
        let mut b = PlanBuilder::scan("fact", fs.clone());
        if rng.random::<f64>() < 0.7 {
            b = b.filter(random_predicate(rng, wl.fact_rows));
        }
        out.push((
            b.aggregate(
                vec!["c"],
                vec![
                    AggFunc::CountStar,
                    AggFunc::Count("b".into()),
                    AggFunc::Sum("b".into()),
                    AggFunc::Min("a".into()),
                    AggFunc::Max("b".into()),
                    AggFunc::Avg("b".into()),
                ],
            )
            .build(),
            Check::Ordered,
        ));
    }
    // 5. GROUP BY over a join: the aggregation consumes joined rows (not
    //    a chain), so it exercises the fallback boundary above a
    //    batch-native join.
    {
        let dim = PlanBuilder::scan("dim", ds.clone());
        let probe = PlanBuilder::scan("fact", fs.clone());
        out.push((
            dim.join(probe, "id", "b", JoinType::Inner)
                .aggregate(
                    vec!["c"],
                    vec![AggFunc::CountStar, AggFunc::Sum("weight".into())],
                )
                .build(),
            Check::Ordered,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// SQL emission for the round-trip differential leg
// ---------------------------------------------------------------------------

/// Reserved words of the SQL front-end grammar: a column or table whose
/// name collides with one of these cannot be emitted as a bare
/// identifier. Kept in sync with the parser's reserved-word list.
const SQL_RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "OFFSET", "JOIN", "LEFT", "INNER",
    "ON", "AND", "OR", "NOT", "IS", "NULL", "TRUE", "FALSE", "LIKE", "IN", "BETWEEN", "AS", "ASC",
    "DESC", "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
];

/// True when `name` lexes as a single bare identifier the SQL grammar
/// accepts (and is not a reserved word), so it can be emitted unquoted.
fn sql_ident(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !SQL_RESERVED.iter().any(|k| name.eq_ignore_ascii_case(k))
}

/// True when a literal's `Display` text parses back to the same value:
/// floats can print like integers (`400.0` → `400`) and dates have no
/// literal syntax, so only NULL/boolean/integer/string round-trip.
fn literal_round_trips(v: &Value) -> bool {
    matches!(
        v,
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::Str(_)
    )
}

/// True when `e`'s `Display` text parses back to a structurally equal
/// expression through the SQL front-end grammar.
fn expr_round_trips(e: &Expr) -> bool {
    match e {
        Expr::Literal(v) => literal_round_trips(v),
        Expr::Column(c) => sql_ident(&c.name),
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => expr_round_trips(a) && expr_round_trips(b),
        Expr::And(xs) | Expr::Or(xs) | Expr::Coalesce(xs) => xs.iter().all(expr_round_trips),
        Expr::Not(x) | Expr::IsNull(x) | Expr::Like(x, _) | Expr::StartsWith(x, _) => {
            expr_round_trips(x)
        }
        // The parser folds a unary minus over a numeric literal into the
        // literal itself, so `Neg(Literal)` would come back reshaped.
        Expr::Neg(x) | Expr::Abs(x) => !matches!(**x, Expr::Literal(_)) && expr_round_trips(x),
        Expr::If(c, t, f) => [c, t, f].iter().all(|x| expr_round_trips(x)),
        Expr::InList(x, vs) => expr_round_trips(x) && vs.iter().all(literal_round_trips),
    }
}

/// Emit the SQL text of `plan` for the round-trip differential leg:
/// parsing the returned statement and lowering it through the binder
/// must produce a plan structurally equal to `plan`.
///
/// Returns `None` for shapes the grammar cannot express faithfully —
/// residual filters above a join, probe-scan predicates under an
/// outer-preserve-build join (WHERE applies after null-extension, so
/// the binder keeps probe-side conjuncts above the join), computed sort
/// keys, float or date literals, nested joins, or joins whose two
/// schemas share a column name (every emitted column reference is
/// unqualified, so a shared name would be ambiguous).
pub fn emit_sql(plan: &Plan) -> Option<String> {
    // Strict spine walk: Limit? Sort? (Aggregate | Project)? (Join | Scan).
    let mut node = plan;
    let mut limit = None;
    if let Plan::Limit { input, k, offset } = node {
        limit = Some((*k, *offset));
        node = input;
    }
    let mut order: Option<&[SortKey]> = None;
    if let Plan::Sort { input, keys } = node {
        order = Some(keys);
        node = input;
    }
    let mut group: Option<(&[String], &[AggFunc])> = None;
    let mut project: Option<&[String]> = None;
    match node {
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            group = Some((group_by, aggs));
            node = input;
        }
        Plan::Project { input, columns } => {
            project = Some(columns);
            node = input;
        }
        _ => {}
    }

    // The relation: one scan, or a join of exactly two scans.
    fn scan(p: &Plan) -> Option<(&str, &Schema, Option<&Expr>)> {
        match p {
            Plan::Scan {
                table,
                schema,
                predicate,
            } => Some((table, schema, predicate.as_ref())),
            _ => None,
        }
    }

    let mut from = String::new();
    // WHERE conjuncts, one per scan predicate. Each predicate's `Display`
    // text is fully parenthesized, so it survives as a single AND-term
    // and the binder routes it back to its scan whole.
    let mut conjuncts: Vec<String> = Vec::new();
    match node {
        Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } => {
            let (bt, bs, bp) = scan(build)?;
            let (pt, ps, pp) = scan(probe)?;
            if !sql_ident(bt) || !sql_ident(pt) || bt == pt {
                return None;
            }
            // Unqualified references must resolve to exactly one side.
            if bs.fields().iter().any(|f| ps.contains(&f.name)) {
                return None;
            }
            if !sql_ident(build_key) || !sql_ident(probe_key) {
                return None;
            }
            let kw = match join_type {
                JoinType::Inner => "JOIN",
                JoinType::OuterPreserveBuild => "LEFT JOIN",
            };
            // A probe-scan predicate under LEFT JOIN has no WHERE
            // spelling: standard SQL applies WHERE after null-extension,
            // so the binder lowers a probe-side WHERE conjunct to a
            // residual filter above the join, not back onto the scan.
            if matches!(join_type, JoinType::OuterPreserveBuild) && pp.is_some() {
                return None;
            }
            from = format!("{bt} {kw} {pt} ON {build_key} = {probe_key}");
            for pred in [bp, pp].into_iter().flatten() {
                if !expr_round_trips(pred) {
                    return None;
                }
                conjuncts.push(pred.to_string());
            }
        }
        _ => {
            let (t, _, pred) = scan(node)?;
            if !sql_ident(t) {
                return None;
            }
            from.push_str(t);
            if let Some(pred) = pred {
                if !expr_round_trips(pred) {
                    return None;
                }
                conjuncts.push(pred.to_string());
            }
        }
    }

    // SELECT list: group keys + aggregate spellings, projected columns,
    // or `*`.
    let select_list = match (group, project) {
        (Some((keys, aggs)), _) => {
            if !keys.iter().all(|k| sql_ident(k)) {
                return None;
            }
            if !aggs.iter().all(|a| a.input_column().is_none_or(sql_ident)) {
                return None;
            }
            let mut items: Vec<String> = keys.to_vec();
            items.extend(aggs.iter().map(AggFunc::sql));
            items.join(", ")
        }
        (None, Some(cols)) => {
            if !cols.iter().all(|c| sql_ident(c)) {
                return None;
            }
            cols.join(", ")
        }
        (None, None) => "*".into(),
    };

    let mut sql = format!("SELECT {select_list} FROM {from}");
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    if let Some((keys, _)) = group {
        sql.push_str(" GROUP BY ");
        sql.push_str(&keys.join(", "));
    }
    if let Some(keys) = order {
        let mut parts = Vec::with_capacity(keys.len());
        for k in keys {
            // Only bare column sort keys have an ORDER BY spelling.
            let Expr::Column(c) = &k.expr else {
                return None;
            };
            if !sql_ident(&c.name) {
                return None;
            }
            parts.push(if k.desc {
                format!("{} DESC", c.name)
            } else {
                c.name.clone()
            });
        }
        sql.push_str(" ORDER BY ");
        sql.push_str(&parts.join(", "));
    }
    if let Some((k, offset)) = limit {
        sql.push_str(&format!(" LIMIT {k}"));
        if offset > 0 {
            sql.push_str(&format!(" OFFSET {offset}"));
        }
    }
    Some(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_random_query_shape_has_a_sql_spelling() {
        for w in 0..8u64 {
            let wl = build_workload(0xD1FF_0000 + w);
            let mut rng = StdRng::seed_from_u64((0xD1FF_0000 + w) ^ 0x5EED);
            for (i, (plan, _)) in random_queries(&mut rng, &wl).iter().enumerate() {
                assert!(
                    emit_sql(plan).is_some(),
                    "workload {w} query {i} has no SQL spelling:\n{plan}"
                );
            }
        }
    }

    #[test]
    fn emitted_sql_spells_the_join_and_spine_clauses() {
        let wl = build_workload(1);
        let dim =
            PlanBuilder::scan("dim", wl.dim_schema.clone()).filter(col("weight").lt(lit(10i64)));
        let plan = dim
            .join(
                PlanBuilder::scan("fact", wl.fact_schema.clone())
                    .filter(col("a").ge(lit(5i64)).and(col("b").lt(lit(3i64)))),
                "id",
                "b",
                JoinType::Inner,
            )
            .order_by("a", true)
            .limit(7)
            .build();
        assert_eq!(
            emit_sql(&plan).as_deref(),
            Some(
                "SELECT * FROM dim JOIN fact ON id = b \
                 WHERE (weight < 10) AND ((a >= 5) AND (b < 3)) \
                 ORDER BY a DESC LIMIT 7"
            )
        );
    }

    #[test]
    fn left_join_probe_predicates_have_no_where_spelling() {
        let wl = build_workload(3);
        // Probe-scan predicate under LEFT JOIN: a WHERE conjunct would
        // bind to a residual filter above the join (standard SQL applies
        // WHERE after null-extension), so there is no faithful spelling.
        let probe_filtered = PlanBuilder::scan("dim", wl.dim_schema.clone())
            .join(
                PlanBuilder::scan("fact", wl.fact_schema.clone()).filter(col("a").ge(lit(5i64))),
                "id",
                "b",
                JoinType::OuterPreserveBuild,
            )
            .build();
        assert_eq!(emit_sql(&probe_filtered), None);
        // Build-scan predicates commute with the preserve-build join, so
        // they keep their WHERE spelling.
        let build_filtered = PlanBuilder::scan("dim", wl.dim_schema.clone())
            .filter(col("weight").lt(lit(10i64)))
            .join(
                PlanBuilder::scan("fact", wl.fact_schema.clone()),
                "id",
                "b",
                JoinType::OuterPreserveBuild,
            )
            .build();
        assert_eq!(
            emit_sql(&build_filtered).as_deref(),
            Some("SELECT * FROM dim LEFT JOIN fact ON id = b WHERE (weight < 10)")
        );
    }

    #[test]
    fn unexpressible_shapes_emit_none() {
        let wl = build_workload(2);
        // Float literals can print like integers, so they never round-trip.
        let float_pred = PlanBuilder::scan("fact", wl.fact_schema.clone())
            .filter(col("a").ge(lit(4.0f64)))
            .build();
        assert_eq!(emit_sql(&float_pred), None);
        // A join of two scans over the same table would make every
        // unqualified column ambiguous.
        let self_join = PlanBuilder::scan("fact", wl.fact_schema.clone())
            .join(
                PlanBuilder::scan("fact", wl.fact_schema.clone()),
                "a",
                "b",
                JoinType::Inner,
            )
            .build();
        assert_eq!(emit_sql(&self_join), None);
    }
}
