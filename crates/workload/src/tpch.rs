//! A TPC-H substrate (§8.3): dbgen-style generators for all eight tables
//! and pruning skeletons of the 22 queries — each skeleton reproduces the
//! query's scans, selective predicates, and join structure, which is what
//! determines partition pruning.
//!
//! As in the paper's Figure 13 setup, tables can be clustered on
//! `l_shipdate` / `o_orderdate` (default TPC-H order otherwise), and
//! pruning is measured per query as the fraction of partitions never
//! processed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::{JoinType, Plan, PlanBuilder};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
pub fn date(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i32 - 719_468
}

fn dlit(y: i32, m: u32, d: u32) -> snowprune_expr::Expr {
    lit(Value::Date(date(y, m, d)))
}

/// TPC-H generation options.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// Scale factor (1.0 = the standard 6M-lineitem scale).
    pub scale: f64,
    /// Rows per micro-partition (scaled-down stand-in for 50-500 MB).
    pub rows_per_partition: usize,
    /// Cluster lineitem by `l_shipdate` and orders by `o_orderdate`
    /// (the Figure 13 configuration); `false` keeps dbgen order.
    pub clustered: bool,
    /// RNG seed for data generation.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.02,
            rows_per_partition: 1500,
            clustered: true,
            seed: 19_920_101,
        }
    }
}

/// First order date in the generated data (year, month, day).
pub const START: (i32, u32, u32) = (1992, 1, 1);
/// Last order date in the generated data (year, month, day).
pub const END: (i32, u32, u32) = (1998, 12, 31);

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
const INSTRUCTIONS: [&str; 4] = [
    "COLLECT COD",
    "DELIVER IN PERSON",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BOX",
    "MED BAG",
    "LG CASE",
    "LG BOX",
    "JUMBO PACK",
    "WRAP JAR",
];
const TYPE_A: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_B: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_C: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const COLORS: [&str; 10] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "forest",
    "green",
    "khaki",
    "lemon",
    "magenta",
];

/// Generate the eight TPC-H tables into a fresh catalog.
pub fn generate_tpch(cfg: &TpchConfig) -> Catalog {
    let catalog = Catalog::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sf = cfg.scale;
    let n_orders = (1_500_000.0 * sf) as i64;
    let n_customers = ((150_000.0 * sf) as i64).max(10);
    let n_parts = ((200_000.0 * sf) as i64).max(10);
    let n_suppliers = ((10_000.0 * sf) as i64).max(5);
    let start = date(START.0, START.1, START.2);
    let end = date(END.0, END.1, END.2);

    // region + nation (fixed size).
    let mut region = TableBuilder::new("region", region_schema()).target_rows_per_partition(5);
    for (i, name) in ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
        .iter()
        .enumerate()
    {
        region.push_row(vec![Value::Int(i as i64), Value::Str((*name).into())]);
    }
    catalog.register(region.build());
    let mut nation = TableBuilder::new("nation", nation_schema()).target_rows_per_partition(25);
    for i in 0..25i64 {
        nation.push_row(vec![
            Value::Int(i),
            Value::Str(format!("NATION{i:02}")),
            Value::Int(i % 5),
        ]);
    }
    catalog.register(nation.build());

    // supplier.
    let mut supplier = TableBuilder::new("supplier", supplier_schema())
        .target_rows_per_partition(cfg.rows_per_partition);
    for i in 0..n_suppliers {
        supplier.push_row(vec![
            Value::Int(i),
            Value::Str(format!("Supplier#{i:09}")),
            Value::Int(rng.random_range(0..25)),
            Value::Float(rng.random_range(-999.99..9999.99)),
        ]);
    }
    catalog.register(supplier.build());

    // customer.
    let mut customer = TableBuilder::new("customer", customer_schema())
        .target_rows_per_partition(cfg.rows_per_partition);
    for i in 0..n_customers {
        customer.push_row(vec![
            Value::Int(i),
            Value::Str(format!("Customer#{i:09}")),
            Value::Int(rng.random_range(0..25)),
            Value::Str(SEGMENTS[rng.random_range(0..5usize)].into()),
            Value::Float(rng.random_range(-999.99..9999.99)),
            Value::Str(format!(
                "{}-{:03}-{:03}-{:04}",
                rng.random_range(10..35),
                rng.random_range(100..1000),
                rng.random_range(100..1000),
                rng.random_range(1000..10000)
            )),
        ]);
    }
    catalog.register(customer.build());

    // part.
    let mut part =
        TableBuilder::new("part", part_schema()).target_rows_per_partition(cfg.rows_per_partition);
    for i in 0..n_parts {
        let ty = format!(
            "{} {} {}",
            TYPE_A[rng.random_range(0..TYPE_A.len())],
            TYPE_B[rng.random_range(0..TYPE_B.len())],
            TYPE_C[rng.random_range(0..TYPE_C.len())]
        );
        let name = format!(
            "{} {}",
            COLORS[rng.random_range(0..COLORS.len())],
            COLORS[rng.random_range(0..COLORS.len())]
        );
        part.push_row(vec![
            Value::Int(i),
            Value::Str(name),
            Value::Str(format!(
                "Brand#{}{}",
                rng.random_range(1..6),
                rng.random_range(1..6)
            )),
            Value::Str(ty),
            Value::Int(rng.random_range(1..51)),
            Value::Str(CONTAINERS[rng.random_range(0..CONTAINERS.len())].into()),
            Value::Float(900.0 + (i % 1000) as f64 / 10.0),
        ]);
    }
    catalog.register(part.build());

    // partsupp.
    let mut partsupp = TableBuilder::new("partsupp", partsupp_schema())
        .target_rows_per_partition(cfg.rows_per_partition);
    for i in 0..n_parts {
        for j in 0..4i64 {
            partsupp.push_row(vec![
                Value::Int(i),
                Value::Int((i + j * (n_suppliers / 4 + 1)) % n_suppliers.max(1)),
                Value::Int(rng.random_range(1..10_000)),
                Value::Float(rng.random_range(1.0..1000.0)),
            ]);
        }
    }
    catalog.register(partsupp.build());

    // orders + lineitem.
    let orders_layout = if cfg.clustered {
        Layout::ClusterBy(vec!["o_orderdate".into()])
    } else {
        Layout::Natural
    };
    let lineitem_layout = if cfg.clustered {
        Layout::ClusterBy(vec!["l_shipdate".into()])
    } else {
        Layout::Natural
    };
    let mut orders = TableBuilder::new("orders", orders_schema())
        .target_rows_per_partition(cfg.rows_per_partition)
        .layout(orders_layout);
    let mut lineitem = TableBuilder::new("lineitem", lineitem_schema())
        .target_rows_per_partition(cfg.rows_per_partition)
        .layout(lineitem_layout);
    for ok in 0..n_orders {
        let odate = rng.random_range(start..end - 151);
        let status = ["F", "O", "P"][rng.random_range(0..3usize)];
        orders.push_row(vec![
            Value::Int(ok),
            Value::Int(rng.random_range(0..n_customers)),
            Value::Str(status.into()),
            Value::Float(rng.random_range(1000.0..500_000.0)),
            Value::Date(odate),
            Value::Str(PRIORITIES[rng.random_range(0..5usize)].into()),
            // Clerk ids span 0..100000 so prefix predicates like
            // `Clerk#00000%` select ~10% rather than everything.
            Value::Str(format!("Clerk#{:09}", rng.random_range(0..100_000))),
        ]);
        let lines = rng.random_range(1..8);
        for _ in 0..lines {
            let ship = odate + rng.random_range(1..122);
            let commit = odate + rng.random_range(30..91);
            let receipt = ship + rng.random_range(1..31);
            lineitem.push_row(vec![
                Value::Int(ok),
                Value::Int(rng.random_range(0..n_parts)),
                Value::Int(rng.random_range(0..n_suppliers)),
                Value::Int(rng.random_range(1..51)),
                Value::Float(rng.random_range(900.0..105_000.0)),
                Value::Float(rng.random_range(0..11) as f64 / 100.0),
                Value::Float(rng.random_range(0..9) as f64 / 100.0),
                Value::Str(["R", "A", "N"][rng.random_range(0..3usize)].into()),
                Value::Str(if ship > date(1995, 6, 17) { "O" } else { "F" }.into()),
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
                Value::Str(INSTRUCTIONS[rng.random_range(0..4usize)].into()),
                Value::Str(SHIPMODES[rng.random_range(0..7usize)].into()),
            ]);
        }
    }
    catalog.register(orders.build());
    catalog.register(lineitem.build());
    catalog
}

/// The `lineitem` table schema (the pruning-relevant columns).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Field::new("l_orderkey", ScalarType::Int),
        Field::new("l_partkey", ScalarType::Int),
        Field::new("l_suppkey", ScalarType::Int),
        Field::new("l_quantity", ScalarType::Int),
        Field::new("l_extendedprice", ScalarType::Float),
        Field::new("l_discount", ScalarType::Float),
        Field::new("l_tax", ScalarType::Float),
        Field::new("l_returnflag", ScalarType::Str),
        Field::new("l_linestatus", ScalarType::Str),
        Field::new("l_shipdate", ScalarType::Date),
        Field::new("l_commitdate", ScalarType::Date),
        Field::new("l_receiptdate", ScalarType::Date),
        Field::new("l_shipinstruct", ScalarType::Str),
        Field::new("l_shipmode", ScalarType::Str),
    ])
}

/// The `orders` table schema.
pub fn orders_schema() -> Schema {
    Schema::new(vec![
        Field::new("o_orderkey", ScalarType::Int),
        Field::new("o_custkey", ScalarType::Int),
        Field::new("o_orderstatus", ScalarType::Str),
        Field::new("o_totalprice", ScalarType::Float),
        Field::new("o_orderdate", ScalarType::Date),
        Field::new("o_orderpriority", ScalarType::Str),
        Field::new("o_clerk", ScalarType::Str),
    ])
}

/// The `customer` table schema.
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Field::new("c_custkey", ScalarType::Int),
        Field::new("c_name", ScalarType::Str),
        Field::new("c_nationkey", ScalarType::Int),
        Field::new("c_mktsegment", ScalarType::Str),
        Field::new("c_acctbal", ScalarType::Float),
        Field::new("c_phone", ScalarType::Str),
    ])
}

/// The `part` table schema.
pub fn part_schema() -> Schema {
    Schema::new(vec![
        Field::new("p_partkey", ScalarType::Int),
        Field::new("p_name", ScalarType::Str),
        Field::new("p_brand", ScalarType::Str),
        Field::new("p_type", ScalarType::Str),
        Field::new("p_size", ScalarType::Int),
        Field::new("p_container", ScalarType::Str),
        Field::new("p_retailprice", ScalarType::Float),
    ])
}

/// The `supplier` table schema.
pub fn supplier_schema() -> Schema {
    Schema::new(vec![
        Field::new("s_suppkey", ScalarType::Int),
        Field::new("s_name", ScalarType::Str),
        Field::new("s_nationkey", ScalarType::Int),
        Field::new("s_acctbal", ScalarType::Float),
    ])
}

/// The `partsupp` table schema.
pub fn partsupp_schema() -> Schema {
    Schema::new(vec![
        Field::new("ps_partkey", ScalarType::Int),
        Field::new("ps_suppkey", ScalarType::Int),
        Field::new("ps_availqty", ScalarType::Int),
        Field::new("ps_supplycost", ScalarType::Float),
    ])
}

/// The `nation` table schema.
pub fn nation_schema() -> Schema {
    Schema::new(vec![
        Field::new("n_nationkey", ScalarType::Int),
        Field::new("n_name", ScalarType::Str),
        Field::new("n_regionkey", ScalarType::Int),
    ])
}

/// The `region` table schema.
pub fn region_schema() -> Schema {
    Schema::new(vec![
        Field::new("r_regionkey", ScalarType::Int),
        Field::new("r_name", ScalarType::Str),
    ])
}

fn li() -> PlanBuilder {
    PlanBuilder::scan("lineitem", lineitem_schema())
}
fn ord() -> PlanBuilder {
    PlanBuilder::scan("orders", orders_schema())
}
fn cust() -> PlanBuilder {
    PlanBuilder::scan("customer", customer_schema())
}
fn prt() -> PlanBuilder {
    PlanBuilder::scan("part", part_schema())
}
fn supp() -> PlanBuilder {
    PlanBuilder::scan("supplier", supplier_schema())
}
fn psupp() -> PlanBuilder {
    PlanBuilder::scan("partsupp", partsupp_schema())
}

/// The pruning skeletons of TPC-H Q1–Q22: scans, selective predicates, and
/// join structure (build = left input). Aggregations that do not affect
/// pruning are omitted.
pub fn tpch_query(q: usize) -> Plan {
    match q {
        1 => li().filter(col("l_shipdate").le(dlit(1998, 9, 2))).build(),
        2 => prt()
            .filter(
                col("p_size")
                    .eq(lit(15i64))
                    .and(col("p_type").like("%BRASS")),
            )
            .join(psupp(), "p_partkey", "ps_partkey", JoinType::Inner)
            .build(),
        3 => cust()
            .filter(col("c_mktsegment").eq(lit("BUILDING")))
            .join(
                ord().filter(col("o_orderdate").lt(dlit(1995, 3, 15))),
                "c_custkey",
                "o_custkey",
                JoinType::Inner,
            )
            .join(
                li().filter(col("l_shipdate").gt(dlit(1995, 3, 15))),
                "o_orderkey",
                "l_orderkey",
                JoinType::Inner,
            )
            .build(),
        4 => ord()
            .filter(
                col("o_orderdate")
                    .ge(dlit(1993, 7, 1))
                    .and(col("o_orderdate").lt(dlit(1993, 10, 1))),
            )
            .join(
                li().filter(col("l_commitdate").lt(col("l_receiptdate"))),
                "o_orderkey",
                "l_orderkey",
                JoinType::Inner,
            )
            .build(),
        5 => ord()
            .filter(
                col("o_orderdate")
                    .ge(dlit(1994, 1, 1))
                    .and(col("o_orderdate").lt(dlit(1995, 1, 1))),
            )
            .join(cust(), "o_custkey", "c_custkey", JoinType::Inner)
            .join(li(), "o_orderkey", "l_orderkey", JoinType::Inner)
            .build(),
        6 => li()
            .filter(
                col("l_shipdate")
                    .ge(dlit(1994, 1, 1))
                    .and(col("l_shipdate").lt(dlit(1995, 1, 1)))
                    .and(col("l_discount").between(lit(0.05), lit(0.07)))
                    .and(col("l_quantity").lt(lit(24i64))),
            )
            .build(),
        7 => supp()
            .filter(col("s_nationkey").in_list(vec![Value::Int(7), Value::Int(8)]))
            .join(
                li().filter(
                    col("l_shipdate")
                        .ge(dlit(1995, 1, 1))
                        .and(col("l_shipdate").le(dlit(1996, 12, 31))),
                ),
                "s_suppkey",
                "l_suppkey",
                JoinType::Inner,
            )
            .build(),
        8 => prt()
            .filter(col("p_type").eq(lit("ECONOMY ANODIZED STEEL")))
            .join(li(), "p_partkey", "l_partkey", JoinType::Inner)
            .join(
                ord().filter(
                    col("o_orderdate")
                        .ge(dlit(1995, 1, 1))
                        .and(col("o_orderdate").le(dlit(1996, 12, 31))),
                ),
                "l_orderkey",
                "o_orderkey",
                JoinType::Inner,
            )
            .build(),
        9 => prt()
            .filter(col("p_name").like("%green%"))
            .join(li(), "p_partkey", "l_partkey", JoinType::Inner)
            .build(),
        10 => ord()
            .filter(
                col("o_orderdate")
                    .ge(dlit(1993, 10, 1))
                    .and(col("o_orderdate").lt(dlit(1994, 1, 1))),
            )
            .join(
                li().filter(col("l_returnflag").eq(lit("R"))),
                "o_orderkey",
                "l_orderkey",
                JoinType::Inner,
            )
            .join(cust(), "o_custkey", "c_custkey", JoinType::Inner)
            .build(),
        11 => supp()
            .filter(col("s_nationkey").eq(lit(7i64)))
            .join(psupp(), "s_suppkey", "ps_suppkey", JoinType::Inner)
            .build(),
        12 => ord()
            .join(
                li().filter(
                    col("l_shipmode")
                        .in_list(vec![Value::Str("MAIL".into()), Value::Str("SHIP".into())])
                        .and(col("l_commitdate").lt(col("l_receiptdate")))
                        .and(col("l_shipdate").lt(col("l_commitdate")))
                        .and(col("l_receiptdate").ge(dlit(1994, 1, 1)))
                        .and(col("l_receiptdate").lt(dlit(1995, 1, 1))),
                ),
                "o_orderkey",
                "l_orderkey",
                JoinType::Inner,
            )
            .build(),
        13 => cust()
            .join(
                ord().filter(col("o_clerk").like("Clerk#00000%").not()),
                "c_custkey",
                "o_custkey",
                JoinType::OuterPreserveBuild,
            )
            .build(),
        14 => li()
            .filter(
                col("l_shipdate")
                    .ge(dlit(1995, 9, 1))
                    .and(col("l_shipdate").lt(dlit(1995, 10, 1))),
            )
            .join(prt(), "l_partkey", "p_partkey", JoinType::Inner)
            .build(),
        15 => li()
            .filter(
                col("l_shipdate")
                    .ge(dlit(1996, 1, 1))
                    .and(col("l_shipdate").lt(dlit(1996, 4, 1))),
            )
            .join(supp(), "l_suppkey", "s_suppkey", JoinType::Inner)
            .build(),
        16 => prt()
            .filter(
                col("p_brand")
                    .ne(lit("Brand#45"))
                    .and(col("p_type").like("MEDIUM POLISHED%").not())
                    .and(col("p_size").in_list(vec![
                        Value::Int(49),
                        Value::Int(14),
                        Value::Int(23),
                        Value::Int(45),
                        Value::Int(19),
                        Value::Int(3),
                        Value::Int(36),
                        Value::Int(9),
                    ])),
            )
            .join(psupp(), "p_partkey", "ps_partkey", JoinType::Inner)
            .build(),
        17 => prt()
            .filter(
                col("p_brand")
                    .eq(lit("Brand#23"))
                    .and(col("p_container").eq(lit("MED BOX"))),
            )
            .join(li(), "p_partkey", "l_partkey", JoinType::Inner)
            .build(),
        18 => ord()
            .join(
                li().filter(col("l_quantity").gt(lit(45i64))),
                "o_orderkey",
                "l_orderkey",
                JoinType::Inner,
            )
            .build(),
        19 => prt()
            .filter(
                col("p_brand")
                    .eq(lit("Brand#12"))
                    .and(col("p_container").in_list(vec![
                        Value::Str("SM CASE".into()),
                        Value::Str("SM BOX".into()),
                    ]))
                    .or(col("p_brand")
                        .eq(lit("Brand#23"))
                        .and(col("p_container").in_list(vec![
                            Value::Str("MED BAG".into()),
                            Value::Str("MED BOX".into()),
                        ]))),
            )
            .join(
                li().filter(
                    col("l_shipinstruct")
                        .eq(lit("DELIVER IN PERSON"))
                        .and(col("l_quantity").between(lit(1i64), lit(30i64))),
                ),
                "p_partkey",
                "l_partkey",
                JoinType::Inner,
            )
            .build(),
        20 => prt()
            .filter(col("p_name").like("forest%"))
            .join(psupp(), "p_partkey", "ps_partkey", JoinType::Inner)
            .join(
                li().filter(
                    col("l_shipdate")
                        .ge(dlit(1994, 1, 1))
                        .and(col("l_shipdate").lt(dlit(1995, 1, 1))),
                ),
                "ps_suppkey",
                "l_suppkey",
                JoinType::Inner,
            )
            .build(),
        21 => supp()
            .filter(col("s_nationkey").eq(lit(3i64)))
            .join(
                li().filter(col("l_receiptdate").gt(col("l_commitdate"))),
                "s_suppkey",
                "l_suppkey",
                JoinType::Inner,
            )
            .join(
                ord().filter(col("o_orderstatus").eq(lit("F"))),
                "l_orderkey",
                "o_orderkey",
                JoinType::Inner,
            )
            .build(),
        22 => cust()
            .filter(
                col("c_acctbal").gt(lit(0.0)).and(
                    col("c_phone")
                        .like("13%")
                        .or(col("c_phone").like("31%"))
                        .or(col("c_phone").like("23%"))
                        .or(col("c_phone").like("29%")),
                ),
            )
            .build(),
        _ => panic!("TPC-H has queries 1..=22, got {q}"),
    }
}

/// All 22 queries.
pub fn all_tpch_queries() -> Vec<(usize, Plan)> {
    (1..=22).map(|q| (q, tpch_query(q))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_math() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(date(1970, 1, 2), 1);
        assert_eq!(date(1969, 12, 31), -1);
        assert_eq!(date(1998, 12, 1) - date(1998, 9, 2), 90);
        // TPC-H date span: 2557 days.
        assert_eq!(date(1998, 12, 31) - date(1992, 1, 1), 2556);
    }

    #[test]
    fn generates_all_tables_at_tiny_scale() {
        let catalog = generate_tpch(&TpchConfig {
            scale: 0.001,
            rows_per_partition: 200,
            clustered: true,
            seed: 1,
        });
        let names = catalog.table_names();
        for t in [
            "customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier",
        ] {
            assert!(names.contains(&t.to_owned()), "missing {t}");
        }
        let li = catalog.get("lineitem").unwrap();
        let li = li.read();
        assert!(li.total_rows() > 4000, "{}", li.total_rows());
        // Clustered on shipdate: partition 0 has the earliest dates.
        let m = li.metadata();
        let first_max = m[0].zone_maps[9].max.clone().unwrap();
        let last_min = m[m.len() - 1].zone_maps[9].min.clone().unwrap();
        assert!(matches!(
            first_max.sql_cmp(&last_min),
            Some(std::cmp::Ordering::Less)
        ));
    }

    #[test]
    fn all_queries_validate_against_schemas() {
        for (q, plan) in all_tpch_queries() {
            plan.check().unwrap_or_else(|e| panic!("Q{q}: {e}"));
        }
    }

    #[test]
    fn lineitem_dates_are_consistent() {
        let catalog = generate_tpch(&TpchConfig {
            scale: 0.001,
            rows_per_partition: 500,
            clustered: false,
            seed: 2,
        });
        let li = catalog.get("lineitem").unwrap();
        let li = li.read();
        let p = li.partition(0).unwrap();
        let (ship_i, rcpt_i) = (9usize, 11usize);
        for i in 0..p.row_count() {
            let ship = match p.column(ship_i).value_at(i) {
                Value::Date(d) => d,
                other => panic!("{other:?}"),
            };
            let rcpt = match p.column(rcpt_i).value_at(i) {
                Value::Date(d) => d,
                other => panic!("{other:?}"),
            };
            assert!(rcpt > ship, "receipt after ship");
        }
    }
}
