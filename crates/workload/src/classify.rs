//! SQL-text query classification, mirroring how the paper derives Table 1
//! ("based on pattern-matching on SQL texts").

/// The Table 1 categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SqlClass {
    /// LIMIT without ORDER BY, no WHERE.
    LimitNoPredicate,
    /// LIMIT without ORDER BY, with WHERE.
    LimitWithPredicate,
    /// ORDER BY x LIMIT k, no GROUP BY.
    OrderByLimit,
    /// GROUP BY x ORDER BY x LIMIT k (ordering on a grouping key).
    GroupByOrderByKeyLimit,
    /// GROUP BY y ORDER BY agg(x) LIMIT k.
    GroupByOrderByAggLimit,
    /// Anything else.
    Other,
}

/// Classify one SQL text (uppercase-insensitive substring matching, as a
/// production telemetry pipeline would).
pub fn classify_sql(sql: &str) -> SqlClass {
    let up = sql.to_uppercase();
    let has_limit = up.contains(" LIMIT ");
    if !has_limit {
        return SqlClass::Other;
    }
    let has_order = up.contains(" ORDER BY ");
    let has_group = up.contains(" GROUP BY ");
    let has_where = up.contains(" WHERE ");
    if !has_order {
        return if has_where {
            SqlClass::LimitWithPredicate
        } else {
            SqlClass::LimitNoPredicate
        };
    }
    if !has_group {
        return SqlClass::OrderByLimit;
    }
    // ORDER BY an aggregate (SUM/COUNT/MIN/MAX/AVG...) vs a grouping key.
    let order_clause = up
        .split(" ORDER BY ")
        .nth(1)
        .unwrap_or("")
        .split(" LIMIT ")
        .next()
        .unwrap_or("");
    let aggy = ["SUM", "COUNT", "MIN", "MAX", "AVG"]
        .iter()
        .any(|a| order_clause.contains(a));
    if aggy {
        SqlClass::GroupByOrderByAggLimit
    } else {
        SqlClass::GroupByOrderByKeyLimit
    }
}

/// Aggregate classification shares over a workload's SQL texts.
pub fn classify_workload<'a>(sqls: impl IntoIterator<Item = &'a str>) -> Vec<(SqlClass, f64)> {
    use std::collections::HashMap;
    let mut counts: HashMap<SqlClass, u64> = HashMap::new();
    let mut total = 0u64;
    for sql in sqls {
        *counts.entry(classify_sql(sql)).or_insert(0) += 1;
        total += 1;
    }
    let mut out: Vec<(SqlClass, f64)> = counts
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total.max(1) as f64))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_table1_patterns() {
        assert_eq!(
            classify_sql("SELECT * FROM t LIMIT 10"),
            SqlClass::LimitNoPredicate
        );
        assert_eq!(
            classify_sql("SELECT * FROM t WHERE (x > 5) LIMIT 10"),
            SqlClass::LimitWithPredicate
        );
        assert_eq!(
            classify_sql("SELECT * FROM t WHERE (x > 5) ORDER BY y DESC LIMIT 3"),
            SqlClass::OrderByLimit
        );
        assert_eq!(
            classify_sql("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g LIMIT 5"),
            SqlClass::GroupByOrderByKeyLimit
        );
        assert_eq!(
            classify_sql("SELECT g, SUM(m) FROM t GROUP BY g ORDER BY SUM(m) DESC LIMIT 5"),
            SqlClass::GroupByOrderByAggLimit
        );
        assert_eq!(classify_sql("SELECT * FROM t WHERE x = 1"), SqlClass::Other);
    }
}
