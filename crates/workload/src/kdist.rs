//! The LIMIT-k sampler, calibrated to Figure 6 of the paper:
//! "97% of queries have k ≤ 10,000 and 99.9% have k ≤ 2,000,000", with
//! "most queries having k = 0 or k = 1" and visible steps at round values
//! (dashboards appending LIMIT 100/1000/10000).

use rand::{Rng, RngExt};

/// Sample a `k` for a LIMIT clause (the paper plots k > 0; we also emit
/// k = 0 occasionally for the schema-discovery pattern unless
/// `allow_zero` is false).
pub fn sample_k(rng: &mut impl Rng, allow_zero: bool) -> u64 {
    let r: f64 = rng.random();
    // Piecewise mixture fit to the published anchors.
    let k = if r < 0.08 {
        0 // BI tools issuing LIMIT 0 for schema discovery
    } else if r < 0.35 {
        1
    } else if r < 0.50 {
        10
    } else if r < 0.62 {
        rng.random_range(2..100)
    } else if r < 0.78 {
        100
    } else if r < 0.87 {
        1000
    } else if r < 0.97 {
        10_000
    } else if r < 0.999 {
        rng.random_range(10_001..=2_000_000)
    } else {
        rng.random_range(2_000_001..=20_000_000)
    };
    if k == 0 && !allow_zero {
        1
    } else {
        k
    }
}

/// Empirical CDF helper for reporting Figure 6.
pub fn cdf_at(samples: &[u64], threshold: u64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&k| k <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_matches_figure6_anchors() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<u64> = (0..50_000).map(|_| sample_k(&mut rng, true)).collect();
        let p10k = cdf_at(&samples, 10_000);
        let p2m = cdf_at(&samples, 2_000_000);
        assert!((p10k - 0.97).abs() < 0.01, "P(k<=10000) = {p10k}");
        assert!(p2m >= 0.998, "P(k<=2M) = {p2m}");
        // Most queries have k = 0 or 1.
        let small = cdf_at(&samples, 1);
        assert!(small > 0.3, "P(k<=1) = {small}");
    }

    #[test]
    fn allow_zero_flag() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..1000).all(|_| sample_k(&mut rng, false) > 0));
    }
}
