//! Workload substrates for the reproduction: a production-like generator
//! calibrated to the paper's published statistics, and a TPC-H dbgen with
//! the 22 queries' pruning skeletons (§8.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod classify;
pub mod diffgen;
pub mod kdist;
pub mod production;
pub mod tpch;

pub use classify::{classify_sql, classify_workload, SqlClass};
pub use diffgen::emit_sql;
pub use kdist::{cdf_at, sample_k};
pub use production::{
    generate, io_bound_burst, occurrence_histogram, production_scale, repetition_shape_ids,
    tenant_burst, topk_tighten_burst, GeneratedQuery, ProductionScaleConfig,
    ProductionScaleWorkload, ProductionWorkload, QueryKind, WorkloadConfig,
};
pub use tpch::{all_tpch_queries, date, generate_tpch, tpch_query, TpchConfig};
