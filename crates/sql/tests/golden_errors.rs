//! Golden error snapshots: the full rendered diagnostic — header,
//! offending source line, and caret underline — is pinned for one
//! representative of each front-end failure class. A change to any of
//! these blocks is a user-visible REPL change and must be deliberate.

use snowprune_sql::{bind_sql, demo_catalog, render_error};

fn rendered(src: &str) -> String {
    let catalog = demo_catalog();
    let err = bind_sql(src, &catalog)
        .err()
        .unwrap_or_else(|| panic!("golden input unexpectedly accepted: {src:?}"));
    render_error(src, &err)
}

#[track_caller]
fn check(src: &str, expect: &str) {
    assert_eq!(rendered(src), expect, "golden drifted for {src:?}");
}

#[test]
fn unknown_leading_keyword() {
    check(
        "SELEC * FROM fact",
        "error[sql-syntax] at 1:1: expected `SELECT`, `INSERT`, `DELETE`, or `UPDATE`, found `SELEC`\n  \
         SELEC * FROM fact\n  \
         ^^^^^",
    );
}

#[test]
fn misspelled_from() {
    check(
        "SELECT * FORM fact",
        "error[sql-syntax] at 1:10: expected `FROM`, found `FORM`\n  \
         SELECT * FORM fact\n           \
         ^^^^",
    );
}

#[test]
fn missing_table_name_points_past_the_input() {
    check(
        "SELECT * FROM",
        "error[sql-syntax] at 1:14: expected a table name, found end of input\n  \
         SELECT * FROM\n               \
         ^",
    );
}

#[test]
fn unknown_table() {
    check(
        "SELECT * FROM nope",
        "error[unknown-table] at 1:15: no table `nope` in the catalog\n  \
         SELECT * FROM nope\n                \
         ^^^^",
    );
}

#[test]
fn unknown_column_in_where() {
    check(
        "SELECT * FROM fact WHERE q > 1",
        "error[unknown-column] at 1:26: no column `q` in scope\n  \
         SELECT * FROM fact WHERE q > 1\n                           \
         ^",
    );
}

#[test]
fn self_join_is_rejected() {
    check(
        "SELECT * FROM fact JOIN fact ON a = b",
        "error[sql-unsupported] at 1:25: self-join of `fact` is not supported\n  \
         SELECT * FROM fact JOIN fact ON a = b\n                          \
         ^^^^",
    );
}

#[test]
fn group_by_without_aggregates() {
    check(
        "SELECT a FROM fact GROUP BY c",
        "error[sql-unsupported] at 1:29: GROUP BY requires at least one aggregate in the SELECT list\n  \
         SELECT a FROM fact GROUP BY c\n                              \
         ^",
    );
}

#[test]
fn star_only_counts() {
    check(
        "SELECT SUM(*) FROM fact",
        "error[sql-syntax] at 1:12: only COUNT accepts `*`\n  \
         SELECT SUM(*) FROM fact\n             \
         ^",
    );
}

#[test]
fn between_missing_and() {
    check(
        "SELECT * FROM fact WHERE a BETWEEN 1",
        "error[sql-syntax] at 1:37: expected `AND`, found end of input\n  \
         SELECT * FROM fact WHERE a BETWEEN 1\n                                      \
         ^",
    );
}

#[test]
fn negative_limit() {
    check(
        "SELECT * FROM fact LIMIT -1",
        "error[sql-syntax] at 1:26: expected a LIMIT count (a non-negative integer), found `-`\n  \
         SELECT * FROM fact LIMIT -1\n                           \
         ^",
    );
}

#[test]
fn unterminated_string_literal() {
    check(
        "SELECT * FROM fact WHERE c = 'red",
        "error[sql-syntax] at 1:30: unterminated string literal\n  \
         SELECT * FROM fact WHERE c = 'red\n                               \
         ^^^^",
    );
}

#[test]
fn order_by_column_outside_the_select_output() {
    check(
        "SELECT * FROM fact WHERE a = 5 ORDER BY z",
        "error[unknown-column] at 1:41: no column `z` in the SELECT output to order by\n  \
         SELECT * FROM fact WHERE a = 5 ORDER BY z\n                                          \
         ^",
    );
}

#[test]
fn trailing_garbage_after_a_complete_statement() {
    check(
        "SELECT * FROM fact WHERE a = 5 5",
        "error[sql-syntax] at 1:32: expected end of statement, found integer `5`\n  \
         SELECT * FROM fact WHERE a = 5 5\n                                 \
         ^",
    );
}

#[test]
fn insert_arity_mismatch() {
    check(
        "INSERT INTO dim VALUES (1)",
        "error[sql-syntax] at 1:25: table `dim` has 2 columns but the VALUES row has 1\n  \
         INSERT INTO dim VALUES (1)\n                          \
         ^",
    );
}
