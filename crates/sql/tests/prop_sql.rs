//! SQL front-end robustness suite.
//!
//! Three legs, all over seeded random inputs:
//!
//! 1. **Valid statements** — a grammar-directed generator emits
//!    statements against the demo catalog; every one must lex, parse,
//!    and bind cleanly.
//! 2. **Printable-byte soup** — arbitrary printable strings must never
//!    panic the front-end, and every rejection must carry at least one
//!    diagnostic whose span lies inside the input.
//! 3. **Token soup** — random sequences of *real* SQL vocabulary get
//!    much deeper into the parser than byte soup; the same
//!    never-panic / spans-in-bounds invariant holds.

use proptest::collection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snowprune_sql::{bind_sql, demo_catalog, parse_statement};
use snowprune_types::Error;

/// Every rejection must be a `PlanRejected` with at least one
/// diagnostic, and every spanned diagnostic must point inside `src`.
fn assert_well_formed_rejection(src: &str, err: &Error) {
    let Error::PlanRejected(diags) = err else {
        panic!("rejection of {src:?} is not PlanRejected: {err}");
    };
    assert!(!diags.is_empty(), "empty diagnostics for {src:?}");
    for d in diags {
        let span = d
            .span
            .unwrap_or_else(|| panic!("span-free front-end diagnostic for {src:?}: {d}"));
        assert!(
            span.start <= span.end && span.end <= src.len(),
            "span {}..{} outside input of length {} for {src:?}",
            span.start,
            span.end,
            src.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Leg 1: grammar-directed valid statements always parse and bind.
// ---------------------------------------------------------------------------

/// A random predicate over the demo `fact` table (columns `a`, `b`
/// integer, `c` string), depth-limited so conjunctions stay small.
fn random_fact_pred(rng: &mut StdRng, depth: u32) -> String {
    let arm = if depth == 0 {
        rng.random_range(0u32..8)
    } else {
        rng.random_range(0u32..10)
    };
    match arm {
        0 => format!("a >= {}", rng.random_range(-100i64..1200)),
        1 => {
            let lo = rng.random_range(0i64..600);
            format!("a BETWEEN {lo} AND {}", lo + rng.random_range(1i64..400))
        }
        2 => format!(
            "c = '{}'",
            ["red", "green", "blue", "teal"][rng.random_range(0usize..4)]
        ),
        3 => "b IS NOT NULL".into(),
        4 => "b IS NULL".into(),
        5 => format!(
            "c LIKE '{}'",
            ["red", "gr%", "%e%"][rng.random_range(0usize..3)]
        ),
        6 => format!(
            "a IN (1, 2, {}, {})",
            rng.random_range(3i64..600),
            rng.random_range(3i64..600)
        ),
        7 => format!("NOT (b < {})", rng.random_range(0i64..60)),
        8 => format!(
            "({} AND {})",
            random_fact_pred(rng, depth - 1),
            random_fact_pred(rng, depth - 1)
        ),
        _ => format!(
            "({} OR {})",
            random_fact_pred(rng, depth - 1),
            random_fact_pred(rng, depth - 1)
        ),
    }
}

/// A random statement that must survive the whole front-end: lexer,
/// parser, binder, and the static plan verifier.
fn random_valid_statement(rng: &mut StdRng) -> String {
    match rng.random_range(0u32..8) {
        0 => format!("SELECT * FROM fact WHERE {}", random_fact_pred(rng, 1)),
        1 => {
            let k = rng.random_range(1u32..40);
            let dir = if rng.random::<bool>() { " DESC" } else { "" };
            format!(
                "SELECT a, c FROM fact WHERE {} ORDER BY a{dir} LIMIT {k}",
                random_fact_pred(rng, 1)
            )
        }
        2 => format!(
            "SELECT c, COUNT(*), SUM(b), MIN(a) FROM fact WHERE {} GROUP BY c",
            random_fact_pred(rng, 0)
        ),
        3 => format!(
            "SELECT * FROM dim JOIN fact ON id = b WHERE weight < {}",
            rng.random_range(1i64..50)
        ),
        4 => format!(
            "SELECT * FROM dim LEFT JOIN fact ON id = b WHERE {}",
            random_fact_pred(rng, 0)
        ),
        5 => format!(
            "INSERT INTO dim VALUES ({}, {})",
            rng.random_range(1000i64..2000),
            rng.random_range(0i64..50)
        ),
        6 => format!(
            "DELETE FROM fact WHERE a > {}",
            rng.random_range(0i64..1200)
        ),
        _ => format!(
            "UPDATE fact SET b = {} WHERE {}",
            rng.random_range(0i64..60),
            random_fact_pred(rng, 0)
        ),
    }
}

#[test]
fn valid_statements_always_parse_and_bind() {
    let catalog = demo_catalog();
    let mut rng = StdRng::seed_from_u64(0x5A11_D5EE);
    for i in 0..512 {
        let sql = random_valid_statement(&mut rng);
        parse_statement(&sql).unwrap_or_else(|e| panic!("case {i}: {sql:?} failed to parse: {e}"));
        bind_sql(&sql, &catalog)
            .unwrap_or_else(|e| panic!("case {i}: {sql:?} failed to bind: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Legs 2 and 3: soup must never panic, and rejections must be spanned.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn printable_byte_soup_never_panics(src in "[ -~]{0,48}") {
        let catalog = demo_catalog();
        if let Err(e) = parse_statement(&src) {
            assert_well_formed_rejection(&src, &e);
        }
        if let Err(e) = bind_sql(&src, &catalog) {
            assert_well_formed_rejection(&src, &e);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn token_soup_never_panics(
        toks in collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("ORDER"), Just("BY"), Just("LIMIT"), Just("OFFSET"),
                Just("JOIN"), Just("LEFT"), Just("ON"), Just("AND"),
                Just("OR"), Just("NOT"), Just("IS"), Just("NULL"),
                Just("LIKE"), Just("IN"), Just("BETWEEN"), Just("INSERT"),
                Just("INTO"), Just("VALUES"), Just("DELETE"), Just("UPDATE"),
                Just("SET"), Just("COUNT"), Just("SUM"), Just("AVG"),
                Just("fact"), Just("dim"), Just("a"), Just("b"), Just("c"),
                Just("id"), Just("weight"), Just("nope"), Just("*"),
                Just(","), Just("("), Just(")"), Just(";"), Just("."),
                Just("="), Just("!="), Just("<"), Just(">="), Just("+"),
                Just("-"), Just("/"), Just("0"), Just("7"), Just("42"),
                Just("'red'"), Just("'"), Just("3.5"),
            ],
            0..14,
        ),
    ) {
        let src = toks.join(" ");
        let catalog = demo_catalog();
        if let Err(e) = parse_statement(&src) {
            assert_well_formed_rejection(&src, &e);
        }
        if let Err(e) = bind_sql(&src, &catalog) {
            assert_well_formed_rejection(&src, &e);
        }
    }
}
