//! Canonical plan renderings of SQL-lowered plans, pinned end to end:
//! statement text in, `snowprune_plan::pretty` text out. These goldens
//! double as grammar documentation — each shows exactly which plan a
//! statement lowers to.

use snowprune_plan::pretty;
use snowprune_sql::{bind_sql, demo_catalog, Statement};

#[track_caller]
fn lowered(sql: &str) -> String {
    match bind_sql(sql, &demo_catalog()) {
        Ok(Statement::Query(plan)) => pretty(&plan),
        Ok(_) => panic!("{sql:?} bound to a DML statement"),
        Err(e) => panic!("{sql:?} failed to bind: {e}"),
    }
}

#[test]
fn filtered_scan_folds_where_into_the_scan() {
    assert_eq!(
        lowered("SELECT * FROM fact WHERE a >= 5 AND b < 3"),
        "Scan fact(a, b, c) [((a >= 5) AND (b < 3))]\n"
    );
}

#[test]
fn projection_sorts_and_limits_stack_in_spine_order() {
    assert_eq!(
        lowered("SELECT a, c FROM fact WHERE c = 'red' ORDER BY a DESC LIMIT 7"),
        "Limit [7 OFFSET 0]\n  \
         Sort [a DESC]\n    \
         Project [a, c]\n      \
         Scan fact(a, b, c) [(c = 'red')]\n"
    );
}

#[test]
fn join_where_conjuncts_route_to_their_scans() {
    assert_eq!(
        lowered("SELECT * FROM dim JOIN fact ON id = b WHERE weight < 10 AND a >= 100"),
        "Join Inner [id = b]\n  \
         Scan dim(id, weight) [(weight < 10)]\n  \
         Scan fact(a, b, c) [(a >= 100)]\n"
    );
}

#[test]
fn left_join_preserves_the_from_side() {
    // WHERE applies after null-extension (standard SQL), so the
    // probe-side conjunct stays above the join — pushing it into the
    // fact scan would keep unmatched dim rows null-padded.
    assert_eq!(
        lowered("SELECT * FROM dim LEFT JOIN fact ON id = b WHERE a >= 100"),
        "Filter [(a >= 100)]\n  \
         Join OuterPreserveBuild [id = b]\n    \
         Scan dim(id, weight)\n    \
         Scan fact(a, b, c)\n"
    );
}

#[test]
fn left_join_build_conjuncts_still_push_into_the_build_scan() {
    // Build rows are preserved (never null-extended), so filtering them
    // pre-join commutes with the join and keeps pruning effective.
    assert_eq!(
        lowered("SELECT * FROM dim LEFT JOIN fact ON id = b WHERE weight < 10"),
        "Join OuterPreserveBuild [id = b]\n  \
         Scan dim(id, weight) [(weight < 10)]\n  \
         Scan fact(a, b, c)\n"
    );
}

#[test]
fn group_by_lowers_keys_then_aggregates() {
    assert_eq!(
        lowered("SELECT c, COUNT(*), SUM(b) FROM fact GROUP BY c"),
        "Aggregate [group by c; count, sum_b]\n  \
         Scan fact(a, b, c)\n"
    );
}
