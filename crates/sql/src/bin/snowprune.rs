//! The `snowprune` CLI: serve SQL over the demo lake.
//!
//! ```text
//! snowprune [--cache off|exact|shape] [--threads N] [--prompt]
//! ```
//!
//! Reads one statement per line from stdin (so scripts can be piped in),
//! prints result rows plus a pruning/cache stats line per query, and
//! renders every rejection with a `line:col` caret. `.tables`,
//! `.schema <t>`, and `.quit` are available as dot-commands.

use std::io::{stdin, stdout, BufWriter, Write};
use std::process::ExitCode;

use snowprune_exec::{ExecConfig, PredicateCacheMode, Session};
use snowprune_sql::{demo_catalog, run_repl, ReplOptions};

fn usage() -> &'static str {
    "usage: snowprune [--cache off|exact|shape] [--threads N] [--prompt]"
}

fn main() -> ExitCode {
    let mut cfg = ExecConfig::default().with_scan_threads(2);
    let mut cache = "shape".to_owned();
    let mut opts = ReplOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cache" => match args.next() {
                Some(v) => cache = v,
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg = cfg.with_scan_threads(n),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--prompt" => opts.prompt = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    cfg = match cache.as_str() {
        "off" => cfg.with_predicate_cache(false),
        "exact" => cfg
            .with_predicate_cache(true)
            .with_predicate_cache_mode(PredicateCacheMode::Exact),
        "shape" => cfg
            .with_predicate_cache(true)
            .with_predicate_cache_mode(PredicateCacheMode::Shape),
        other => {
            eprintln!("unknown cache mode `{other}`\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let session = Session::new(demo_catalog(), cfg);
    let out = stdout();
    let mut out = BufWriter::new(out.lock());
    match run_repl(&session, stdin().lock(), &mut out, &opts).and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("io error: {e}");
            ExitCode::FAILURE
        }
    }
}
