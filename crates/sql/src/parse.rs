//! Recursive-descent parser: spanned tokens → spanned [`Stmt`]s.
//!
//! The grammar is the subset the plan IR can execute (see the README
//! grammar table): single-table SELECT with WHERE / GROUP BY / ORDER BY /
//! LIMIT-OFFSET, one optional `[LEFT] JOIN … ON a = b`, and literal-row
//! INSERT plus predicated DELETE/UPDATE. Keywords are case-insensitive;
//! every rejection is an [`Error::PlanRejected`] whose diagnostic carries
//! a [`Span`] inside the input.

use snowprune_types::{DiagCode, Diagnostic, Error, Result, Span, Value};

use crate::ast::{
    AggCall, AggName, ArithOp, CmpOp, ColumnName, JoinClause, LimitClause, Name, OrderItem,
    SelectItem, SelectStmt, SqlExpr, SqlExprKind, Stmt,
};
use crate::token::{lex, Token, TokenKind};

/// Words that terminate an expression or introduce a clause; they cannot
/// be used as bare column/table identifiers.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "OFFSET", "JOIN", "LEFT", "INNER",
    "ON", "AND", "OR", "NOT", "IS", "NULL", "TRUE", "FALSE", "LIKE", "IN", "BETWEEN", "AS", "ASC",
    "DESC", "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
];

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

fn err(message: impl Into<String>, span: Span) -> Error {
    Error::PlanRejected(vec![
        Diagnostic::error(DiagCode::SqlSyntax, "sql", message).with_span(span)
    ])
}

fn unsupported(message: impl Into<String>, span: Span) -> Error {
    Error::PlanRejected(vec![Diagnostic::error(
        DiagCode::SqlUnsupported,
        "sql",
        message,
    )
    .with_span(span)])
}

/// Parse one statement; trailing `;` is allowed, trailing garbage is not.
pub fn parse_statement(src: &str) -> Result<Stmt> {
    let mut p = Parser {
        src,
        toks: lex(src)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    p.eat_semi();
    let t = p.peek().clone();
    if t.kind != TokenKind::Eof {
        return Err(err(
            format!("expected end of statement, found {}", t.kind.describe()),
            t.span,
        ));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script into statements (empty statements skipped).
pub fn parse_script(src: &str) -> Result<Vec<Stmt>> {
    let mut p = Parser {
        src,
        toks: lex(src)?,
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.peek().kind == TokenKind::Semi {
            p.pos += 1;
        }
        if p.peek().kind == TokenKind::Eof {
            return Ok(out);
        }
        out.push(p.statement()?);
        let t = p.peek().clone();
        match t.kind {
            TokenKind::Semi | TokenKind::Eof => {}
            _ => {
                return Err(err(
                    format!(
                        "expected `;` between statements, found {}",
                        t.kind.describe()
                    ),
                    t.span,
                ))
            }
        }
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_semi(&mut self) {
        while self.peek().kind == TokenKind::Semi {
            self.pos += 1;
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span> {
        let t = self.peek().clone();
        if self.eat_kw(kw) {
            Ok(t.span)
        } else {
            Err(err(
                format!("expected `{kw}`, found {}", t.kind.describe()),
                t.span,
            ))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Span> {
        let t = self.peek().clone();
        if t.kind == kind {
            self.pos += 1;
            Ok(t.span)
        } else {
            Err(err(
                format!("expected {what}, found {}", t.kind.describe()),
                t.span,
            ))
        }
    }

    /// A non-reserved identifier.
    fn name(&mut self, what: &str) -> Result<Name> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Ident(s) if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                self.pos += 1;
                Ok(Name {
                    text: s.clone(),
                    span: t.span,
                })
            }
            _ => Err(err(
                format!("expected {what}, found {}", t.kind.describe()),
                t.span,
            )),
        }
    }

    /// `ident` or `table.ident`.
    fn column_name(&mut self) -> Result<ColumnName> {
        let first = self.name("a column name")?;
        if self.peek().kind == TokenKind::Dot {
            self.pos += 1;
            let column = self.name("a column name after `.`")?;
            Ok(ColumnName {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnName {
                table: None,
                column: first,
            })
        }
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        let t = self.peek().clone();
        if self.eat_kw("SELECT") {
            self.select(t.span).map(|s| Stmt::Select(Box::new(s)))
        } else if self.eat_kw("INSERT") {
            self.insert()
        } else if self.eat_kw("DELETE") {
            self.delete()
        } else if self.eat_kw("UPDATE") {
            self.update()
        } else {
            Err(err(
                format!(
                    "expected `SELECT`, `INSERT`, `DELETE`, or `UPDATE`, found {}",
                    t.kind.describe()
                ),
                t.span,
            ))
        }
    }

    fn select(&mut self, _kw: Span) -> Result<SelectStmt> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_comma() {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.name("a table name")?;

        let mut join = None;
        let outer = self.at_kw("LEFT");
        if outer || self.at_kw("JOIN") || self.at_kw("INNER") {
            if outer {
                self.pos += 1;
            } else {
                self.eat_kw("INNER");
            }
            self.expect_kw("JOIN")?;
            let table = self.name("a table name")?;
            self.expect_kw("ON")?;
            let left = self.column_name()?;
            self.expect(TokenKind::Eq, "`=` in the join condition")?;
            let right = self.column_name()?;
            join = Some(JoinClause {
                table,
                left,
                right,
                outer,
            });
        }

        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_name()?);
                if !self.eat_comma() {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.column_name()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { column, desc });
                if !self.eat_comma() {
                    break;
                }
            }
        }

        let limit = if self.at_kw("LIMIT") {
            let start = self.peek().span;
            self.pos += 1;
            let (k, mut end) = self.count("a LIMIT count")?;
            let offset = if self.at_kw("OFFSET") {
                self.pos += 1;
                let (o, oe) = self.count("an OFFSET count")?;
                end = oe;
                o
            } else {
                0
            };
            Some(LimitClause {
                k,
                offset,
                span: start.to(end),
            })
        } else {
            None
        };

        Ok(SelectStmt {
            items,
            from,
            join,
            selection,
            group_by,
            order_by,
            limit,
        })
    }

    fn count(&mut self, what: &str) -> Result<(u64, Span)> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) if v >= 0 => Ok((v as u64, t.span)),
            _ => Err(err(
                format!(
                    "expected {what} (a non-negative integer), found {}",
                    t.kind.describe()
                ),
                t.span,
            )),
        }
    }

    fn eat_comma(&mut self) -> bool {
        if self.peek().kind == TokenKind::Comma {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let t = self.peek().clone();
        if t.kind == TokenKind::Star {
            self.pos += 1;
            return Ok(SelectItem::Star(t.span));
        }
        if let TokenKind::Ident(word) = &t.kind {
            let func = match word.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggName::Count),
                "SUM" => Some(AggName::Sum),
                "AVG" => Some(AggName::Avg),
                "MIN" => Some(AggName::Min),
                "MAX" => Some(AggName::Max),
                _ => None,
            };
            if let Some(func) = func {
                self.pos += 1;
                self.expect(TokenKind::LParen, "`(` after the aggregate name")?;
                let arg = if self.peek().kind == TokenKind::Star {
                    let star = self.bump();
                    if func != AggName::Count {
                        return Err(err("only COUNT accepts `*`", star.span));
                    }
                    None
                } else {
                    Some(self.column_name()?)
                };
                let close = self.expect(TokenKind::RParen, "`)` closing the aggregate")?;
                return Ok(SelectItem::Agg(AggCall {
                    func,
                    arg,
                    span: t.span.to(close),
                }));
            }
        }
        Ok(SelectItem::Column(self.column_name()?))
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.name("a table name")?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(TokenKind::LParen, "`(` opening a VALUES row")?;
            let mut row = Vec::new();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    row.push(self.expr()?);
                    if !self.eat_comma() {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen, "`)` closing the VALUES row")?;
            rows.push(row);
            if !self.eat_comma() {
                break;
            }
        }
        Ok(Stmt::Insert { table, rows })
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.name("a table name")?;
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, selection })
    }

    fn update(&mut self) -> Result<Stmt> {
        let table = self.name("a table name")?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.name("a column name")?;
            self.expect(TokenKind::Eq, "`=` in the SET assignment")?;
            let value = self.expr()?;
            sets.push((col, value));
            if !self.eat_comma() {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            selection,
        })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let first = self.and_expr()?;
        if !self.at_kw("OR") {
            return Ok(first);
        }
        let mut span = first.span;
        let mut terms = vec![first];
        while self.eat_kw("OR") {
            let t = self.and_expr()?;
            span = span.to(t.span);
            terms.push(t);
        }
        Ok(SqlExpr {
            kind: SqlExprKind::Or(terms),
            span,
        })
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let first = self.not_expr()?;
        if !self.at_kw("AND") {
            return Ok(first);
        }
        let mut span = first.span;
        let mut terms = vec![first];
        while self.eat_kw("AND") {
            let t = self.not_expr()?;
            span = span.to(t.span);
            terms.push(t);
        }
        Ok(SqlExpr {
            kind: SqlExprKind::And(terms),
            span,
        })
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        let t = self.peek().clone();
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            let span = t.span.to(inner.span);
            Ok(SqlExpr {
                kind: SqlExprKind::Not(Box::new(inner)),
                span,
            })
        } else {
            self.cmp_expr()
        }
    }

    /// A comparison or one of the postfix predicates (`IS [NOT] NULL`,
    /// `[NOT] LIKE/IN/BETWEEN`).
    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let lhs = self.add_expr()?;
        let t = self.peek().clone();
        let cmp = match t.kind {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let rhs = self.add_expr()?;
            let span = lhs.span.to(rhs.span);
            return Ok(SqlExpr {
                kind: SqlExprKind::Cmp(op, Box::new(lhs), Box::new(rhs)),
                span,
            });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            let end = self.expect_kw("NULL")?;
            let span = lhs.span.to(end);
            let is_null = SqlExpr {
                kind: SqlExprKind::IsNull(Box::new(lhs)),
                span,
            };
            return Ok(if negated {
                SqlExpr {
                    kind: SqlExprKind::Not(Box::new(is_null)),
                    span,
                }
            } else {
                is_null
            });
        }
        let negated = self.at_kw("NOT")
            && matches!(
                self.toks.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Ident(s))
                    if s.eq_ignore_ascii_case("LIKE")
                        || s.eq_ignore_ascii_case("IN")
                        || s.eq_ignore_ascii_case("BETWEEN")
            );
        if negated {
            self.pos += 1;
        }
        let wrap = |e: SqlExpr| {
            if negated {
                let span = e.span;
                SqlExpr {
                    kind: SqlExprKind::Not(Box::new(e)),
                    span,
                }
            } else {
                e
            }
        };
        if self.eat_kw("LIKE") {
            let p = self.bump();
            let TokenKind::Str(pattern) = p.kind else {
                return Err(err(
                    format!(
                        "expected a string pattern after LIKE, found {}",
                        p.kind.describe()
                    ),
                    p.span,
                ));
            };
            let span = lhs.span.to(p.span);
            return Ok(wrap(SqlExpr {
                kind: SqlExprKind::Like(Box::new(lhs), pattern),
                span,
            }));
        }
        if self.eat_kw("IN") {
            self.expect(TokenKind::LParen, "`(` opening the IN list")?;
            let mut vals = Vec::new();
            loop {
                vals.push(self.literal("a literal inside IN (…)")?);
                if !self.eat_comma() {
                    break;
                }
            }
            let close = self.expect(TokenKind::RParen, "`)` closing the IN list")?;
            let span = lhs.span.to(close);
            return Ok(wrap(SqlExpr {
                kind: SqlExprKind::InList(Box::new(lhs), vals),
                span,
            }));
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let span = lhs.span.to(hi.span);
            return Ok(wrap(SqlExpr {
                kind: SqlExprKind::Between(Box::new(lhs), Box::new(lo), Box::new(hi)),
                span,
            }));
        }
        // `negated` cannot be set here: the lookahead above only consumed
        // the NOT when LIKE/IN/BETWEEN followed.
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = SqlExpr {
                kind: SqlExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = SqlExpr {
                kind: SqlExprKind::Arith(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        let t = self.peek().clone();
        if t.kind == TokenKind::Minus {
            self.pos += 1;
            // `-5` is the literal -5 (matching the expression DSL), not
            // Neg(5); `-x` over anything else stays a negation node.
            match self.peek().kind.clone() {
                TokenKind::Int(v) => {
                    let lit = self.bump();
                    return Ok(SqlExpr {
                        kind: SqlExprKind::Literal(Value::Int(-v)),
                        span: t.span.to(lit.span),
                    });
                }
                TokenKind::Float(v) => {
                    let lit = self.bump();
                    return Ok(SqlExpr {
                        kind: SqlExprKind::Literal(Value::Float(-v)),
                        span: t.span.to(lit.span),
                    });
                }
                _ => {
                    let inner = self.unary()?;
                    let span = t.span.to(inner.span);
                    return Ok(SqlExpr {
                        kind: SqlExprKind::Neg(Box::new(inner)),
                        span,
                    });
                }
            }
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::LParen => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                // Parentheses are transparent: the inner node keeps its own
                // span and structure (a parenthesized AND stays one term).
                Ok(inner)
            }
            TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
                self.pos += 1;
                let v = crate::token::literal_value(&t.kind).expect("literal token");
                Ok(SqlExpr {
                    kind: SqlExprKind::Literal(v),
                    span: t.span,
                })
            }
            TokenKind::Ident(word) => {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.pos += 1;
                        Ok(SqlExpr {
                            kind: SqlExprKind::Literal(Value::Null),
                            span: t.span,
                        })
                    }
                    "TRUE" | "FALSE" => {
                        self.pos += 1;
                        Ok(SqlExpr {
                            kind: SqlExprKind::Literal(Value::Bool(upper == "TRUE")),
                            span: t.span,
                        })
                    }
                    "IF" => self.func3(t.span),
                    "COALESCE" => self.coalesce(t.span),
                    "ABS" => self.abs(t.span),
                    "STARTSWITH" => self.starts_with(t.span),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => Err(unsupported(
                        format!("aggregate `{word}` is only allowed in the SELECT list"),
                        t.span,
                    )),
                    _ => Ok({
                        let col = self.column_name()?;
                        let span = col.span();
                        SqlExpr {
                            kind: SqlExprKind::Column(col),
                            span,
                        }
                    }),
                }
            }
            _ => Err(err(
                format!("expected an expression, found {}", t.kind.describe()),
                t.span,
            )),
        }
    }

    fn func3(&mut self, start: Span) -> Result<SqlExpr> {
        self.pos += 1;
        self.expect(TokenKind::LParen, "`(` after IF")?;
        let c = self.expr()?;
        self.expect(TokenKind::Comma, "`,`")?;
        let a = self.expr()?;
        self.expect(TokenKind::Comma, "`,`")?;
        let b = self.expr()?;
        let close = self.expect(TokenKind::RParen, "`)` closing IF")?;
        Ok(SqlExpr {
            kind: SqlExprKind::If(Box::new(c), Box::new(a), Box::new(b)),
            span: start.to(close),
        })
    }

    fn coalesce(&mut self, start: Span) -> Result<SqlExpr> {
        self.pos += 1;
        self.expect(TokenKind::LParen, "`(` after COALESCE")?;
        let mut xs = Vec::new();
        loop {
            xs.push(self.expr()?);
            if !self.eat_comma() {
                break;
            }
        }
        let close = self.expect(TokenKind::RParen, "`)` closing COALESCE")?;
        Ok(SqlExpr {
            kind: SqlExprKind::Coalesce(xs),
            span: start.to(close),
        })
    }

    fn abs(&mut self, start: Span) -> Result<SqlExpr> {
        self.pos += 1;
        self.expect(TokenKind::LParen, "`(` after ABS")?;
        let x = self.expr()?;
        let close = self.expect(TokenKind::RParen, "`)` closing ABS")?;
        Ok(SqlExpr {
            kind: SqlExprKind::Abs(Box::new(x)),
            span: start.to(close),
        })
    }

    fn starts_with(&mut self, start: Span) -> Result<SqlExpr> {
        self.pos += 1;
        self.expect(TokenKind::LParen, "`(` after STARTSWITH")?;
        let x = self.expr()?;
        self.expect(TokenKind::Comma, "`,`")?;
        let p = self.bump();
        let TokenKind::Str(prefix) = p.kind else {
            return Err(err(
                format!("expected a string prefix, found {}", p.kind.describe()),
                p.span,
            ));
        };
        let close = self.expect(TokenKind::RParen, "`)` closing STARTSWITH")?;
        Ok(SqlExpr {
            kind: SqlExprKind::StartsWith(Box::new(x), prefix),
            span: start.to(close),
        })
    }

    fn literal(&mut self, what: &str) -> Result<Value> {
        let t = self.bump();
        match &t.kind {
            TokenKind::Minus => {
                let n = self.bump();
                match n.kind {
                    TokenKind::Int(v) => Ok(Value::Int(-v)),
                    TokenKind::Float(v) => Ok(Value::Float(-v)),
                    other => Err(err(
                        format!("expected a number after `-`, found {}", other.describe()),
                        n.span,
                    )),
                }
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            kind => crate::token::literal_value(kind).ok_or_else(|| {
                err(
                    format!("expected {what}, found {}", kind.describe()),
                    t.span,
                )
            }),
        }
    }

    // Suppress the unused-field warning on `src`: kept so future
    // diagnostics can quote source slices without re-threading it.
    #[allow(dead_code)]
    fn source(&self) -> &str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse_statement(src).unwrap() {
            Stmt::Select(s) => *s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn select_star_with_where() {
        let s = sel("SELECT * FROM fact WHERE (a >= 5) AND (b < 3)");
        assert_eq!(s.from.text, "fact");
        assert!(matches!(s.items[0], SelectItem::Star(_)));
        let SqlExprKind::And(terms) = &s.selection.as_ref().unwrap().kind else {
            panic!("expected AND");
        };
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn parenthesized_and_stays_one_term() {
        let s = sel("SELECT * FROM t WHERE (w < 5) AND ((a >= 1) AND (b < 2))");
        let SqlExprKind::And(terms) = &s.selection.as_ref().unwrap().kind else {
            panic!("expected AND");
        };
        assert_eq!(terms.len(), 2, "the parenthesized AND is a single term");
        assert!(matches!(terms[1].kind, SqlExprKind::And(_)));
    }

    #[test]
    fn join_group_order_limit_offset() {
        let s = sel(
            "SELECT c, COUNT(*), SUM(weight) FROM dim LEFT JOIN fact ON id = b \
             GROUP BY c ORDER BY c DESC LIMIT 5 OFFSET 2",
        );
        let j = s.join.unwrap();
        assert!(j.outer);
        assert_eq!(j.table.text, "fact");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.order_by[0].desc);
        let l = s.limit.unwrap();
        assert_eq!((l.k, l.offset), (5, 2));
    }

    #[test]
    fn dml_statements_parse() {
        assert!(matches!(
            parse_statement("INSERT INTO t VALUES (1, 'x', NULL), (-2, 'y', 3.5)").unwrap(),
            Stmt::Insert { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a < 10").unwrap(),
            Stmt::Delete {
                selection: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET b = b + 1, c = 'z' WHERE a IS NOT NULL").unwrap(),
            Stmt::Update { sets, .. } if sets.len() == 2
        ));
    }

    #[test]
    fn every_rejection_has_a_span_inside_the_input() {
        for src in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE ()",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t GROUP",
            "FROBNICATE the lake",
            "SELECT a FROM t JOIN",
            "INSERT INTO t",
            "SELECT * FROM t WHERE a LIKE 5",
        ] {
            let Error::PlanRejected(diags) = parse_statement(src).unwrap_err() else {
                panic!("{src}: expected PlanRejected");
            };
            let span = diags[0].span.unwrap_or_else(|| panic!("{src}: no span"));
            assert!(span.start <= span.end && span.end <= src.len(), "{src}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_statement("SELECT * FROM t; SELECT * FROM t").is_err());
        assert_eq!(
            parse_script("SELECT * FROM t; SELECT * FROM t;")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn between_binds_tighter_than_and() {
        let s = sel("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b < 3");
        let SqlExprKind::And(terms) = &s.selection.as_ref().unwrap().kind else {
            panic!("expected top-level AND");
        };
        assert_eq!(terms.len(), 2);
        assert!(matches!(terms[0].kind, SqlExprKind::Between(..)));
    }
}
