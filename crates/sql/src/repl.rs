//! The `snowprune` REPL core: a line-oriented SQL loop over a
//! [`Session`].
//!
//! The loop itself is I/O-agnostic (`BufRead` in, `Write` out) so tests
//! and the CI smoke script drive it with in-memory buffers exactly the
//! way the binary drives it with stdin/stdout. Output is deterministic:
//! result rows, then a `--` stats line with the cache outcome and
//! partition pruning counters — never wall-clock times.

use std::io::{BufRead, Write};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snowprune_exec::Session;
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

use crate::render::render_error;
use crate::run::{SessionSqlExt, SqlOutcome};

/// REPL behaviour switches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplOptions {
    /// Print a `sql> ` prompt before each line (interactive use; off for
    /// piped scripts so output stays machine-checkable).
    pub prompt: bool,
}

/// A small deterministic demo lake: a clustered `fact` table (unique
/// ordered `a`, nullable `b`, categorical `c`) and a `dim` table joining
/// `dim.id = fact.b` — enough to demonstrate every pruning technique
/// from the REPL.
pub fn demo_catalog() -> Catalog {
    let mut rng = StdRng::seed_from_u64(0x5EED_DEC0);
    let fact_schema = Schema::new(vec![
        Field::new("a", ScalarType::Int),
        Field::new("b", ScalarType::Int),
        Field::new("c", ScalarType::Str),
    ]);
    let cats = ["red", "green", "blue", "teal"];
    let mut fact = TableBuilder::new("fact", fact_schema)
        .target_rows_per_partition(50)
        .layout(Layout::ClusterBy(vec!["a".into()]));
    for i in 0..1200i64 {
        let b = if rng.random::<f64>() < 0.05 {
            Value::Null
        } else {
            Value::Int(rng.random_range(0i64..60))
        };
        fact.push_row(vec![
            Value::Int(i),
            b,
            Value::Str(cats[rng.random_range(0usize..cats.len())].into()),
        ]);
    }
    let dim_schema = Schema::new(vec![
        Field::new("id", ScalarType::Int),
        Field::new("weight", ScalarType::Int),
    ]);
    let mut dim = TableBuilder::new("dim", dim_schema).target_rows_per_partition(16);
    for id in 0..60i64 {
        dim.push_row(vec![Value::Int(id), Value::Int(rng.random_range(0i64..50))]);
    }
    let catalog = Catalog::new();
    catalog.register(fact.build());
    catalog.register(dim.build());
    catalog
}

/// Run the REPL: one statement (or `.` command) per line until EOF or
/// `.quit`. Blank lines and `--` comment lines are skipped; errors are
/// rendered with `line:col` carets and do not end the loop.
pub fn run_repl(
    session: &Session,
    input: impl BufRead,
    out: &mut impl Write,
    opts: &ReplOptions,
) -> std::io::Result<()> {
    let mut lines = input.lines();
    loop {
        if opts.prompt {
            write!(out, "sql> ")?;
            out.flush()?;
        }
        let Some(line) = lines.next() else {
            return Ok(());
        };
        let line = line?;
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        if let Some(cmd) = stmt.strip_prefix('.') {
            if !dot_command(session, cmd.trim(), out)? {
                return Ok(());
            }
            continue;
        }
        match session.run_sql(stmt) {
            Ok(outcome) => print_outcome(&outcome, out)?,
            Err(e) => writeln!(out, "{}", render_error(stmt, &e))?,
        }
    }
}

/// Handle a `.command`; returns `false` when the loop should end.
fn dot_command(session: &Session, cmd: &str, out: &mut impl Write) -> std::io::Result<bool> {
    match cmd.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["quit"] | ["exit"] => return Ok(false),
        ["tables"] => {
            for name in session.catalog().table_names() {
                writeln!(out, "{name}")?;
            }
        }
        ["schema", table] => match session.catalog().get(table) {
            Ok(handle) => {
                for f in handle.read().schema().fields() {
                    writeln!(
                        out,
                        "{} {:?}{}",
                        f.name,
                        f.ty,
                        if f.nullable { "" } else { " NOT NULL" }
                    )?;
                }
            }
            Err(_) => writeln!(out, "error: no table `{table}`")?,
        },
        _ => writeln!(
            out,
            "error: unknown command `.{cmd}` (try .tables, .schema <t>, .quit)"
        )?,
    }
    Ok(true)
}

fn print_outcome(outcome: &SqlOutcome, out: &mut impl Write) -> std::io::Result<()> {
    match outcome {
        SqlOutcome::Dml {
            verb,
            table,
            rows_affected,
        } => writeln!(out, "-- {verb} {rows_affected} row(s) in {table}"),
        SqlOutcome::Rows(o) => {
            let names: Vec<&str> = o
                .rows
                .schema
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            writeln!(out, "{}", names.join(" | "))?;
            for row in &o.rows.rows {
                let vals: Vec<String> = row.iter().map(Value::to_string).collect();
                writeln!(out, "{}", vals.join(" | "))?;
            }
            let p = &o.report.pruning;
            writeln!(
                out,
                "-- {} row(s); cache={:?}; partitions {}/{}; pruned filter={} limit={} join={} topk={}",
                o.rows.rows.len(),
                o.report.cache,
                p.partitions_scanned,
                p.partitions_total,
                p.pruned_by_filter,
                p.pruned_by_limit,
                p.pruned_by_join,
                p.pruned_by_topk,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_exec::{ExecConfig, PredicateCacheMode};
    use std::io::Cursor;

    fn session(cache: bool) -> Session {
        let mut cfg = ExecConfig::default().with_scan_threads(2);
        if cache {
            cfg = cfg
                .with_predicate_cache(true)
                .with_predicate_cache_mode(PredicateCacheMode::Shape);
        }
        Session::new(demo_catalog(), cfg)
    }

    fn drive(session: &Session, script: &str) -> String {
        let mut out = Vec::new();
        run_repl(
            session,
            Cursor::new(script.as_bytes()),
            &mut out,
            &ReplOptions::default(),
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn select_prints_rows_and_a_stats_line() {
        let s = session(false);
        let out = drive(
            &s,
            "SELECT a, c FROM fact WHERE a < 3 ORDER BY a LIMIT 2;\n",
        );
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("a | c"));
        assert!(lines.next().unwrap().starts_with("0 | "));
        assert!(lines.next().unwrap().starts_with("1 | "));
        let stats = lines.next().unwrap();
        assert!(
            stats.starts_with("-- 2 row(s); cache=NotConsulted; partitions "),
            "{stats}"
        );
    }

    #[test]
    fn shape_cache_replay_reports_a_shape_hit() {
        let s = session(true);
        let out = drive(
            &s,
            "SELECT * FROM fact WHERE a >= 1100\nSELECT * FROM fact WHERE a >= 1150\n",
        );
        let stats: Vec<&str> = out.lines().filter(|l| l.starts_with("-- ")).collect();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].contains("cache=Miss"), "{}", stats[0]);
        assert!(stats[1].contains("cache=ShapeHit"), "{}", stats[1]);
    }

    #[test]
    fn errors_render_carets_and_do_not_end_the_loop() {
        let s = session(false);
        let out = drive(&s, "SELECT * FROM nope\n.tables\n");
        assert!(
            out.contains("error[unknown-table] at 1:15: no table `nope`"),
            "{out}"
        );
        assert!(out.contains("^^^^"), "{out}");
        // The loop kept going: .tables still ran.
        assert!(out.contains("dim\nfact\n"), "{out}");
    }

    #[test]
    fn dml_round_trip_updates_row_counts() {
        let s = session(false);
        let out = drive(
            &s,
            "INSERT INTO dim VALUES (777, 1), (778, 2)\n\
             SELECT * FROM dim WHERE id >= 777\n\
             DELETE FROM dim WHERE id >= 777\n\
             SELECT * FROM dim WHERE id >= 777\n",
        );
        assert!(out.contains("-- INSERT 2 row(s) in dim"), "{out}");
        assert!(out.contains("777 | 1"), "{out}");
        assert!(out.contains("-- DELETE 2 row(s) in dim"), "{out}");
        assert!(out.contains("-- 0 row(s);"), "{out}");
    }

    #[test]
    fn dot_schema_and_quit() {
        let s = session(false);
        let out = drive(&s, ".schema fact\n.quit\nSELECT * FROM fact\n");
        assert!(out.contains("a Int"), "{out}");
        // .quit ended the loop before the SELECT ran.
        assert!(!out.contains("row(s)"), "{out}");
    }
}
