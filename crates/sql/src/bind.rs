//! The binder: spanned AST → executable [`Statement`]s over the plan IR.
//!
//! Binding resolves every table against the [`Catalog`] and every column
//! against the statement's scope (one table, or two across a join), then
//! lowers SELECTs onto [`Plan`] via [`PlanBuilder`] and DML onto bound
//! predicate/assignment expressions. Lowered query plans keep their
//! column references **unbound** (`ColumnRef::UNRESOLVED`), exactly like
//! hand-built plans — the executor binds at admission — which is what
//! makes the SQL round-trip differential harness able to demand
//! structural plan equality.
//!
//! Every rejection is [`Error::PlanRejected`] with a spanned diagnostic;
//! after lowering, the statement is additionally vetted by the phase-0
//! static verifier (`snowprune-analyze`), whose findings get the
//! statement's source span attached so the REPL can render carets for
//! them too.

use snowprune_expr::{dsl, Expr};
use snowprune_plan::{AggFunc, JoinType, Plan, PlanBuilder, SortKey};
use snowprune_storage::{Catalog, Schema};
use snowprune_types::{DiagCode, Diagnostic, Error, Result, Span, Value};

use crate::ast::{
    AggCall, AggName, ColumnName, Name, SelectItem, SelectStmt, SqlExpr, SqlExprKind, Stmt,
};
use crate::parse::parse_statement;

/// A bound, executable statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// A SELECT lowered onto the plan IR (verified by the static analyzer).
    Query(Plan),
    /// `INSERT INTO table VALUES …` with literal rows evaluated.
    Insert {
        /// Target table name (resolved).
        table: String,
        /// Rows to append, one value per column.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM table [WHERE …]` with the predicate bound to the
    /// table schema (column indices resolved).
    Delete {
        /// Target table name (resolved).
        table: String,
        /// Bound predicate; `None` deletes every row.
        predicate: Option<Expr>,
    },
    /// `UPDATE table SET … [WHERE …]` with assignments and predicate
    /// bound to the table schema.
    Update {
        /// Target table name (resolved).
        table: String,
        /// `(column index, bound value expression)` per assignment;
        /// expressions are evaluated against the *old* row.
        sets: Vec<(usize, Expr)>,
        /// Bound predicate; `None` updates every row.
        predicate: Option<Expr>,
    },
}

fn reject(code: DiagCode, message: impl Into<String>, span: Span) -> Error {
    Error::PlanRejected(vec![Diagnostic::error(code, "sql", message).with_span(span)])
}

/// True when `err` is an ambiguous-column rejection (which must always
/// surface, even where an unknown name would fall back to another
/// resolution path).
fn is_ambiguous(err: &Error) -> bool {
    matches!(err, Error::PlanRejected(ds) if ds.iter().any(|d| d.code == DiagCode::AmbiguousColumn))
}

/// Parse and bind one statement against `catalog`.
pub fn bind_sql(src: &str, catalog: &Catalog) -> Result<Statement> {
    bind(&parse_statement(src)?, catalog)
}

/// Bind a parsed statement against `catalog`.
pub fn bind(stmt: &Stmt, catalog: &Catalog) -> Result<Statement> {
    match stmt {
        Stmt::Select(s) => bind_select(s, catalog).map(Statement::Query),
        Stmt::Insert { table, rows } => bind_insert(table, rows, catalog),
        Stmt::Delete { table, selection } => {
            let (name, schema) = lookup(table, catalog)?;
            let scope = Scope::single(&name, &schema);
            let predicate = selection
                .as_ref()
                .map(|e| scope.lower_bound(e, &schema))
                .transpose()?;
            Ok(Statement::Delete {
                table: name,
                predicate,
            })
        }
        Stmt::Update {
            table,
            sets,
            selection,
        } => {
            let (name, schema) = lookup(table, catalog)?;
            let scope = Scope::single(&name, &schema);
            let mut bound_sets = Vec::with_capacity(sets.len());
            for (col, e) in sets {
                let idx = schema.index_of(&col.text).map_err(|_| {
                    reject(
                        DiagCode::UnknownColumn,
                        format!("no column `{}` in table `{name}`", col.text),
                        col.span,
                    )
                })?;
                bound_sets.push((idx, scope.lower_bound(e, &schema)?));
            }
            let predicate = selection
                .as_ref()
                .map(|e| scope.lower_bound(e, &schema))
                .transpose()?;
            Ok(Statement::Update {
                table: name,
                sets: bound_sets,
                predicate,
            })
        }
    }
}

/// Resolve a table name in the catalog, returning its name and schema.
fn lookup(table: &Name, catalog: &Catalog) -> Result<(String, Schema)> {
    match catalog.get(&table.text) {
        Ok(handle) => {
            let schema = handle.read().schema().clone();
            Ok((table.text.clone(), schema))
        }
        Err(_) => Err(reject(
            DiagCode::UnknownTable,
            format!("no table `{}` in the catalog", table.text),
            table.span,
        )),
    }
}

fn bind_insert(table: &Name, rows: &[Vec<SqlExpr>], catalog: &Catalog) -> Result<Statement> {
    let (name, schema) = lookup(table, catalog)?;
    let scope = Scope::empty();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != schema.len() {
            let span = row
                .iter()
                .map(|e| e.span)
                .reduce(Span::to)
                .unwrap_or(table.span);
            return Err(reject(
                DiagCode::SqlSyntax,
                format!(
                    "table `{name}` has {} columns but the VALUES row has {}",
                    schema.len(),
                    row.len()
                ),
                span,
            ));
        }
        let mut vals = Vec::with_capacity(row.len());
        for e in row {
            let expr = scope.lower(e, &mut 0)?;
            vals.push(snowprune_expr::eval_value(&expr, &[]));
        }
        out.push(vals);
    }
    Ok(Statement::Insert {
        table: name,
        rows: out,
    })
}

/// Which side(s) of a (possibly joined) scope a lowered expression read.
const BUILD: u8 = 0b01;
const PROBE: u8 = 0b10;

/// Column resolution scope: the FROM table, optionally plus a joined one.
struct Scope<'a> {
    /// `(table name, schema)`; index 0 = build/FROM side, 1 = probe side.
    tables: Vec<(&'a str, &'a Schema)>,
}

impl<'a> Scope<'a> {
    fn empty() -> Self {
        Scope { tables: Vec::new() }
    }

    fn single(name: &'a str, schema: &'a Schema) -> Self {
        Scope {
            tables: vec![(name, schema)],
        }
    }

    fn joined(build: (&'a str, &'a Schema), probe: (&'a str, &'a Schema)) -> Self {
        Scope {
            tables: vec![build, probe],
        }
    }

    /// Resolve a (possibly qualified) column to `(side index, name)`.
    fn resolve(&self, c: &ColumnName) -> Result<(usize, String)> {
        if let Some(q) = &c.table {
            let side = self
                .tables
                .iter()
                .position(|(name, _)| *name == q.text)
                .ok_or_else(|| {
                    reject(
                        DiagCode::UnknownTable,
                        format!("`{}` is not a table in this statement", q.text),
                        q.span,
                    )
                })?;
            if !self.tables[side].1.contains(&c.column.text) {
                return Err(reject(
                    DiagCode::UnknownColumn,
                    format!("no column `{}` in table `{}`", c.column.text, q.text),
                    c.column.span,
                ));
            }
            return Ok((side, c.column.text.clone()));
        }
        let hits: Vec<usize> = self
            .tables
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.contains(&c.column.text))
            .map(|(i, _)| i)
            .collect();
        match hits.as_slice() {
            [side] => Ok((*side, c.column.text.clone())),
            [] => Err(reject(
                DiagCode::UnknownColumn,
                format!("no column `{}` in scope", c.column.text),
                c.column.span,
            )),
            _ => Err(reject(
                DiagCode::AmbiguousColumn,
                format!(
                    "column `{}` exists in both `{}` and `{}`; qualify it",
                    c.column.text, self.tables[0].0, self.tables[1].0
                ),
                c.column.span,
            )),
        }
    }

    /// The column's name in the join *output* schema: probe-side columns
    /// whose name collides with a build-side column get the `probe_`
    /// prefix (mirroring `Schema::join`).
    fn output_name(&self, side: usize, name: &str) -> String {
        if side == 1 && self.tables[0].1.contains(name) {
            format!("probe_{name}")
        } else {
            name.to_owned()
        }
    }

    /// Lower to an unbound [`Expr`] (scan-side names), OR-ing the sides
    /// each column resolved to into `sides`.
    fn lower(&self, e: &SqlExpr, sides: &mut u8) -> Result<Expr> {
        self.lower_with(e, sides, false)
    }

    /// Lower to an unbound [`Expr`] using join-output column names
    /// (for residual filters and sort keys sitting above the join).
    fn lower_output(&self, e: &SqlExpr, sides: &mut u8) -> Result<Expr> {
        self.lower_with(e, sides, true)
    }

    /// Lower and bind against `schema` (for DML evaluation).
    fn lower_bound(&self, e: &SqlExpr, schema: &Schema) -> Result<Expr> {
        self.lower(e, &mut 0)?.bind(schema)
    }

    fn lower_with(&self, e: &SqlExpr, sides: &mut u8, output_names: bool) -> Result<Expr> {
        let mut lo = |x: &SqlExpr| self.lower_with(x, sides, output_names);
        Ok(match &e.kind {
            SqlExprKind::Literal(v) => Expr::Literal(v.clone()),
            SqlExprKind::Column(c) => {
                let (side, name) = self.resolve(c)?;
                *sides |= if side == 0 { BUILD } else { PROBE };
                let name = if output_names {
                    self.output_name(side, &name)
                } else {
                    name
                };
                dsl::col(name)
            }
            SqlExprKind::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(lo(a)?), Box::new(lo(b)?)),
            SqlExprKind::And(xs) => Expr::And(xs.iter().map(&mut lo).collect::<Result<Vec<_>>>()?),
            SqlExprKind::Or(xs) => Expr::Or(xs.iter().map(&mut lo).collect::<Result<Vec<_>>>()?),
            SqlExprKind::Not(x) => Expr::Not(Box::new(lo(x)?)),
            SqlExprKind::IsNull(x) => Expr::IsNull(Box::new(lo(x)?)),
            SqlExprKind::Arith(op, a, b) => Expr::Arith(*op, Box::new(lo(a)?), Box::new(lo(b)?)),
            SqlExprKind::Neg(x) => Expr::Neg(Box::new(lo(x)?)),
            SqlExprKind::If(c, t, f) => {
                Expr::If(Box::new(lo(c)?), Box::new(lo(t)?), Box::new(lo(f)?))
            }
            SqlExprKind::Like(x, p) => Expr::Like(Box::new(lo(x)?), p.clone()),
            SqlExprKind::StartsWith(x, p) => Expr::StartsWith(Box::new(lo(x)?), p.clone()),
            SqlExprKind::InList(x, vs) => Expr::InList(Box::new(lo(x)?), vs.clone()),
            SqlExprKind::Coalesce(xs) => {
                Expr::Coalesce(xs.iter().map(&mut lo).collect::<Result<Vec<_>>>()?)
            }
            SqlExprKind::Abs(x) => Expr::Abs(Box::new(lo(x)?)),
            // `x BETWEEN lo AND hi` lowers exactly like the DSL's
            // `.between()`: `And([x >= lo, x <= hi])`.
            SqlExprKind::Between(x, a, b) => {
                let xe = lo(x)?;
                Expr::And(vec![
                    Expr::Cmp(
                        snowprune_expr::CmpOp::Ge,
                        Box::new(xe.clone()),
                        Box::new(lo(a)?),
                    ),
                    Expr::Cmp(snowprune_expr::CmpOp::Le, Box::new(xe), Box::new(lo(b)?)),
                ])
            }
        })
    }
}

fn lower_agg(scope: &Scope<'_>, call: &AggCall) -> Result<AggFunc> {
    let arg_name = match &call.arg {
        None => {
            return Ok(AggFunc::CountStar);
        }
        Some(c) => {
            let (side, name) = scope.resolve(c)?;
            scope.output_name(side, &name)
        }
    };
    Ok(match call.func {
        AggName::Count => AggFunc::Count(arg_name),
        AggName::Sum => AggFunc::Sum(arg_name),
        AggName::Avg => AggFunc::Avg(arg_name),
        AggName::Min => AggFunc::Min(arg_name),
        AggName::Max => AggFunc::Max(arg_name),
    })
}

fn bind_select(s: &SelectStmt, catalog: &Catalog) -> Result<Plan> {
    let (from_name, from_schema) = lookup(&s.from, catalog)?;

    // The span the verifier's (span-free) findings get attached to.
    let stmt_span = s.selection.as_ref().map(|e| e.span).unwrap_or(s.from.span);

    let plan = if let Some(j) = &s.join {
        let (probe_name, probe_schema) = lookup(&j.table, catalog)?;
        if probe_name == from_name {
            return Err(reject(
                DiagCode::SqlUnsupported,
                format!("self-join of `{from_name}` is not supported"),
                j.table.span,
            ));
        }
        let scope = Scope::joined((&from_name, &from_schema), (&probe_name, &probe_schema));

        // ON a = b: one side must come from each table.
        let (lside, lname) = scope.resolve(&j.left)?;
        let (rside, rname) = scope.resolve(&j.right)?;
        let (build_key, probe_key) = match (lside, rside) {
            (0, 1) => (lname, rname),
            (1, 0) => (rname, lname),
            _ => {
                return Err(reject(
                    DiagCode::SqlUnsupported,
                    "the join condition must compare one column from each table",
                    j.left.span().to(j.right.span()),
                ))
            }
        };

        // Route WHERE conjuncts: all-build → build scan, all-probe →
        // probe scan (both before the join, enabling pruning), mixed →
        // residual filter above the join. Build-side pushdown is valid
        // for both join types (LEFT JOIN preserves build rows, whose
        // columns are never null-extended, so filtering them commutes
        // with the join); probe-side pushdown is valid only for inner
        // joins — standard SQL applies WHERE *after* null-extension, so
        // under LEFT JOIN a probe-side predicate is UNKNOWN on every
        // unmatched (null-padded) build row and must drop it, which only
        // the residual filter above the join does.
        let mut build_filters = Vec::new();
        let mut probe_filters = Vec::new();
        let mut residual = Vec::new();
        if let Some(sel) = &s.selection {
            let conjuncts: Vec<&SqlExpr> = match &sel.kind {
                SqlExprKind::And(xs) => xs.iter().collect(),
                _ => vec![sel],
            };
            for c in conjuncts {
                let mut sides = 0u8;
                let lowered = scope.lower(c, &mut sides)?;
                match sides {
                    PROBE if !j.outer => probe_filters.push(lowered),
                    s if s & PROBE == 0 => build_filters.push(lowered),
                    _ => {
                        let mut again = 0u8;
                        residual.push(scope.lower_output(c, &mut again)?);
                    }
                }
            }
        }

        let mut build_side = PlanBuilder::scan(&from_name, from_schema.clone());
        for f in build_filters {
            build_side = build_side.filter(f);
        }
        let mut probe_side = PlanBuilder::scan(&probe_name, probe_schema.clone());
        for f in probe_filters {
            probe_side = probe_side.filter(f);
        }
        let join_type = if j.outer {
            JoinType::OuterPreserveBuild
        } else {
            JoinType::Inner
        };
        let mut b = build_side.join(probe_side, &build_key, &probe_key, join_type);
        for f in residual {
            b = b.filter(f);
        }
        finish_select(s, &scope, b, stmt_span)
    } else {
        let scope = Scope::single(&from_name, &from_schema);
        let mut b = PlanBuilder::scan(&from_name, from_schema.clone());
        if let Some(sel) = &s.selection {
            // The whole predicate goes to one `.filter()` call so the
            // lowered scan predicate is structurally identical to a
            // hand-built one.
            b = b.filter(scope.lower(sel, &mut 0)?);
        }
        finish_select(s, &scope, b, stmt_span)
    }?
    .build();

    // Phase-0 static verification; attach the statement's span so the
    // REPL can point a caret even at plan-level findings.
    match snowprune_analyze::verify(&plan) {
        Ok(_) => Ok(plan),
        Err(Error::PlanRejected(diags)) => Err(Error::PlanRejected(
            diags
                .into_iter()
                .map(|d| match d.span {
                    Some(_) => d,
                    None => d.with_span(stmt_span),
                })
                .collect(),
        )),
        Err(other) => Err(other),
    }
}

/// Apply SELECT list / GROUP BY / ORDER BY / LIMIT on top of the bound
/// FROM(+JOIN+WHERE) input.
fn finish_select(
    s: &SelectStmt,
    scope: &Scope<'_>,
    mut b: PlanBuilder,
    stmt_span: Span,
) -> Result<PlanBuilder> {
    let has_aggs = s.items.iter().any(|i| matches!(i, SelectItem::Agg(_)));

    if has_aggs {
        // Group keys in clause order; aggregates in SELECT order.
        let mut group_by = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            let (side, name) = scope.resolve(g)?;
            group_by.push(scope.output_name(side, &name));
        }
        let mut aggs = Vec::new();
        let mut bare = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Agg(call) => aggs.push(lower_agg(scope, call)?),
                SelectItem::Column(c) => {
                    let (side, name) = scope.resolve(c)?;
                    let out = scope.output_name(side, &name);
                    if !group_by.contains(&out) {
                        return Err(reject(
                            DiagCode::SqlUnsupported,
                            format!("column `{out}` must appear in GROUP BY"),
                            c.span(),
                        ));
                    }
                    bare.push((out, c.span()));
                }
                SelectItem::Star(span) => {
                    return Err(reject(
                        DiagCode::SqlUnsupported,
                        "`*` cannot be mixed with aggregates in the SELECT list",
                        *span,
                    ))
                }
            }
        }
        // The Aggregate node always emits [keys..., aggs...]; only add a
        // Project when the SELECT list deviates from that order.
        let natural: Vec<String> = group_by
            .iter()
            .cloned()
            .chain(aggs.iter().map(AggFunc::output_name))
            .collect();
        let written: Vec<String> = s
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Column(c) => {
                    let (side, name) = scope.resolve(c).expect("resolved above");
                    scope.output_name(side, &name)
                }
                SelectItem::Agg(call) => {
                    lower_agg(scope, call).expect("lowered above").output_name()
                }
                SelectItem::Star(_) => unreachable!("rejected above"),
            })
            .collect();
        b = b.aggregate(group_by.iter().map(String::as_str).collect(), aggs);
        if written != natural {
            b = b.project(written.iter().map(String::as_str).collect());
        }
    } else {
        if !s.group_by.is_empty() {
            return Err(reject(
                DiagCode::SqlUnsupported,
                "GROUP BY requires at least one aggregate in the SELECT list",
                s.group_by[0].span(),
            ));
        }
        let star = s.items.iter().find_map(|i| match i {
            SelectItem::Star(sp) => Some(*sp),
            _ => None,
        });
        match star {
            Some(span) if s.items.len() > 1 => {
                return Err(reject(
                    DiagCode::SqlUnsupported,
                    "`*` cannot be combined with other SELECT items",
                    span,
                ))
            }
            Some(_) => {} // SELECT * — no projection node.
            None => {
                let mut cols = Vec::with_capacity(s.items.len());
                for item in &s.items {
                    let SelectItem::Column(c) = item else {
                        unreachable!("aggregates handled above");
                    };
                    let (side, name) = scope.resolve(c)?;
                    cols.push(scope.output_name(side, &name));
                }
                b = b.project(cols.iter().map(String::as_str).collect());
            }
        }
    }

    if !s.order_by.is_empty() {
        // Sort keys must name columns of the current output schema.
        let schema = b.peek().schema().map_err(|e| match e {
            Error::UnknownColumn(c) => reject(
                DiagCode::UnknownColumn,
                format!("no column `{c}` in the SELECT output"),
                stmt_span,
            ),
            other => other,
        })?;
        let mut keys = Vec::with_capacity(s.order_by.len());
        for o in &s.order_by {
            // Sort keys resolve through the scope like every other
            // reference, so an unqualified name both tables export is
            // rejected as ambiguous here too. Names the scope does not
            // know may still be output-schema columns the scope cannot
            // see (aggregate outputs like `count` or `sum_b`), so an
            // unqualified UnknownColumn falls through to the
            // output-schema check below.
            let name = match scope.resolve(&o.column) {
                Ok((side, name)) => scope.output_name(side, &name),
                Err(e) if o.column.table.is_some() || is_ambiguous(&e) => return Err(e),
                Err(_) => o.column.column.text.clone(),
            };
            if !schema.contains(&name) {
                return Err(reject(
                    DiagCode::UnknownColumn,
                    format!("no column `{name}` in the SELECT output to order by"),
                    o.column.span(),
                ));
            }
            keys.push(SortKey {
                expr: dsl::col(&name),
                desc: o.desc,
            });
        }
        b = b.sort(keys);
    }

    if let Some(l) = &s.limit {
        b = if l.offset > 0 {
            b.limit_offset(l.k, l.offset)
        } else {
            b.limit(l.k)
        };
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_exec::{ExecConfig, Session};
    use snowprune_plan::pretty;
    use snowprune_storage::{Field, TableBuilder};
    use snowprune_types::ScalarType;

    /// `dim(id, weight)` with an unmatched row, `fact(a, b)` joining on
    /// `b = id` — small enough to assert exact LEFT JOIN results.
    fn join_catalog() -> Catalog {
        let dim_schema = Schema::new(vec![
            Field::new("id", ScalarType::Int),
            Field::new("weight", ScalarType::Int),
        ]);
        let mut dim = TableBuilder::new("dim", dim_schema);
        dim.push_row(vec![Value::Int(1), Value::Int(10)]);
        dim.push_row(vec![Value::Int(2), Value::Int(20)]);
        dim.push_row(vec![Value::Int(3), Value::Int(30)]);
        let fact_schema = Schema::new(vec![
            Field::new("a", ScalarType::Int),
            Field::new("b", ScalarType::Int),
        ]);
        let mut fact = TableBuilder::new("fact", fact_schema);
        fact.push_row(vec![Value::Int(100), Value::Int(1)]);
        fact.push_row(vec![Value::Int(200), Value::Int(1)]);
        let catalog = Catalog::new();
        catalog.register(dim.build());
        catalog.register(fact.build());
        catalog
    }

    /// Both tables export `x`, so unqualified references are ambiguous.
    fn shared_column_catalog() -> Catalog {
        let left = Schema::new(vec![
            Field::new("k", ScalarType::Int),
            Field::new("x", ScalarType::Int),
        ]);
        let right = Schema::new(vec![
            Field::new("fk", ScalarType::Int),
            Field::new("x", ScalarType::Int),
        ]);
        let mut l = TableBuilder::new("l", left);
        l.push_row(vec![Value::Int(1), Value::Int(10)]);
        let mut r = TableBuilder::new("r", right);
        r.push_row(vec![Value::Int(1), Value::Int(99)]);
        let catalog = Catalog::new();
        catalog.register(l.build());
        catalog.register(r.build());
        catalog
    }

    fn lowered(sql: &str, catalog: &Catalog) -> Plan {
        match bind_sql(sql, catalog).expect(sql) {
            Statement::Query(p) => p,
            other => panic!("{sql}: bound to {other:?}"),
        }
    }

    #[test]
    fn left_join_keeps_probe_conjuncts_above_the_join() {
        let catalog = join_catalog();
        // Inner join: the probe-only conjunct pushes into the probe scan.
        assert_eq!(
            pretty(&lowered(
                "SELECT * FROM dim JOIN fact ON id = b WHERE a >= 150",
                &catalog
            )),
            "Join Inner [id = b]\n  \
             Scan dim(id, weight)\n  \
             Scan fact(a, b) [(a >= 150)]\n"
        );
        // LEFT JOIN: the same conjunct must stay above the join (WHERE
        // applies after null-extension), while a build-only conjunct may
        // still push into the build scan.
        assert_eq!(
            pretty(&lowered(
                "SELECT * FROM dim LEFT JOIN fact ON id = b WHERE a >= 150 AND weight <= 20",
                &catalog
            )),
            "Filter [(a >= 150)]\n  \
             Join OuterPreserveBuild [id = b]\n    \
             Scan dim(id, weight) [(weight <= 20)]\n    \
             Scan fact(a, b)\n"
        );
    }

    #[test]
    fn left_join_where_drops_unmatched_build_rows() {
        let catalog = join_catalog();
        let session = Session::new(catalog.clone(), ExecConfig::default());
        let run = |sql: &str| {
            let mut rows = session.run(&lowered(sql, &catalog)).expect(sql).rows.rows;
            rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            rows
        };
        // Without WHERE, dim ids 2 and 3 survive null-padded.
        assert_eq!(run("SELECT * FROM dim LEFT JOIN fact ON id = b").len(), 4);
        // WHERE on a probe column is UNKNOWN on the null-padded rows and
        // must drop them — standard SQL, not pre-join probe filtering
        // (which would keep ids 2 and 3 null-padded).
        assert_eq!(
            run("SELECT * FROM dim LEFT JOIN fact ON id = b WHERE a >= 150"),
            vec![vec![
                Value::Int(1),
                Value::Int(10),
                Value::Int(200),
                Value::Int(1)
            ]]
        );
    }

    #[test]
    fn order_by_rejects_ambiguous_unqualified_columns() {
        let catalog = shared_column_catalog();
        let err = bind_sql("SELECT * FROM l JOIN r ON k = fk ORDER BY x", &catalog)
            .expect_err("ambiguous ORDER BY must be rejected");
        assert!(is_ambiguous(&err), "got {err}");
        // Qualifying the column resolves it: the probe side's collided
        // name sorts under its join-output name `probe_x`.
        let plan = lowered("SELECT * FROM l JOIN r ON k = fk ORDER BY r.x", &catalog);
        assert!(
            pretty(&plan).contains("Sort [probe_x ASC]"),
            "{}",
            pretty(&plan)
        );
    }
}
