//! Executing bound statements on a [`Session`].
//!
//! The SQL crate sits *above* the executor, so the "run SQL on a
//! session" entry point is an extension trait rather than an inherent
//! method: `use snowprune_sql::SessionSqlExt` and call
//! `session.run_sql("SELECT …")`.

use snowprune_exec::{QueryOutput, Session};
use snowprune_expr::{eval_predicate, eval_value, Expr};
use snowprune_types::{Result, Value};

use crate::bind::{bind_sql, Statement};

/// What running one SQL statement produced.
#[derive(Clone, Debug)]
pub enum SqlOutcome {
    /// A SELECT: result rows plus the executor's pruning/cache report.
    Rows(Box<QueryOutput>),
    /// A DML statement: what it did, to how many rows.
    Dml {
        /// The SQL verb (`INSERT`, `DELETE`, `UPDATE`).
        verb: &'static str,
        /// Target table.
        table: String,
        /// Rows inserted/deleted/updated.
        rows_affected: u64,
    },
}

/// SQL entry point for [`Session`]: parse, bind against the session's
/// catalog, verify, and execute.
pub trait SessionSqlExt {
    /// Run one SQL statement. SELECTs execute on the session's shared
    /// morsel pool and predicate cache; DML goes through the session's
    /// cache-consistent DML wrappers.
    fn run_sql(&self, sql: &str) -> Result<SqlOutcome>;
}

fn row_qualifies(predicate: &Option<Expr>, row: &[Value]) -> bool {
    match predicate {
        None => true,
        Some(p) => eval_predicate(p, row).qualifies(),
    }
}

impl SessionSqlExt for Session {
    fn run_sql(&self, sql: &str) -> Result<SqlOutcome> {
        match bind_sql(sql, self.catalog())? {
            Statement::Query(plan) => self.run(&plan).map(|o| SqlOutcome::Rows(Box::new(o))),
            Statement::Insert { table, rows } => {
                let affected = rows.len() as u64;
                self.insert_rows(&table, rows)?;
                Ok(SqlOutcome::Dml {
                    verb: "INSERT",
                    table,
                    rows_affected: affected,
                })
            }
            Statement::Delete { table, predicate } => {
                let res = self.delete_rows(&table, |row| row_qualifies(&predicate, row))?;
                Ok(SqlOutcome::Dml {
                    verb: "DELETE",
                    table,
                    rows_affected: res.rows_affected,
                })
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let res = self.update_rows(&table, |row| {
                    if !row_qualifies(&predicate, row) {
                        return row.to_vec();
                    }
                    let mut out = row.to_vec();
                    // Assignments all read the *old* row, SQL-style.
                    for (idx, e) in &sets {
                        out[*idx] = eval_value(e, row);
                    }
                    out
                })?;
                Ok(SqlOutcome::Dml {
                    verb: "UPDATE",
                    table,
                    rows_affected: res.rows_affected,
                })
            }
        }
    }
}
