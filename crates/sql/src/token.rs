//! The hand-rolled lexer: SQL text → spanned tokens.
//!
//! Tokens carry byte [`Span`]s into the original statement so every
//! parse/bind diagnostic downstream can render a `line:col` caret. The
//! lexer itself never panics: malformed input (unterminated strings,
//! out-of-range numbers, stray bytes) becomes an error diagnostic with a
//! span inside the input.

use snowprune_types::{DiagCode, Diagnostic, Error, Result, Span, Value};

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where in the source it sits.
    pub span: Span,
}

/// The token classes the parser consumes.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal with `''` escapes already folded.
    Str(String),
    /// `=`
    Eq,
    /// `<>` (also lexed from `!=`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// End of input (zero-width span at the end).
    Eof,
}

impl TokenKind {
    /// Human-readable description used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("number `{v}`"),
            TokenKind::Str(_) => "string literal".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

fn syntax_error(message: impl Into<String>, span: Span) -> Error {
    Error::PlanRejected(vec![
        Diagnostic::error(DiagCode::SqlSyntax, "sql", message).with_span(span)
    ])
}

/// Lex the whole statement. The returned stream always ends with one
/// [`TokenKind::Eof`] token whose span points just past the input.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            // `-- line comment`
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let (s, end) = lex_string(src, i)?;
                out.push(Token {
                    kind: TokenKind::Str(s),
                    span: Span::new(start, end),
                });
                i = end;
            }
            b'0'..=b'9' => {
                let (kind, end) = lex_number(src, i)?;
                out.push(Token {
                    kind,
                    span: Span::new(start, end),
                });
                i = end;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[i..end].to_owned()),
                    span: Span::new(start, end),
                });
                i = end;
            }
            _ => {
                let (kind, len) = match (b, bytes.get(i + 1)) {
                    (b'<', Some(b'=')) => (TokenKind::Le, 2),
                    (b'<', Some(b'>')) => (TokenKind::Ne, 2),
                    (b'>', Some(b'=')) => (TokenKind::Ge, 2),
                    (b'!', Some(b'=')) => (TokenKind::Ne, 2),
                    (b'<', _) => (TokenKind::Lt, 1),
                    (b'>', _) => (TokenKind::Gt, 1),
                    (b'=', _) => (TokenKind::Eq, 1),
                    (b'+', _) => (TokenKind::Plus, 1),
                    (b'-', _) => (TokenKind::Minus, 1),
                    (b'*', _) => (TokenKind::Star, 1),
                    (b'/', _) => (TokenKind::Slash, 1),
                    (b'(', _) => (TokenKind::LParen, 1),
                    (b')', _) => (TokenKind::RParen, 1),
                    (b',', _) => (TokenKind::Comma, 1),
                    (b';', _) => (TokenKind::Semi, 1),
                    (b'.', _) => (TokenKind::Dot, 1),
                    _ => {
                        // Step over one whole UTF-8 scalar so the span stays
                        // on a char boundary for non-ASCII soup.
                        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                        return Err(syntax_error(
                            format!("unexpected character {:?}", &src[i..i + ch_len]),
                            Span::new(i, i + ch_len),
                        ));
                    }
                };
                out.push(Token {
                    kind,
                    span: Span::new(start, start + len),
                });
                i += len;
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(src.len()),
    });
    Ok(out)
}

/// Lex a `'...'` literal starting at `start`, folding `''` escapes.
fn lex_string(src: &str, start: usize) -> Result<(String, usize)> {
    let bytes = src.as_bytes();
    let mut s = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            None => {
                return Err(syntax_error(
                    "unterminated string literal",
                    Span::new(start, src.len()),
                ))
            }
            Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                s.push('\'');
                i += 2;
            }
            Some(b'\'') => return Ok((s, i + 1)),
            Some(_) => {
                let ch = src[i..].chars().next().unwrap_or('\u{FFFD}');
                s.push(ch);
                i += ch.len_utf8();
            }
        }
    }
}

/// Lex an unsigned numeric literal (`123`, `1.5`); the parser folds a
/// preceding unary minus into the literal.
fn lex_number(src: &str, start: usize) -> Result<(TokenKind, usize)> {
    let bytes = src.as_bytes();
    let mut end = start;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    let mut is_float = false;
    if end < bytes.len() && bytes[end] == b'.' && bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
    {
        is_float = true;
        end += 1;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
    }
    let text = &src[start..end];
    let span = Span::new(start, end);
    if is_float {
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok((TokenKind::Float(v), end)),
            _ => Err(syntax_error(format!("invalid number `{text}`"), span)),
        }
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((TokenKind::Int(v), end)),
            Err(_) => Err(syntax_error(format!("integer `{text}` out of range"), span)),
        }
    }
}

/// The literal [`Value`] of a numeric/string token, if it is one.
pub fn literal_value(kind: &TokenKind) -> Option<Value> {
    match kind {
        TokenKind::Int(v) => Some(Value::Int(*v)),
        TokenKind::Float(v) => Some(Value::Float(*v)),
        TokenKind::Str(s) => Some(Value::Str(s.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn spans_cover_their_lexemes() {
        let toks = lex("SELECT a, 'x''y' FROM t -- tail\n<= 1.5").unwrap();
        let src = "SELECT a, 'x''y' FROM t -- tail\n<= 1.5";
        assert_eq!(&src[toks[0].span.start..toks[0].span.end], "SELECT");
        assert_eq!(toks[3].kind, TokenKind::Str("x'y".into()));
        assert_eq!(&src[toks[3].span.start..toks[3].span.end], "'x''y'");
        assert_eq!(toks[6].kind, TokenKind::Le);
        assert_eq!(toks[7].kind, TokenKind::Float(1.5));
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
        assert_eq!(toks.last().unwrap().span, Span::point(src.len()));
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * / ( ) , ; ."),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_spans_inside_the_input() {
        for src in ["SELECT 'open", "SELECT 99999999999999999999", "SELECT @"] {
            let err = lex(src).unwrap_err();
            let Error::PlanRejected(diags) = err else {
                panic!("expected PlanRejected");
            };
            let span = diags[0].span.expect("lex errors carry spans");
            assert!(span.start < src.len(), "{src}: {span:?}");
            assert!(span.end <= src.len(), "{src}: {span:?}");
        }
    }

    #[test]
    fn comment_runs_to_end_of_line() {
        assert_eq!(
            kinds("a -- b c d\n- 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }
}
