//! The spanned SQL syntax tree the parser produces and the binder
//! consumes.
//!
//! Every name and expression carries its source [`Span`] so bind errors
//! (unknown column, ambiguous reference, bad aggregate input) can point a
//! caret at the offending characters — the plan IR itself stays
//! span-free.

use snowprune_types::{Span, Value};

/// A name (table, column, function argument) with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Name {
    /// The identifier as written.
    pub text: String,
    /// Where it was written.
    pub span: Span,
}

/// A possibly table-qualified column reference (`b` or `fact.b`).
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnName {
    /// Qualifying table name, when written.
    pub table: Option<Name>,
    /// The column identifier.
    pub column: Name,
}

impl ColumnName {
    /// Span covering the whole (possibly qualified) reference.
    pub fn span(&self) -> Span {
        match &self.table {
            Some(t) => t.span.to(self.column.span),
            None => self.column.span,
        }
    }
}

/// A scalar expression with source spans on every node.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlExpr {
    /// The node itself.
    pub kind: SqlExprKind,
    /// Source coverage of the node (operands included).
    pub span: Span,
}

/// Comparison operators, mirroring `snowprune_expr::CmpOp`.
pub use snowprune_expr::{ArithOp, CmpOp};

/// Expression node kinds; a spanned mirror of `snowprune_expr::Expr`.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExprKind {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(ColumnName),
    /// Binary comparison.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// N-ary AND, flattened per syntactic level (parentheses keep nesting).
    And(Vec<SqlExpr>),
    /// N-ary OR, flattened per syntactic level.
    Or(Vec<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS NULL`.
    IsNull(Box<SqlExpr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Unary minus over a non-literal operand.
    Neg(Box<SqlExpr>),
    /// `IF(cond, then, else)`.
    If(Box<SqlExpr>, Box<SqlExpr>, Box<SqlExpr>),
    /// `expr LIKE 'pattern'`.
    Like(Box<SqlExpr>, String),
    /// `STARTSWITH(expr, 'prefix')`.
    StartsWith(Box<SqlExpr>, String),
    /// `expr IN (v1, v2, …)` over literal values.
    InList(Box<SqlExpr>, Vec<Value>),
    /// `COALESCE(e1, e2, …)`.
    Coalesce(Vec<SqlExpr>),
    /// `ABS(expr)`.
    Abs(Box<SqlExpr>),
    /// `expr BETWEEN lo AND hi`; lowers to `expr >= lo AND expr <= hi`.
    Between(Box<SqlExpr>, Box<SqlExpr>, Box<SqlExpr>),
}

/// One item of a SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` — every input column.
    Star(Span),
    /// A bare (possibly qualified) column.
    Column(ColumnName),
    /// An aggregate call (`COUNT(*)`, `SUM(b)`, …).
    Agg(AggCall),
}

/// Aggregate function names the grammar accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggName {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

/// A parsed aggregate call.
#[derive(Clone, Debug, PartialEq)]
pub struct AggCall {
    /// Which function.
    pub func: AggName,
    /// The argument column; `None` for `COUNT(*)`.
    pub arg: Option<ColumnName>,
    /// Span of the whole call.
    pub span: Span,
}

/// `JOIN table ON left = right` (optionally `LEFT JOIN`).
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// The joined (probe-side) table.
    pub table: Name,
    /// Left side of the ON equality.
    pub left: ColumnName,
    /// Right side of the ON equality.
    pub right: ColumnName,
    /// True for `LEFT JOIN` (outer join preserving the FROM side).
    pub outer: bool,
}

/// One `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    /// The ordering column.
    pub column: ColumnName,
    /// `DESC` when true.
    pub desc: bool,
}

/// A parsed `SELECT` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// The FROM table.
    pub from: Name,
    /// Optional single equi-join.
    pub join: Option<JoinClause>,
    /// Optional WHERE predicate.
    pub selection: Option<SqlExpr>,
    /// GROUP BY columns (empty when absent).
    pub group_by: Vec<ColumnName>,
    /// ORDER BY keys (empty when absent).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT k [OFFSET o]`, with the span of the LIMIT clause.
    pub limit: Option<LimitClause>,
}

/// `LIMIT k [OFFSET o]`.
#[derive(Clone, Debug, PartialEq)]
pub struct LimitClause {
    /// Row cap.
    pub k: u64,
    /// Rows skipped before emitting.
    pub offset: u64,
    /// Span of the clause (for diagnostics).
    pub span: Span,
}

/// A parsed statement of any kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `SELECT …`.
    Select(Box<SelectStmt>),
    /// `INSERT INTO t VALUES (…), (…)`.
    Insert {
        /// Target table.
        table: Name,
        /// Literal rows to append.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `DELETE FROM t [WHERE …]`.
    Delete {
        /// Target table.
        table: Name,
        /// Optional predicate; absent deletes every row.
        selection: Option<SqlExpr>,
    },
    /// `UPDATE t SET c = e, … [WHERE …]`.
    Update {
        /// Target table.
        table: Name,
        /// Assignments, in statement order.
        sets: Vec<(Name, SqlExpr)>,
        /// Optional predicate; absent updates every row.
        selection: Option<SqlExpr>,
    },
}

impl Stmt {
    /// The statement's target/source table name.
    pub fn table(&self) -> &Name {
        match self {
            Stmt::Select(s) => &s.from,
            Stmt::Insert { table, .. }
            | Stmt::Delete { table, .. }
            | Stmt::Update { table, .. } => table,
        }
    }
}
