//! SQL front-end for `snowprune`: a hand-rolled lexer, recursive-descent
//! parser, and binder that lowers statements onto the plan IR, plus the
//! `snowprune` REPL binary.
//!
//! The pipeline is `lex` → [`parse_statement`] → [`bind::bind`] →
//! [`Statement`]: SELECTs become [`snowprune_plan::Plan`]s (verified by
//! the phase-0 static analyzer before they are returned),
//! INSERT/DELETE/UPDATE become bound DML descriptions executed through
//! the session's cache-consistent wrappers. Every token carries a byte
//! [`snowprune_types::Span`], every rejection is
//! [`snowprune_types::Error::PlanRejected`] with a spanned diagnostic,
//! and [`render_diagnostics`] turns those spans into `line:col` caret
//! blocks.
//!
//! Crucially for the differential harness, lowering is *structural*: the
//! plan bound from a query's emitted SQL text is `==` to the hand-built
//! plan it came from (same predicate tree, same unresolved column
//! references), so the round-trip legs can demand byte-identical rows
//! and I/O, not merely equivalent answers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bind;
pub mod parse;
pub mod render;
pub mod repl;
pub mod run;
pub mod token;

pub use ast::Stmt;
pub use bind::{bind_sql, Statement};
pub use parse::{parse_script, parse_statement};
pub use render::{render_diagnostics, render_error};
pub use repl::{demo_catalog, run_repl, ReplOptions};
pub use run::{SessionSqlExt, SqlOutcome};
pub use token::{lex, Token, TokenKind};
