//! Diagnostic rendering: spanned diagnostics → `line:col` carets.
//!
//! The plan-level `Diagnostic` display stays span-free; the SQL
//! front-end, which holds the source text, renders each spanned finding
//! as a three-line block — header, the offending source line, and a
//! caret underline.

use snowprune_types::{Diagnostic, Error};

/// Render diagnostics against their source statement.
///
/// Spanned findings render as:
///
/// ```text
/// error[sql-syntax] at 1:17: expected `FROM`, found `WHRE`
///   SELECT a FROM t WHRE x < 1
///                   ^^^^
/// ```
///
/// Span-free findings fall back to the standard `Diagnostic` display.
pub fn render_diagnostics(src: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        if !out.is_empty() {
            out.push('\n');
        }
        match d.span {
            None => out.push_str(&d.to_string()),
            Some(span) => {
                let (line, col) = span.line_col(src);
                out.push_str(&format!(
                    "{}[{}] at {line}:{col}: {}",
                    d.severity, d.code, d.message
                ));
                let at = span.start.min(src.len());
                let line_start = src[..at].rfind('\n').map(|i| i + 1).unwrap_or(0);
                let line_end = src[at..].find('\n').map(|i| at + i).unwrap_or(src.len());
                let line_text = &src[line_start..line_end];
                if !line_text.is_empty() {
                    out.push_str("\n  ");
                    out.push_str(line_text);
                }
                // Indent and caret width count *chars*, not bytes, so a
                // multi-byte character earlier on the line (legal inside
                // string literals) doesn't shift the caret off target.
                let width = src[at..span.end.min(line_end).max(at)]
                    .chars()
                    .count()
                    .max(1);
                out.push_str("\n  ");
                out.push_str(&" ".repeat(src[line_start..at].chars().count()));
                out.push_str(&"^".repeat(width));
            }
        }
    }
    out
}

/// Render any [`Error`] against its source statement: plan rejections
/// get carets, everything else the plain error display.
pub fn render_error(src: &str, err: &Error) -> String {
    match err {
        Error::PlanRejected(diags) => render_diagnostics(src, diags),
        other => format!("error: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_types::{DiagCode, Span};

    #[test]
    fn caret_points_at_the_offending_token() {
        let src = "SELECT a FROM t WHRE x < 1";
        let d = Diagnostic::error(DiagCode::SqlSyntax, "sql", "expected `FROM`, found `WHRE`")
            .with_span(Span::new(16, 20));
        assert_eq!(
            render_diagnostics(src, &[d]),
            format!(
                "error[sql-syntax] at 1:17: expected `FROM`, found `WHRE`\n  \
                 SELECT a FROM t WHRE x < 1\n  {}^^^^",
                " ".repeat(16)
            )
        );
    }

    #[test]
    fn caret_on_second_line_counts_lines() {
        let src = "SELECT a\nFROM nope";
        let d = Diagnostic::error(DiagCode::UnknownTable, "sql", "no table `nope`")
            .with_span(Span::new(14, 18));
        let r = render_diagnostics(src, &[d]);
        assert!(r.starts_with("error[unknown-table] at 2:6: no table `nope`"));
        assert!(r.ends_with("  FROM nope\n       ^^^^"));
    }

    #[test]
    fn point_span_at_end_of_input_renders_one_caret() {
        let src = "SELECT * FROM";
        let d = Diagnostic::error(DiagCode::SqlSyntax, "sql", "expected a table name")
            .with_span(Span::point(src.len()));
        let r = render_diagnostics(src, &[d]);
        assert!(
            r.ends_with(&format!("\n  {}^", " ".repeat(src.len()))),
            "{r}"
        );
    }

    #[test]
    fn multibyte_text_before_the_span_does_not_shift_the_caret() {
        // 'α' and 'β' are 2 bytes each; indent and header column must
        // count chars so the caret still sits under `nope`.
        let src = "SELECT 'αβ' FROM nope";
        let at = src.find("nope").unwrap();
        let d = Diagnostic::error(DiagCode::UnknownTable, "sql", "no table `nope`")
            .with_span(Span::new(at, at + 4));
        let chars_before = src[..at].chars().count();
        assert_eq!(
            render_diagnostics(src, &[d]),
            format!(
                "error[unknown-table] at 1:{}: no table `nope`\n  {src}\n  {}^^^^",
                chars_before + 1,
                " ".repeat(chars_before)
            )
        );
    }

    #[test]
    fn span_free_diagnostics_fall_back_to_display() {
        let d = Diagnostic::error(DiagCode::UnknownColumn, "Scan(t).predicate", "no `x`");
        assert_eq!(
            render_diagnostics("SELECT 1", &[d]),
            "error[unknown-column] at Scan(t).predicate: no `x`"
        );
    }
}
