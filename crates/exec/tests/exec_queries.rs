//! End-to-end executor tests. The master invariant: every pruning
//! technique produces exactly the same rows as the no-pruning baseline,
//! while loading fewer partitions.

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use snowprune_exec::{ExecConfig, Executor, QueryOutput};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::{AggFunc, JoinType, Plan, PlanBuilder};
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

/// The paper's running example data: trails + tracking_data.
fn wildlife_catalog() -> Catalog {
    let catalog = Catalog::new();
    let trails_schema = Schema::new(vec![
        Field::new("mountain", ScalarType::Str),
        Field::new("name", ScalarType::Str),
        Field::new("unit", ScalarType::Str),
        Field::new("altit", ScalarType::Int),
    ]);
    let mut trails = TableBuilder::new("trails", trails_schema)
        .target_rows_per_partition(50)
        .layout(Layout::ClusterBy(vec!["altit".into()]));
    for i in 0..1000i64 {
        let unit = if i % 3 == 0 { "feet" } else { "meters" };
        let name = if i % 4 == 0 {
            format!("Marked-{i}-Ridge")
        } else {
            format!("Basecamp-{i}")
        };
        trails.push_row(vec![
            Value::Str(format!("M{}", i % 20)),
            Value::Str(name),
            Value::Str(unit.into()),
            Value::Int(500 + i * 7 % 7000),
        ]);
    }
    catalog.register(trails.build());

    let tracking_schema = Schema::new(vec![
        Field::new("area", ScalarType::Str),
        Field::new("species", ScalarType::Str),
        Field::new("s", ScalarType::Int),
        Field::new("num_sightings", ScalarType::Int),
    ]);
    let mut tracking = TableBuilder::new("tracking_data", tracking_schema)
        .target_rows_per_partition(100)
        .layout(Layout::ClusterBy(vec!["num_sightings".into()]));
    let species = [
        "Alpine Ibex",
        "Alpine Goat",
        "Brown Bear",
        "Red Fox",
        "Snow Vole",
    ];
    for i in 0..5000i64 {
        tracking.push_row(vec![
            Value::Str(format!("M{}", i % 20)),
            Value::Str(species[(i % 5) as usize].into()),
            Value::Int(4 + (i * 13) % 130),
            Value::Int((i * 31) % 10000),
        ]);
    }
    catalog.register(tracking.build());
    catalog
}

fn run_both(plan: &Plan) -> (QueryOutput, QueryOutput) {
    let catalog = wildlife_catalog();
    let pruned = Executor::new(catalog.clone(), ExecConfig::default())
        .run(plan)
        .unwrap();
    let baseline = Executor::new(catalog, ExecConfig::no_pruning())
        .run(plan)
        .unwrap();
    (pruned, baseline)
}

fn sorted_rows(out: &QueryOutput) -> Vec<Vec<Value>> {
    let mut rows = out.rows.rows.clone();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_ord_cmp(y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

#[test]
fn filter_query_same_rows_less_io() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", schema)
        .filter(col("num_sightings").lt(lit(500i64)))
        .build();
    let (pruned, baseline) = run_both(&plan);
    assert_eq!(sorted_rows(&pruned), sorted_rows(&baseline));
    assert!(!pruned.rows.is_empty());
    assert!(
        pruned.io.partitions_loaded < baseline.io.partitions_loaded,
        "pruning must reduce I/O: {} vs {}",
        pruned.io.partitions_loaded,
        baseline.io.partitions_loaded
    );
    assert!(pruned.report.pruning.pruned_by_filter > 0);
    assert!(pruned.report.pruning.filter_eligible);
}

#[test]
fn complex_expression_filter_matches_baseline() {
    let catalog = wildlife_catalog();
    let schema = catalog.get("trails").unwrap().read().schema().clone();
    // The §3.1 query: unit conversion + LIKE.
    let pred = snowprune_expr::dsl::if_(
        col("unit").eq(lit("feet")),
        col("altit").mul(lit(0.3048)),
        col("altit"),
    )
    .gt(lit(1500i64))
    .and(col("name").like("Marked-%-Ridge"));
    let plan = PlanBuilder::scan("trails", schema).filter(pred).build();
    let (pruned, baseline) = run_both(&plan);
    assert_eq!(sorted_rows(&pruned), sorted_rows(&baseline));
}

#[test]
fn limit_without_predicate_prunes_to_one_partition() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", schema).limit(10).build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 10);
    assert_eq!(out.io.partitions_loaded, 1, "LIMIT 10 needs one partition");
    assert!(matches!(
        out.report.limit_outcome,
        Some(snowprune_core::LimitOutcome::PrunedToOne)
    ));
    assert!(out.report.pruning.pruned_by_limit > 0);
}

#[test]
fn limit_with_predicate_uses_fully_matching_partitions() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    // num_sightings < 2000 matches whole clustered partitions.
    let plan = PlanBuilder::scan("tracking_data", schema)
        .filter(col("num_sightings").lt(lit(2000i64)))
        .limit(5)
        .build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 5);
    for row in &out.rows.rows {
        let v = row[3].as_i64().unwrap();
        assert!(v < 2000, "row violates predicate: {v}");
    }
    assert_eq!(out.io.partitions_loaded, 1);
}

#[test]
fn limit_offset_is_honoured() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", schema)
        .limit_offset(10, 5)
        .build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 10);
}

#[test]
fn topk_above_scan_matches_baseline() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", schema)
        .filter(col("species").like("Alpine%").and(col("s").ge(lit(50i64))))
        .order_by("num_sightings", true)
        .limit(3)
        .build();
    let (pruned, baseline) = run_both(&plan);
    // Ties make row identity ambiguous; the ORDER BY key multiset must match.
    let keys =
        |o: &QueryOutput| -> Vec<Value> { o.rows.rows.iter().map(|r| r[3].clone()).collect() };
    assert_eq!(keys(&pruned), keys(&baseline));
    assert_eq!(pruned.rows.len(), 3);
    assert!(
        pruned.report.pruning.pruned_by_topk > 0,
        "top-k should skip partitions: {:?}",
        pruned.report.topk_stats
    );
    assert!(pruned.io.partitions_loaded < baseline.io.partitions_loaded);
}

#[test]
fn topk_ascending_matches_baseline() {
    let catalog = wildlife_catalog();
    let schema = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", schema)
        .order_by("num_sightings", false)
        .limit(7)
        .build();
    let (pruned, baseline) = run_both(&plan);
    let keys =
        |o: &QueryOutput| -> Vec<Value> { o.rows.rows.iter().map(|r| r[3].clone()).collect() };
    assert_eq!(keys(&pruned), keys(&baseline));
}

#[test]
fn topk_join_probe_side_matches_baseline() {
    let catalog = wildlife_catalog();
    let trails = catalog.get("trails").unwrap().read().schema().clone();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("trails", trails)
        .filter(col("altit").gt(lit(6000i64)))
        .join(
            PlanBuilder::scan("tracking_data", tracking),
            "mountain",
            "area",
            JoinType::Inner,
        )
        .order_by("num_sightings", true)
        .limit(5)
        .build();
    let (pruned, baseline) = run_both(&plan);
    let keys = |o: &QueryOutput| -> Vec<Value> {
        o.rows.rows.iter().map(|r| r[r.len() - 1].clone()).collect()
    };
    assert_eq!(keys(&pruned), keys(&baseline));
    assert_eq!(
        pruned.report.topk_shape,
        Some(snowprune_plan::TopKShape::JoinProbeSide)
    );
}

#[test]
fn topk_outer_join_build_side_matches_baseline() {
    let catalog = wildlife_catalog();
    let trails = catalog.get("trails").unwrap().read().schema().clone();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("trails", trails)
        .join(
            PlanBuilder::scan("tracking_data", tracking),
            "mountain",
            "area",
            JoinType::OuterPreserveBuild,
        )
        .order_by("altit", true)
        .limit(4)
        .build();
    let (pruned, baseline) = run_both(&plan);
    let keys =
        |o: &QueryOutput| -> Vec<Value> { o.rows.rows.iter().map(|r| r[3].clone()).collect() };
    assert_eq!(keys(&pruned), keys(&baseline));
    assert_eq!(
        pruned.report.topk_shape,
        Some(snowprune_plan::TopKShape::OuterJoinBuildSide)
    );
}

#[test]
fn topk_aggregation_matches_baseline() {
    let catalog = wildlife_catalog();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    // GROUP BY num_sightings ORDER BY num_sightings DESC LIMIT 5 (7d shape).
    let plan = PlanBuilder::scan("tracking_data", tracking)
        .aggregate(vec!["num_sightings"], vec![AggFunc::CountStar])
        .order_by("num_sightings", true)
        .limit(5)
        .build();
    let (pruned, baseline) = run_both(&plan);
    assert_eq!(pruned.rows.rows, baseline.rows.rows);
    assert_eq!(
        pruned.report.topk_shape,
        Some(snowprune_plan::TopKShape::AboveAggregation)
    );
    assert!(pruned.report.pruning.pruned_by_topk > 0);
}

#[test]
fn join_pruning_same_result_less_io() {
    let catalog = wildlife_catalog();
    let trails = catalog.get("trails").unwrap().read().schema().clone();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    // Selective build side: few trails qualify -> probe pruning on area.
    let plan = PlanBuilder::scan("tracking_data", tracking)
        .filter(col("num_sightings").lt(lit(300i64)))
        .join(
            PlanBuilder::scan("trails", trails).filter(col("altit").gt(lit(1i64))),
            "num_sightings",
            "altit",
            JoinType::Inner,
        )
        .build();
    let (pruned, baseline) = run_both(&plan);
    assert_eq!(sorted_rows(&pruned), sorted_rows(&baseline));
    assert!(
        pruned.report.pruning.pruned_by_join > 0,
        "{:?}",
        pruned.report.pruning
    );
    assert!(pruned.io.partitions_loaded < baseline.io.partitions_loaded);
}

#[test]
fn empty_build_side_prunes_probe_entirely() {
    let catalog = wildlife_catalog();
    let trails = catalog.get("trails").unwrap().read().schema().clone();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("trails", trails)
        .filter(col("altit").gt(lit(1_000_000i64))) // nothing qualifies
        .join(
            PlanBuilder::scan("tracking_data", tracking),
            "mountain",
            "area",
            JoinType::Inner,
        )
        .build();
    let exec = Executor::new(catalog, ExecConfig::default());
    let out = exec.run(&plan).unwrap();
    assert!(out.rows.is_empty());
    // Probe side never loaded: 100% probe-side pruning (Figure 10's 13%).
    assert_eq!(out.report.pruning.pruned_by_join, 50);
}

#[test]
fn aggregation_and_sort_without_limit() {
    let catalog = wildlife_catalog();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", tracking)
        .aggregate(
            vec!["species"],
            vec![
                AggFunc::CountStar,
                AggFunc::Sum("num_sightings".into()),
                AggFunc::Avg("s".into()),
            ],
        )
        .order_by("species", false)
        .build();
    let (pruned, baseline) = run_both(&plan);
    assert_eq!(pruned.rows.rows, baseline.rows.rows);
    assert_eq!(pruned.rows.len(), 5);
}

#[test]
fn parallel_workers_match_sequential() {
    let catalog = wildlife_catalog();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", tracking)
        .filter(col("s").ge(lit(60i64)))
        .build();
    let seq = Executor::new(catalog.clone(), ExecConfig::default())
        .run(&plan)
        .unwrap();
    let mut cfg = ExecConfig::default();
    cfg.scan_threads = 4;
    let par = Executor::new(catalog, cfg).run(&plan).unwrap();
    assert_eq!(sorted_rows(&par), sorted_rows(&seq));
}

#[test]
fn parallel_limit_reads_at_least_workers_partitions() {
    // §4.4: "if no pruning is applied, the work might be distributed
    // across n machines ... the query engine reads at least n partitions,
    // even though 1 might have been enough."
    let catalog = wildlife_catalog();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    let plan = PlanBuilder::scan("tracking_data", tracking)
        .limit(10)
        .build();
    let mut cfg = ExecConfig::no_pruning();
    cfg.scan_threads = 4;
    let out = Executor::new(catalog.clone(), cfg).run(&plan).unwrap();
    // Pre-assignment makes the floor deterministic: the first
    // min(workers, partitions) partitions are read unconditionally.
    assert!(
        out.io.partitions_loaded >= 4,
        "parallel workers over-read: {}",
        out.io.partitions_loaded
    );
    // With LIMIT pruning, one partition suffices regardless of workers.
    let mut cfg2 = ExecConfig::default();
    cfg2.scan_threads = 4;
    let out2 = Executor::new(catalog, cfg2).run(&plan).unwrap();
    assert_eq!(out2.io.partitions_loaded, 1);
    assert_eq!(out2.rows.len(), 10);
}

#[test]
fn report_composes_filter_and_join_and_topk() {
    let catalog = wildlife_catalog();
    let trails = catalog.get("trails").unwrap().read().schema().clone();
    let tracking = catalog
        .get("tracking_data")
        .unwrap()
        .read()
        .schema()
        .clone();
    // The paper's final example query (§6.1): filter + join + top-k.
    let pred = snowprune_expr::dsl::if_(
        col("unit").eq(lit("feet")),
        col("altit").mul(lit(0.3048)),
        col("altit"),
    )
    .gt(lit(1500i64))
    .and(col("name").like("Marked-%-Ridge"));
    let plan = PlanBuilder::scan("trails", trails)
        .filter(pred)
        .join(
            PlanBuilder::scan("tracking_data", tracking)
                .filter(col("species").like("Alpine%").and(col("s").ge(lit(50i64)))),
            "mountain",
            "area",
            JoinType::Inner,
        )
        .order_by("num_sightings", true)
        .limit(3)
        .build();
    let (pruned, baseline) = run_both(&plan);
    let keys = |o: &QueryOutput| -> Vec<Value> {
        o.rows.rows.iter().map(|r| r[r.len() - 1].clone()).collect()
    };
    assert_eq!(keys(&pruned), keys(&baseline));
    let combo = pruned.report.pruning.techniques_used();
    assert!(
        combo.contains(snowprune_core::TechniqueSet::JOIN)
            || pruned.report.pruning.pruned_by_join == 0
    );
    assert!(pruned.io.partitions_loaded <= baseline.io.partitions_loaded);
}
