//! Property tests for the async prefetch pipeline: under *arbitrary*
//! completion orderings and boundary-tighten interleavings (proptest-
//! generated schedules driven on the deterministic virtual clock), a
//! cancelled load never contributes bytes or latency to `IoStats`, and
//! cancellation never drops a row the oracle emits.

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;
use snowprune_core::filter::FilterPruneConfig;
use snowprune_core::topk::{Boundary, TopKHeap};
use snowprune_exec::{prefetch_depth_from_env, CompiledScan, ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::PlanBuilder;
use snowprune_storage::{
    AsyncLake, Catalog, Field, IoCostModel, IoStats, Layout, LoadTicket, Schema, Table,
    TableBuilder,
};
use snowprune_types::{ScalarType, Value};

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", ScalarType::Int)])
}

fn build_table(values: &[i64], per_part: usize, clustered: bool) -> Arc<Table> {
    let layout = if clustered {
        Layout::ClusterBy(vec!["v".into()])
    } else {
        Layout::Shuffle(23)
    };
    let mut b = TableBuilder::new("t", schema())
        .target_rows_per_partition(per_part)
        .layout(layout);
    for v in values {
        b.push_row(vec![Value::Int(*v)]);
    }
    Arc::new(b.build())
}

/// Per-run bookkeeping for the manual pipeline harness.
#[derive(Default)]
struct Tally {
    loaded: u64,
    loaded_bytes: u64,
    cancelled: u64,
}

/// Resolve one in-flight load, under schedule control: first absorb up to
/// `absorb` pending rows into the heap (the boundary-tighten interleaving —
/// this models a driver that lags arbitrarily behind the scan), then pick
/// an arbitrary in-flight ticket (the completion-ordering interleaving),
/// re-check the boundary, and cancel or complete it.
#[allow(clippy::too_many_arguments)]
fn resolve_one(
    scan: &CompiledScan,
    boundary: &Boundary,
    heap: &mut TopKHeap<Value>,
    lake: &mut AsyncLake,
    pending: &mut VecDeque<Value>,
    inflight: &mut VecDeque<(usize, LoadTicket)>,
    (absorb, pick): (u8, u8),
    tally: &mut Tally,
) {
    for _ in 0..absorb {
        let Some(v) = pending.pop_front() else { break };
        heap.insert(v.clone(), v);
    }
    let slot = pick as usize % inflight.len();
    let (idx, ticket) = inflight.remove(slot).expect("slot in range");
    let entry = &scan.scan_set.entries[idx];
    let meta = scan.table.partition_meta(entry.id).unwrap();
    if boundary.should_skip(&meta.zone_maps[0]) {
        lake.cancel(ticket);
        tally.cancelled += 1;
    } else {
        let part = lake.complete(ticket).unwrap();
        tally.loaded += 1;
        tally.loaded_bytes += part.meta.bytes;
        for i in 0..part.row_count() {
            pending.push_back(part.row(i)[0].clone());
        }
        lake.note_evaluated(part.row_count() as u64);
    }
}

const LATENCY_NS: u64 = 1_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The manual harness: a top-k scan driven through `AsyncLake` with a
    /// proptest schedule choosing, at every resolution point, how far the
    /// boundary has tightened and *which* in-flight load resolves next.
    /// Invariants: (1) `IoStats` charges exactly the completed loads —
    /// cancelled tickets contribute zero bytes and zero latency; (2) the
    /// pipeline counter identity holds; (3) the surviving rows still
    /// contain the exact oracle top-k — cancellation never loses a result
    /// row, no matter the interleaving.
    #[test]
    fn cancelled_loads_are_free_and_never_drop_oracle_rows(
        values in proptest::collection::vec(-100i64..100, 1..240),
        per_part in prop_oneof![Just(5usize), Just(13), Just(32)],
        k in 1usize..12,
        desc in any::<bool>(),
        depth in 1usize..9,
        clustered in any::<bool>(),
        schedule in proptest::collection::vec((0u8..8, 0u8..8), 0..512),
    ) {
        let table = build_table(&values, per_part, clustered);
        let io = IoStats::new();
        let model = IoCostModel {
            latency_ns_per_request: LATENCY_NS,
            throughput_bytes_per_sec: u64::MAX,
            metadata_ns_per_read: 0,
            eval_ns_per_row: 10,
        };
        let scan = CompiledScan::compile(
            "t",
            Arc::clone(&table),
            None,
            true,
            &FilterPruneConfig::default(),
            &io,
            &model,
        )
        .unwrap();
        let boundary = Boundary::new(desc);
        let mut heap = TopKHeap::new(k, desc, Arc::clone(&boundary));
        let mut lake = AsyncLake::new(Arc::clone(&table), io.clone(), model);
        let mut sched: VecDeque<(u8, u8)> = schedule.into_iter().collect();
        let mut pending: VecDeque<Value> = VecDeque::new();
        let mut inflight: VecDeque<(usize, LoadTicket)> = VecDeque::new();
        let mut tally = Tally::default();
        let mut considered = 0u64;
        let mut skipped = 0u64;

        for (idx, entry) in scan.scan_set.entries.iter().enumerate() {
            while inflight.len() >= depth {
                let step = sched.pop_front().unwrap_or((7, 0));
                resolve_one(
                    &scan, &boundary, &mut heap, &mut lake,
                    &mut pending, &mut inflight, step, &mut tally,
                );
            }
            considered += 1;
            let meta = scan.table.partition_meta(entry.id).unwrap();
            if boundary.should_skip(&meta.zone_maps[0]) {
                skipped += 1;
                continue;
            }
            inflight.push_back((idx, lake.submit_load(entry.id, meta.bytes)));
        }
        while !inflight.is_empty() {
            let step = sched.pop_front().unwrap_or((7, 0));
            resolve_one(
                &scan, &boundary, &mut heap, &mut lake,
                &mut pending, &mut inflight, step, &mut tally,
            );
        }
        for v in pending.drain(..) {
            heap.insert(v.clone(), v);
        }
        lake.finish();

        // (1) Cancelled loads are free: I/O accounting covers exactly the
        // completed loads, to the byte and the nanosecond.
        let s = io.snapshot();
        prop_assert_eq!(s.partitions_loaded, tally.loaded);
        prop_assert_eq!(s.bytes_loaded, tally.loaded_bytes);
        prop_assert_eq!(s.loads_cancelled, tally.cancelled);
        prop_assert_eq!(s.simulated_io_ns, tally.loaded * LATENCY_NS);
        // (2) The pipeline counter identity.
        prop_assert_eq!(considered, tally.loaded + skipped + tally.cancelled);
        // (3) No oracle row lost: the heap holds the exact top-k.
        let mut oracle = values.clone();
        oracle.sort_unstable();
        if desc {
            oracle.reverse();
        }
        oracle.truncate(k);
        let got: Vec<i64> = heap
            .into_sorted()
            .into_iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, oracle,
            "k={} desc={} depth={} clustered={}", k, desc, depth, clustered);
    }

    /// End-to-end: the real executor's results are invariant in the
    /// prefetch depth, for filter, LIMIT, and top-k shapes, against the
    /// blocking no-pruning oracle.
    #[test]
    fn engine_rows_are_prefetch_depth_invariant(
        values in proptest::collection::vec(-100i64..100, 1..200),
        per_part in prop_oneof![Just(7usize), Just(20)],
        k in 1u64..15,
        desc in any::<bool>(),
        depth in 2usize..9,
        shape in 0u8..3,
        clustered in any::<bool>(),
    ) {
        // CI's SNOWPRUNE_PREFETCH_DEPTH matrix leg overrides the generated
        // depth so the matrix cells genuinely differ.
        let depth = prefetch_depth_from_env().unwrap_or(depth);
        let table = build_table(&values, per_part, clustered);
        let catalog = Catalog::new();
        catalog.register(Arc::try_unwrap(table).unwrap_or_else(|t| (*t).clone()));
        let plan = match shape {
            0 => PlanBuilder::scan("t", schema())
                .filter(col("v").ge(lit(0i64)))
                .build(),
            1 => PlanBuilder::scan("t", schema())
                .filter(col("v").lt(lit(50i64)))
                .limit(k)
                .build(),
            _ => PlanBuilder::scan("t", schema())
                .order_by("v", desc)
                .limit(k)
                .build(),
        };
        let pruned = Executor::new(
            catalog.clone(),
            ExecConfig::default().with_prefetch_depth(depth),
        )
        .run(&plan)
        .unwrap();
        let oracle = Executor::new(catalog, ExecConfig::no_pruning().with_prefetch_depth(1))
            .run(&plan)
            .unwrap();
        // For filter and top-k shapes, pruning + prefetch cancellation can
        // only reduce I/O. (LIMIT shapes are excluded: LIMIT pruning picks
        // a *guaranteed* fully-matching cover, which may legally differ
        // from the oracle's lucky early stop by a partition — a compile
        // time trade-off independent of prefetching.)
        if shape != 1 {
            prop_assert!(pruned.io.bytes_loaded <= oracle.io.bytes_loaded,
                "shape={} depth={} pruned={} oracle={}",
                shape, depth, pruned.io.bytes_loaded, oracle.io.bytes_loaded);
        }
        let canon = |rows: &Vec<Vec<Value>>| -> Vec<i64> {
            let mut v: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
            if shape != 2 {
                v.sort_unstable();
            }
            v
        };
        match shape {
            // LIMIT without ORDER BY: any k matching rows are legal; check
            // count and containment against the unlimited matching set.
            1 => {
                let matching: Vec<i64> = values.iter().copied().filter(|v| *v < 50).collect();
                prop_assert_eq!(pruned.rows.len(), (k as usize).min(matching.len()));
                for r in &pruned.rows.rows {
                    prop_assert!(matching.contains(&r[0].as_i64().unwrap()));
                }
            }
            _ => prop_assert_eq!(canon(&pruned.rows.rows), canon(&oracle.rows.rows)),
        }
    }
}
