//! Property suite for the columnar aggregation kernels: for random typed
//! columns (integers and floats with NULLs and NaN), random group keys,
//! random selection vectors, and random batch boundaries, folding through
//! [`BatchAggregator`]'s monomorphized loops must be bit-identical to the
//! row-at-a-time [`aggregate_rows`] oracle — including float accumulation
//! order, `total_cmp` NaN placement in MIN/MAX, and the NULL results of
//! SUM/AVG/MIN/MAX over groups with no qualifying input.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use snowprune_exec::agg::aggregate_rows;
use snowprune_exec::vector::{Batch, BatchAggregator, BatchChain};
use snowprune_plan::AggFunc;
use snowprune_storage::{ColumnBuilder, Field, MicroPartition, Schema};
use snowprune_types::{ScalarType, SelVec, Value};

fn int_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        5 => (-100i64..100).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn float_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        6 => (-100.0f64..100.0).prop_map(Value::Float),
        1 => Just(Value::Float(f64::NAN)),
        1 => Just(Value::Null),
    ]
}

/// Every aggregate kind over both typed columns, all folded in one pass.
fn all_aggs() -> Vec<AggFunc> {
    vec![
        AggFunc::CountStar,
        AggFunc::Count("i".into()),
        AggFunc::Sum("i".into()),
        AggFunc::Min("i".into()),
        AggFunc::Max("i".into()),
        AggFunc::Avg("i".into()),
        AggFunc::Count("f".into()),
        AggFunc::Sum("f".into()),
        AggFunc::Min("f".into()),
        AggFunc::Max("f".into()),
        AggFunc::Avg("f".into()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn batch_agg_kernels_match_row_fold(
        rows in vec((0i64..4, int_value(), float_value()), 1..80),
        chunk_sizes in vec(1usize..9, 1..6),
        mask_seed in any::<u64>(),
    ) {
        let schema = Schema::new(vec![
            Field::new("g", ScalarType::Int),
            Field::new("i", ScalarType::Int),
            Field::new("f", ScalarType::Float),
        ]);
        let mut cols = vec![
            ColumnBuilder::new(ScalarType::Int),
            ColumnBuilder::new(ScalarType::Int),
            ColumnBuilder::new(ScalarType::Float),
        ];
        for (g, i, f) in &rows {
            cols[0].push(Value::Int(*g));
            cols[1].push(i.clone());
            cols[2].push(f.clone());
        }
        let part = Arc::new(MicroPartition::from_chunks(
            1,
            &schema,
            cols.into_iter().map(|c| c.finish()).collect(),
        ));
        // Random selection: each row survives iff its mask bit is set —
        // the kernels see a sparse SelVec::Rows, the oracle the same rows.
        let keep: Vec<usize> = (0..rows.len())
            .filter(|j| (mask_seed >> (j & 63)) & 1 == 1)
            .collect();
        let group_by = vec!["g".to_owned()];
        let aggs = all_aggs();
        let chain = BatchChain::identity(3);
        let mut agg = BatchAggregator::new(&chain, &schema, &group_by, &aggs).unwrap();
        // Feed the surviving rows in random-width batches, as a scan would.
        let mut pos = 0;
        let mut ci = 0;
        while pos < keep.len() {
            let n = chunk_sizes[ci % chunk_sizes.len()];
            ci += 1;
            let end = (pos + n).min(keep.len());
            agg.update(&Batch {
                part: Arc::clone(&part),
                sel: SelVec::Rows(keep[pos..end].to_vec()),
            });
            pos = end;
        }
        let got = agg.finish();
        let oracle_rows: Vec<Vec<Value>> = keep
            .iter()
            .map(|&j| vec![Value::Int(rows[j].0), rows[j].1.clone(), rows[j].2.clone()])
            .collect();
        let expect = aggregate_rows(&schema, oracle_rows, &group_by, &aggs, None).unwrap();
        // total_ord comparison so NaN outputs compare equal to themselves.
        prop_assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(&expect) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!(
                    x.total_ord_cmp(y) == std::cmp::Ordering::Equal,
                    "kernel {:?} vs oracle {:?}",
                    x,
                    y
                );
            }
        }
    }
}
