//! Property test: boundary-pruned top-k returns exactly the same ORDER BY
//! value multiset as a full sort, for arbitrary data layouts, k, direction,
//! ordering strategy, and boundary seeding. This is the invariant that
//! catches seeded-boundary/inclusive-skip bugs.

#![allow(clippy::field_reassign_with_default)] // config tweak idiom

use proptest::prelude::*;
use snowprune_core::topk::PartitionOrder;
use snowprune_exec::{ExecConfig, Executor};
use snowprune_expr::dsl::{col, lit};
use snowprune_plan::PlanBuilder;
use snowprune_storage::{Catalog, Field, Layout, Schema, TableBuilder};
use snowprune_types::{ScalarType, Value};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("v", ScalarType::Int),
        Field::new("w", ScalarType::Int),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruned_topk_matches_full_sort(
        values in proptest::collection::vec((-50i64..50, proptest::option::of(-50i64..50)), 1..300),
        k in 1u64..20,
        desc in any::<bool>(),
        clustered in any::<bool>(),
        init_boundary in any::<bool>(),
        order_strategy in 0u8..3,
        per_part in prop_oneof![Just(7usize), Just(16), Just(64)],
        with_filter in any::<bool>(),
    ) {
        let layout = if clustered {
            Layout::ClusterBy(vec!["v".into()])
        } else {
            Layout::Shuffle(11)
        };
        let mut b = TableBuilder::new("t", schema())
            .target_rows_per_partition(per_part)
            .layout(layout);
        for (v, w) in &values {
            b.push_row(vec![
                Value::Int(*v),
                w.map_or(Value::Null, Value::Int),
            ]);
        }
        let catalog = Catalog::new();
        catalog.register(b.build());
        let mut builder = PlanBuilder::scan("t", schema());
        if with_filter {
            builder = builder.filter(col("w").ge(lit(-25i64)));
        }
        // ORDER BY the w column sometimes (nullable keys), else v.
        let plan = builder.order_by("v", desc).limit(k).build();

        let mut cfg = ExecConfig::default();
        cfg.topk_init_boundary = init_boundary;
        cfg.topk_order = match order_strategy {
            0 => PartitionOrder::Unsorted,
            1 => PartitionOrder::Random { seed: 3 },
            _ => PartitionOrder::ByBoundary,
        };
        let pruned = Executor::new(catalog.clone(), cfg).run(&plan).unwrap();
        let baseline = Executor::new(catalog, ExecConfig::no_pruning())
            .run(&plan)
            .unwrap();
        let keys = |o: &snowprune_exec::QueryOutput| -> Vec<Value> {
            o.rows.rows.iter().map(|r| r[0].clone()).collect()
        };
        prop_assert_eq!(keys(&pruned), keys(&baseline),
            "k={} desc={} clustered={} init={} strat={}",
            k, desc, clustered, init_boundary, order_strategy);
    }
}
