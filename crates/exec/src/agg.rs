//! Hash aggregation, including the top-k-aware GROUP BY of §5.2: when the
//! ORDER BY column is one of the grouping keys, the aggregation maintains
//! its own top-k structure over *distinct keys* and feeds the scan's
//! pruning boundary.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use snowprune_core::topk::Boundary;
use snowprune_plan::AggFunc;
use snowprune_storage::{Bitmap, ColumnChunk, ColumnValues, Schema};
use snowprune_types::{KeyValue, Result, Value};

/// Running state of one aggregate function.
#[derive(Clone, Debug)]
pub enum AggState {
    /// `COUNT(*)` / `COUNT(col)` row counter.
    Count(u64),
    /// Integer `SUM` accumulator (widened to `i128`) plus a seen-any flag.
    SumInt(i128, bool),
    /// Float `SUM` accumulator plus a seen-any flag.
    SumFloat(f64, bool),
    /// Smallest non-null value seen so far.
    Min(Option<Value>),
    /// Largest non-null value seen so far.
    Max(Option<Value>),
    /// `AVG` accumulator: running sum and non-null input count.
    Avg {
        /// Sum of the non-null inputs.
        sum: f64,
        /// Number of non-null inputs.
        count: u64,
    },
}

impl AggState {
    /// Fresh state for `f`; `input_is_float` picks the `SUM` accumulator.
    pub fn new(f: &AggFunc, input_is_float: bool) -> AggState {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::Sum(_) => {
                if input_is_float {
                    AggState::SumFloat(0.0, false)
                } else {
                    AggState::SumInt(0, false)
                }
            }
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input into the state. `None` means "count the row"
    /// (`COUNT(*)`); `Some(Null)` is a NULL input and is skipped.
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                // CountStar passes Some(Null-insensitive marker) via v=None
                // convention: None means "count the row"; Some(Null) is a
                // NULL input to COUNT(col) and does not count.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::SumInt(acc, seen) => {
                if let Some(val) = v {
                    match val {
                        Value::Int(i) => {
                            *acc += *i as i128;
                            *seen = true;
                        }
                        Value::Float(f) => {
                            // Promote lazily: keep integer track, fold float.
                            *acc += *f as i128;
                            *seen = true;
                        }
                        _ => {}
                    }
                }
            }
            AggState::SumFloat(acc, seen) => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *acc += f;
                        *seen = true;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.total_ord_cmp(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.total_ord_cmp(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    /// The aggregate's final SQL value (NULL when no input qualified).
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c as i64),
            AggState::SumInt(acc, seen) => {
                if !*seen {
                    Value::Null
                } else if *acc >= i64::MIN as i128 && *acc <= i64::MAX as i128 {
                    Value::Int(*acc as i64)
                } else {
                    Value::Float(*acc as f64)
                }
            }
            AggState::SumFloat(acc, seen) => {
                if *seen {
                    Value::Float(*acc)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

/// Top-k over *distinct* keys, driving the shared boundary for the §5.2
/// aggregation shape. `offer` returns whether the key can still reach the
/// final top-k result (rows for hopeless keys are dropped pre-aggregation;
/// safe because the boundary only tightens).
pub struct DistinctKeyTopK {
    k: usize,
    desc: bool,
    keys: BTreeSet<KeyValue>,
    boundary: Arc<Boundary>,
}

impl DistinctKeyTopK {
    /// Track the best `k` distinct keys, publishing tightenings to
    /// `boundary` as the k-th best distinct key improves.
    pub fn new(k: usize, desc: bool, boundary: Arc<Boundary>) -> Self {
        DistinctKeyTopK {
            k,
            desc,
            keys: BTreeSet::new(),
            boundary,
        }
    }

    /// Offer a grouping-key value; `true` when rows with this key can
    /// still reach the final top-k result.
    pub fn offer(&mut self, key: &Value) -> bool {
        if key.is_null() || self.k == 0 {
            return false;
        }
        let kv = KeyValue(key.clone());
        if self.keys.contains(&kv) {
            return true;
        }
        if self.keys.len() < self.k {
            self.keys.insert(kv);
            if self.keys.len() == self.k {
                self.publish_boundary();
            }
            return true;
        }
        let worst = if self.desc {
            self.keys.first().cloned()
        } else {
            self.keys.last().cloned()
        };
        let Some(worst) = worst else { return false };
        let better = if self.desc { kv > worst } else { kv < worst };
        if better {
            self.keys.remove(&worst);
            self.keys.insert(kv);
            self.publish_boundary();
            true
        } else {
            false
        }
    }

    fn publish_boundary(&self) {
        let worst = if self.desc {
            self.keys.first()
        } else {
            self.keys.last()
        };
        if let Some(w) = worst {
            self.boundary.tighten_inclusive(&w.0);
        }
    }
}

/// Iterate `(row, group)` pairs with the validity check hoisted out of the
/// loop, mirroring `expr::kernel`: the dense (no-nulls) case runs the fold
/// alone, the sparse case masks through the bitmap first. Skipping an
/// invalid row is exactly equivalent to the row path's
/// `update(Some(&Null))` — a no-op for every aggregate kind.
#[inline]
fn for_each_valid(
    rows: &[usize],
    gids: &[usize],
    validity: Option<&Bitmap>,
    mut fold: impl FnMut(usize, usize),
) {
    match validity {
        None => {
            for (&i, &g) in rows.iter().zip(gids) {
                fold(i, g);
            }
        }
        Some(bits) => {
            for (&i, &g) in rows.iter().zip(gids) {
                if bits.get(i) {
                    fold(i, g);
                }
            }
        }
    }
}

/// Fold one aggregate slot's column window into per-group states: for each
/// selected row `rows[j]` (an absolute partition row index), fold its
/// column value into `states[gids[j]][slot]`. `chunk` is `None` for
/// `COUNT(*)`, which counts every selected row.
///
/// The numeric kinds run monomorphized loops straight over the typed
/// column slices with the validity check hoisted ([`for_each_valid`]);
/// each loop folds exactly the sequence of values the row path's
/// [`AggState::update`] would fold for the same rows, in the same order,
/// so accumulation — including float rounding and `total_cmp` NaN
/// ordering — is bit-identical to [`aggregate_rows`]. Everything else
/// (string min/max, cross-typed columns) takes the generic `value_at`
/// fallback through `update` itself.
pub(crate) fn fold_chunk_grouped(
    states: &mut [Vec<AggState>],
    slot: usize,
    rows: &[usize],
    gids: &[usize],
    chunk: Option<&ColumnChunk>,
) {
    if rows.is_empty() {
        return;
    }
    let Some(chunk) = chunk else {
        // COUNT(*): every selected row counts, valid or not.
        for &g in gids {
            if let AggState::Count(c) = &mut states[g][slot] {
                *c += 1;
            }
        }
        return;
    };
    let validity = chunk.validity();
    // All groups share one AggState variant per slot (it is fixed by the
    // aggregate function and input type), so probe the first.
    match (&states[gids[0]][slot], chunk.values()) {
        (AggState::Count(_), _) => for_each_valid(rows, gids, validity, |_, g| {
            if let AggState::Count(c) = &mut states[g][slot] {
                *c += 1;
            }
        }),
        (AggState::SumInt(..), ColumnValues::Int(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::SumInt(acc, seen) = &mut states[g][slot] {
                    *acc += vals[i] as i128;
                    *seen = true;
                }
            })
        }
        (AggState::SumFloat(..), ColumnValues::Float(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::SumFloat(acc, seen) = &mut states[g][slot] {
                    *acc += vals[i];
                    *seen = true;
                }
            })
        }
        (AggState::Avg { .. }, ColumnValues::Int(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Avg { sum, count } = &mut states[g][slot] {
                    *sum += vals[i] as f64;
                    *count += 1;
                }
            })
        }
        (AggState::Avg { .. }, ColumnValues::Float(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Avg { sum, count } = &mut states[g][slot] {
                    *sum += vals[i];
                    *count += 1;
                }
            })
        }
        (AggState::Min(_), ColumnValues::Int(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Min(cur) = &mut states[g][slot] {
                    match cur {
                        Some(Value::Int(c)) => {
                            if vals[i] < *c {
                                *c = vals[i];
                            }
                        }
                        _ => *cur = Some(Value::Int(vals[i])),
                    }
                }
            })
        }
        (AggState::Max(_), ColumnValues::Int(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Max(cur) = &mut states[g][slot] {
                    match cur {
                        Some(Value::Int(c)) => {
                            if vals[i] > *c {
                                *c = vals[i];
                            }
                        }
                        _ => *cur = Some(Value::Int(vals[i])),
                    }
                }
            })
        }
        (AggState::Min(_), ColumnValues::Float(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Min(cur) = &mut states[g][slot] {
                    match cur {
                        // Same total_cmp arm as expr::kernel: NaN orders
                        // greatest, so it never beats a finite minimum.
                        Some(Value::Float(c)) => {
                            if vals[i].total_cmp(c) == std::cmp::Ordering::Less {
                                *c = vals[i];
                            }
                        }
                        _ => *cur = Some(Value::Float(vals[i])),
                    }
                }
            })
        }
        (AggState::Max(_), ColumnValues::Float(vals)) => {
            for_each_valid(rows, gids, validity, |i, g| {
                if let AggState::Max(cur) = &mut states[g][slot] {
                    match cur {
                        Some(Value::Float(c)) => {
                            if vals[i].total_cmp(c) == std::cmp::Ordering::Greater {
                                *c = vals[i];
                            }
                        }
                        _ => *cur = Some(Value::Float(vals[i])),
                    }
                }
            })
        }
        // Generic fallback: late-materialize just this cell and reuse the
        // row-path fold verbatim.
        _ => for_each_valid(rows, gids, validity, |i, g| {
            states[g][slot].update(Some(&chunk.value_at(i)));
        }),
    }
}

/// Finalize grouped aggregation states into output rows (group key columns
/// followed by aggregate values), sorted into the deterministic order both
/// the row-at-a-time and batch-native paths share.
pub(crate) fn finish_groups(
    groups: impl IntoIterator<Item = (Vec<Value>, Vec<AggState>)>,
) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.iter().map(AggState::finish));
            key
        })
        .collect();
    // Deterministic output order for tests.
    out.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_ord_cmp(y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    out
}

/// Hash-aggregate fully materialized rows.
pub fn aggregate_rows(
    input_schema: &Schema,
    rows: impl IntoIterator<Item = Vec<Value>>,
    group_by: &[String],
    aggs: &[AggFunc],
    mut key_filter: Option<(&mut DistinctKeyTopK, usize)>,
) -> Result<Vec<Vec<Value>>> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input_schema.index_of(g))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            a.input_column()
                .map(|c| input_schema.index_of(c))
                .transpose()
        })
        .collect::<Result<_>>()?;
    let agg_float: Vec<bool> = agg_idx
        .iter()
        .map(|i| {
            i.map(|idx| input_schema.fields()[idx].ty == snowprune_types::ScalarType::Float)
                .unwrap_or(false)
        })
        .collect();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rows {
        if let Some((topk, key_pos)) = key_filter.as_mut() {
            let key_val = &row[group_idx[*key_pos]];
            if !topk.offer(key_val) {
                continue;
            }
        }
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let states = groups.entry(key).or_insert_with(|| {
            aggs.iter()
                .zip(&agg_float)
                .map(|(a, &f)| AggState::new(a, f))
                .collect()
        });
        for ((state, idx), _) in states.iter_mut().zip(&agg_idx).zip(aggs) {
            state.update(idx.map(|i| &row[i]));
        }
    }
    Ok(finish_groups(groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", ScalarType::Str),
            Field::new("v", ScalarType::Int),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Str("a".into()), Value::Int(1)],
            vec![Value::Str("b".into()), Value::Int(10)],
            vec![Value::Str("a".into()), Value::Int(2)],
            vec![Value::Str("b".into()), Value::Null],
            vec![Value::Str("c".into()), Value::Int(7)],
        ]
    }

    #[test]
    fn basic_aggregation() {
        let out = aggregate_rows(
            &schema(),
            rows(),
            &["g".into()],
            &[
                AggFunc::CountStar,
                AggFunc::Count("v".into()),
                AggFunc::Sum("v".into()),
                AggFunc::Min("v".into()),
                AggFunc::Max("v".into()),
                AggFunc::Avg("v".into()),
            ],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        // Group "b": 2 rows, 1 non-null v.
        let b = out.iter().find(|r| r[0] == Value::Str("b".into())).unwrap();
        assert_eq!(b[1], Value::Int(2)); // count(*)
        assert_eq!(b[2], Value::Int(1)); // count(v)
        assert_eq!(b[3], Value::Int(10)); // sum
        assert_eq!(b[4], Value::Int(10)); // min
        assert_eq!(b[5], Value::Int(10)); // max
        assert_eq!(b[6], Value::Float(10.0)); // avg
    }

    #[test]
    fn empty_group_sums_are_null() {
        let out = aggregate_rows(
            &schema(),
            vec![vec![Value::Str("a".into()), Value::Null]],
            &["g".into()],
            &[AggFunc::Sum("v".into()), AggFunc::Avg("v".into())],
            None,
        )
        .unwrap();
        assert_eq!(out[0][1], Value::Null);
        assert_eq!(out[0][2], Value::Null);
    }

    // ---- NULL / NaN semantics pins (batch-native parity) -----------------

    fn assert_total_eq(a: &Value, b: &Value) {
        assert_eq!(
            a.total_ord_cmp(b),
            std::cmp::Ordering::Equal,
            "{a:?} vs {b:?}"
        );
    }

    #[test]
    fn empty_and_all_null_groups_finish_null_across_all_kinds() {
        // SQL semantics pin: SUM/AVG/MIN/MAX over zero qualifying inputs
        // are NULL — the batch-native kernels rely on these exact rules.
        for (f, is_float) in [
            (AggFunc::Sum("v".into()), false),
            (AggFunc::Sum("v".into()), true),
            (AggFunc::Avg("v".into()), false),
            (AggFunc::Min("v".into()), true),
            (AggFunc::Max("v".into()), false),
        ] {
            let mut st = AggState::new(&f, is_float);
            assert_eq!(st.finish(), Value::Null, "empty {f:?}");
            st.update(Some(&Value::Null));
            st.update(Some(&Value::Null));
            assert_eq!(st.finish(), Value::Null, "all-NULL {f:?}");
        }
        // COUNT(col) over all-NULL input is 0, not NULL.
        let mut c = AggState::new(&AggFunc::Count("v".into()), false);
        c.update(Some(&Value::Null));
        assert_eq!(c.finish(), Value::Int(0));
    }

    #[test]
    fn nan_min_max_order_like_the_comparison_kernels() {
        // total_cmp pin: NaN sorts greatest, so it wins MAX and never
        // beats a finite MIN — the same arms expr::kernel compiles.
        let mut mn = AggState::new(&AggFunc::Min("v".into()), true);
        let mut mx = AggState::new(&AggFunc::Max("v".into()), true);
        for v in [f64::NAN, 1.0, 2.0] {
            mn.update(Some(&Value::Float(v)));
            mx.update(Some(&Value::Float(v)));
        }
        assert_eq!(mn.finish(), Value::Float(1.0));
        let Value::Float(m) = mx.finish() else {
            panic!("max of floats must stay a float");
        };
        assert!(m.is_nan(), "NaN orders greatest under total_cmp");
    }

    #[test]
    fn columnar_fold_matches_row_fold_on_nulls_and_nan() {
        // One group, a float column with a NULL slot and a NaN value: the
        // typed loops must fold exactly what AggState::update folds.
        let mut validity = Bitmap::new_set(4);
        validity.set(3, false); // 99.0 below is a NULL placeholder
        let chunk = ColumnChunk::new(
            ColumnValues::Float(vec![1.0, f64::NAN, 2.0, 99.0]),
            Some(validity),
        );
        let rows: Vec<usize> = (0..4).collect();
        let gids = vec![0usize; 4];
        let aggs = [
            AggFunc::Count("v".into()),
            AggFunc::Sum("v".into()),
            AggFunc::Avg("v".into()),
            AggFunc::Min("v".into()),
            AggFunc::Max("v".into()),
        ];
        let fresh = || -> Vec<AggState> { aggs.iter().map(|a| AggState::new(a, true)).collect() };
        let mut states = vec![fresh()];
        for slot in 0..aggs.len() {
            fold_chunk_grouped(&mut states, slot, &rows, &gids, Some(&chunk));
        }
        // Row-path oracle over the late-materialized values.
        let mut oracle = fresh();
        for i in 0..4 {
            for st in oracle.iter_mut() {
                st.update(Some(&chunk.value_at(i)));
            }
        }
        for (s, o) in states[0].iter().zip(&oracle) {
            assert_total_eq(&s.finish(), &o.finish());
        }
        // Folding only the masked row leaves every kind at its empty
        // result: COUNT(col) at 0, everything else NULL.
        let mut masked = vec![fresh()];
        for slot in 0..aggs.len() {
            fold_chunk_grouped(&mut masked, slot, &[3], &[0], Some(&chunk));
        }
        assert_eq!(masked[0][0].finish(), Value::Int(0));
        for s in &masked[0][1..] {
            assert_eq!(s.finish(), Value::Null);
        }
    }

    #[test]
    fn distinct_key_topk_filters_groups_and_feeds_boundary() {
        let boundary = Boundary::new(true);
        let mut topk = DistinctKeyTopK::new(2, true, Arc::clone(&boundary));
        assert!(topk.offer(&Value::Str("a".into())));
        assert!(topk.offer(&Value::Str("c".into())));
        assert_eq!(boundary.get(), Some(Value::Str("a".into())));
        // "b" beats the current worst "a".
        assert!(topk.offer(&Value::Str("b".into())));
        assert_eq!(boundary.get(), Some(Value::Str("b".into())));
        // "a" no longer qualifies.
        assert!(!topk.offer(&Value::Str("a".into())));
        // Existing member still qualifies.
        assert!(topk.offer(&Value::Str("c".into())));
    }

    #[test]
    fn aggregation_with_key_filter_drops_hopeless_groups() {
        let boundary = Boundary::new(true);
        let mut topk = DistinctKeyTopK::new(2, true, Arc::clone(&boundary));
        let out = aggregate_rows(
            &schema(),
            rows(),
            &["g".into()],
            &[AggFunc::CountStar],
            Some((&mut topk, 0)),
        )
        .unwrap();
        // Keys a, b, c arrive in order; top-2 by key desc = {b, c}. "a" was
        // admitted early (heap not full) but later rows for dropped keys
        // are filtered; surviving output may include the stale "a" group,
        // which the final Sort+Limit above removes. At minimum b and c
        // must be present and complete.
        let b = out.iter().find(|r| r[0] == Value::Str("b".into())).unwrap();
        assert_eq!(b[1], Value::Int(2));
        let c = out.iter().find(|r| r[0] == Value::Str("c".into())).unwrap();
        assert_eq!(c[1], Value::Int(1));
    }
}
