//! Hash aggregation, including the top-k-aware GROUP BY of §5.2: when the
//! ORDER BY column is one of the grouping keys, the aggregation maintains
//! its own top-k structure over *distinct keys* and feeds the scan's
//! pruning boundary.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use snowprune_core::topk::Boundary;
use snowprune_plan::AggFunc;
use snowprune_storage::Schema;
use snowprune_types::{KeyValue, Result, Value};

/// Running state of one aggregate function.
#[derive(Clone, Debug)]
pub enum AggState {
    /// `COUNT(*)` / `COUNT(col)` row counter.
    Count(u64),
    /// Integer `SUM` accumulator (widened to `i128`) plus a seen-any flag.
    SumInt(i128, bool),
    /// Float `SUM` accumulator plus a seen-any flag.
    SumFloat(f64, bool),
    /// Smallest non-null value seen so far.
    Min(Option<Value>),
    /// Largest non-null value seen so far.
    Max(Option<Value>),
    /// `AVG` accumulator: running sum and non-null input count.
    Avg {
        /// Sum of the non-null inputs.
        sum: f64,
        /// Number of non-null inputs.
        count: u64,
    },
}

impl AggState {
    /// Fresh state for `f`; `input_is_float` picks the `SUM` accumulator.
    pub fn new(f: &AggFunc, input_is_float: bool) -> AggState {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::Sum(_) => {
                if input_is_float {
                    AggState::SumFloat(0.0, false)
                } else {
                    AggState::SumInt(0, false)
                }
            }
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input into the state. `None` means "count the row"
    /// (`COUNT(*)`); `Some(Null)` is a NULL input and is skipped.
    pub fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                // CountStar passes Some(Null-insensitive marker) via v=None
                // convention: None means "count the row"; Some(Null) is a
                // NULL input to COUNT(col) and does not count.
                match v {
                    None => *c += 1,
                    Some(val) if !val.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::SumInt(acc, seen) => {
                if let Some(val) = v {
                    match val {
                        Value::Int(i) => {
                            *acc += *i as i128;
                            *seen = true;
                        }
                        Value::Float(f) => {
                            // Promote lazily: keep integer track, fold float.
                            *acc += *f as i128;
                            *seen = true;
                        }
                        _ => {}
                    }
                }
            }
            AggState::SumFloat(acc, seen) => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *acc += f;
                        *seen = true;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.total_ord_cmp(c) == std::cmp::Ordering::Less)
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| val.total_ord_cmp(c) == std::cmp::Ordering::Greater)
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(val) = v {
                    if let Some(f) = val.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    /// The aggregate's final SQL value (NULL when no input qualified).
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c as i64),
            AggState::SumInt(acc, seen) => {
                if !*seen {
                    Value::Null
                } else if *acc >= i64::MIN as i128 && *acc <= i64::MAX as i128 {
                    Value::Int(*acc as i64)
                } else {
                    Value::Float(*acc as f64)
                }
            }
            AggState::SumFloat(acc, seen) => {
                if *seen {
                    Value::Float(*acc)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
        }
    }
}

/// Top-k over *distinct* keys, driving the shared boundary for the §5.2
/// aggregation shape. `offer` returns whether the key can still reach the
/// final top-k result (rows for hopeless keys are dropped pre-aggregation;
/// safe because the boundary only tightens).
pub struct DistinctKeyTopK {
    k: usize,
    desc: bool,
    keys: BTreeSet<KeyValue>,
    boundary: Arc<Boundary>,
}

impl DistinctKeyTopK {
    /// Track the best `k` distinct keys, publishing tightenings to
    /// `boundary` as the k-th best distinct key improves.
    pub fn new(k: usize, desc: bool, boundary: Arc<Boundary>) -> Self {
        DistinctKeyTopK {
            k,
            desc,
            keys: BTreeSet::new(),
            boundary,
        }
    }

    /// Offer a grouping-key value; `true` when rows with this key can
    /// still reach the final top-k result.
    pub fn offer(&mut self, key: &Value) -> bool {
        if key.is_null() || self.k == 0 {
            return false;
        }
        let kv = KeyValue(key.clone());
        if self.keys.contains(&kv) {
            return true;
        }
        if self.keys.len() < self.k {
            self.keys.insert(kv);
            if self.keys.len() == self.k {
                self.publish_boundary();
            }
            return true;
        }
        let worst = if self.desc {
            self.keys.first().cloned()
        } else {
            self.keys.last().cloned()
        };
        let Some(worst) = worst else { return false };
        let better = if self.desc { kv > worst } else { kv < worst };
        if better {
            self.keys.remove(&worst);
            self.keys.insert(kv);
            self.publish_boundary();
            true
        } else {
            false
        }
    }

    fn publish_boundary(&self) {
        let worst = if self.desc {
            self.keys.first()
        } else {
            self.keys.last()
        };
        if let Some(w) = worst {
            self.boundary.tighten_inclusive(&w.0);
        }
    }
}

/// Hash-aggregate fully materialized rows.
pub fn aggregate_rows(
    input_schema: &Schema,
    rows: impl IntoIterator<Item = Vec<Value>>,
    group_by: &[String],
    aggs: &[AggFunc],
    mut key_filter: Option<(&mut DistinctKeyTopK, usize)>,
) -> Result<Vec<Vec<Value>>> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input_schema.index_of(g))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| {
            a.input_column()
                .map(|c| input_schema.index_of(c))
                .transpose()
        })
        .collect::<Result<_>>()?;
    let agg_float: Vec<bool> = agg_idx
        .iter()
        .map(|i| {
            i.map(|idx| input_schema.fields()[idx].ty == snowprune_types::ScalarType::Float)
                .unwrap_or(false)
        })
        .collect();
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    for row in rows {
        if let Some((topk, key_pos)) = key_filter.as_mut() {
            let key_val = &row[group_idx[*key_pos]];
            if !topk.offer(key_val) {
                continue;
            }
        }
        let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
        let states = groups.entry(key).or_insert_with(|| {
            aggs.iter()
                .zip(&agg_float)
                .map(|(a, &f)| AggState::new(a, f))
                .collect()
        });
        for ((state, idx), _) in states.iter_mut().zip(&agg_idx).zip(aggs) {
            state.update(idx.map(|i| &row[i]));
        }
    }
    let mut out: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.iter().map(AggState::finish));
            key
        })
        .collect();
    // Deterministic output order for tests.
    out.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            match x.total_ord_cmp(y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowprune_storage::Field;
    use snowprune_types::ScalarType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", ScalarType::Str),
            Field::new("v", ScalarType::Int),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Str("a".into()), Value::Int(1)],
            vec![Value::Str("b".into()), Value::Int(10)],
            vec![Value::Str("a".into()), Value::Int(2)],
            vec![Value::Str("b".into()), Value::Null],
            vec![Value::Str("c".into()), Value::Int(7)],
        ]
    }

    #[test]
    fn basic_aggregation() {
        let out = aggregate_rows(
            &schema(),
            rows(),
            &["g".into()],
            &[
                AggFunc::CountStar,
                AggFunc::Count("v".into()),
                AggFunc::Sum("v".into()),
                AggFunc::Min("v".into()),
                AggFunc::Max("v".into()),
                AggFunc::Avg("v".into()),
            ],
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        // Group "b": 2 rows, 1 non-null v.
        let b = out.iter().find(|r| r[0] == Value::Str("b".into())).unwrap();
        assert_eq!(b[1], Value::Int(2)); // count(*)
        assert_eq!(b[2], Value::Int(1)); // count(v)
        assert_eq!(b[3], Value::Int(10)); // sum
        assert_eq!(b[4], Value::Int(10)); // min
        assert_eq!(b[5], Value::Int(10)); // max
        assert_eq!(b[6], Value::Float(10.0)); // avg
    }

    #[test]
    fn empty_group_sums_are_null() {
        let out = aggregate_rows(
            &schema(),
            vec![vec![Value::Str("a".into()), Value::Null]],
            &["g".into()],
            &[AggFunc::Sum("v".into()), AggFunc::Avg("v".into())],
            None,
        )
        .unwrap();
        assert_eq!(out[0][1], Value::Null);
        assert_eq!(out[0][2], Value::Null);
    }

    #[test]
    fn distinct_key_topk_filters_groups_and_feeds_boundary() {
        let boundary = Boundary::new(true);
        let mut topk = DistinctKeyTopK::new(2, true, Arc::clone(&boundary));
        assert!(topk.offer(&Value::Str("a".into())));
        assert!(topk.offer(&Value::Str("c".into())));
        assert_eq!(boundary.get(), Some(Value::Str("a".into())));
        // "b" beats the current worst "a".
        assert!(topk.offer(&Value::Str("b".into())));
        assert_eq!(boundary.get(), Some(Value::Str("b".into())));
        // "a" no longer qualifies.
        assert!(!topk.offer(&Value::Str("a".into())));
        // Existing member still qualifies.
        assert!(topk.offer(&Value::Str("c".into())));
    }

    #[test]
    fn aggregation_with_key_filter_drops_hopeless_groups() {
        let boundary = Boundary::new(true);
        let mut topk = DistinctKeyTopK::new(2, true, Arc::clone(&boundary));
        let out = aggregate_rows(
            &schema(),
            rows(),
            &["g".into()],
            &[AggFunc::CountStar],
            Some((&mut topk, 0)),
        )
        .unwrap();
        // Keys a, b, c arrive in order; top-2 by key desc = {b, c}. "a" was
        // admitted early (heap not full) but later rows for dropped keys
        // are filtered; surviving output may include the stale "a" group,
        // which the final Sort+Limit above removes. At minimum b and c
        // must be present and complete.
        let b = out.iter().find(|r| r[0] == Value::Str("b".into())).unwrap();
        assert_eq!(b[1], Value::Int(2));
        let c = out.iter().find(|r| r[0] == Value::Str("c".into())).unwrap();
        assert_eq!(c[1], Value::Int(1));
    }
}
