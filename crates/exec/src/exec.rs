//! The query executor: runs logical plans against a catalog with all four
//! pruning techniques wired in at their proper phases (§7):
//!
//! 1. **Filter pruning** at scan compilation (compile time).
//! 2. **LIMIT pruning** when the LIMIT pushes down to a scan (compile time).
//! 3. **Join pruning** after the build side materializes (runtime).
//! 4. **Top-k pruning** via a boundary shared between the top-k heap and
//!    the scan, with the scan pipelined partition-at-a-time (runtime).
//!
//! Plus the §8.2 **predicate cache**: when an (optionally shared) cache is
//! attached, query admission fingerprints the plan (exact mode), and a hit
//! restricts the compiled scan set to the cached contributing partitions
//! *before* morsel generation — the pool and prefetch pipeline only ever
//! see cached contributors (plus DML-appended partitions). On a miss, the
//! query records its own contributors as it executes: the top-k heap keeps
//! each survivor's source partition (plus the partition of every row tied
//! with the final boundary value, tracked exactly), and filter scans keep
//! the partitions that emitted at least one selected row. The entry is
//! inserted at query completion at the snapshot's table version.

use std::collections::HashSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use snowprune_cache::{CacheEntry, CacheLookup, CacheStats, EntryKind, PredicateCache, ShapeKey};
use snowprune_core::filter::FilterPruner;
use snowprune_core::join::{prune_probe_side, BloomFilter, JoinSummary};
use snowprune_core::limit::{prune_for_limit, LimitOutcome};
use snowprune_core::topk::{initial_boundary, order_scan_set, Boundary, TopKHeap, TopKScanStats};
use snowprune_core::QueryPruningReport;
use snowprune_plan::{
    detect_topk, fingerprint, limit_pushdown, predicate_column_names, shape_signature,
    FingerprintMode, JoinType, LimitPushdown, Plan, SortKey, TopKShape, TopKSpec,
};
use snowprune_storage::{Catalog, IoSnapshot, IoStats, PartitionId, PartitionMeta, Schema, Table};
use snowprune_types::{Error, Result, Value};

use snowprune_plan::AggFunc;

use crate::agg::{aggregate_rows, DistinctKeyTopK};
use crate::config::{ExecConfig, PredicateCacheMode};
use crate::pool::{MorselPool, QueryId, ScanJobSpec, ScanTicket};
use crate::rows::RowSet;
use crate::scan::{stream_scan, CompiledScan, ScanHooks, ScanRunStats};
use crate::vector::{Batch, BatchAggregator, BatchChain, JoinBuild};

/// Execution report: core pruning accounting plus technique-level detail.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Per-technique partition pruning tallies.
    pub pruning: QueryPruningReport,
    /// Compile-time LIMIT pruning outcome, when the plan had a LIMIT.
    pub limit_outcome: Option<LimitOutcome>,
    /// The Figure 7 top-k shape, when the plan was a top-k query.
    pub topk_shape: Option<TopKShape>,
    /// Boundary-pruning counters of the top-k scan.
    pub topk_stats: TopKScanStats,
    /// Serialized size of the build-side join summaries (§6.1).
    pub join_summary_bytes: u64,
    /// Rows skipped by the row-level Bloom filter inside joins.
    pub bloom_skipped_rows: u64,
    /// Aggregated per-partition pipeline counters over every scan this
    /// query executed (`considered == loaded + skipped + cancelled`).
    pub scan_stats: ScanRunStats,
    /// Predicate-cache interaction of this query (§8.2).
    pub cache: CacheOutcome,
    /// Compiled scan-set entries dropped by the cache-hit restriction.
    pub pruned_by_cache: u64,
    /// Structured cache-shape eligibility explanation from the static
    /// analyzer: why this plan is or isn't predicate-cacheable (§8.2).
    /// Computed on every run, whether or not a cache is attached; the
    /// executor debug-asserts it agrees with its own admission decision.
    pub cacheability: Option<snowprune_analyze::CacheReport>,
}

/// How a query interacted with the predicate cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache attached, or the plan shape is not cacheable.
    #[default]
    NotConsulted,
    /// Consulted and missed; the query recorded a fresh entry.
    Miss,
    /// Consulted and hit on the exact fingerprint; the scan set was
    /// restricted to cached contributors (plus DML-appended partitions).
    Hit,
    /// Shape-mode fallback hit ([`PredicateCacheMode::Shape`]): a
    /// same-shape entry whose literal ranges subsume this query's served a
    /// sound superset of the contributing partitions.
    ShapeHit,
}

/// The result of running one query.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// The query's result rows.
    pub rows: RowSet,
    /// Pruning/caching report for the run.
    pub report: ExecReport,
    /// I/O performed by this query (counter delta).
    pub io: IoSnapshot,
    /// Real (host) wall-clock time of the run.
    pub wall: Duration,
}

#[derive(Default)]
struct RunState {
    report: ExecReport,
    limit_override: Option<LimitOverride>,
    /// This query's FIFO lane on the shared morsel pool.
    lane: QueryId,
    /// Predicate-cache context when the cache was consulted for this plan.
    cache: Option<CacheRun>,
}

struct LimitOverride {
    table: String,
    scan: CompiledScan,
}

/// Per-query predicate-cache context (§8.2).
struct CacheRun {
    fingerprint: u64,
    table: String,
    /// Shape-mode signature of the plan (shape mode only, shape-eligible
    /// plans only); attached to the entry a miss records so later queries
    /// can be served by subsumption.
    shape: Option<ShapeKey>,
    /// Hit: restrict the table's compiled scan set to these partitions —
    /// provided the snapshot still carries the version the lookup was
    /// validated against (a concurrent DML between lookup and snapshot
    /// falls back to the full scan set rather than under-scanning).
    restrict: Option<(HashSet<PartitionId>, u64)>,
    /// Miss: record a fresh entry during execution, inserted at completion.
    record: Option<CacheRecorder>,
}

/// What the cache entry under construction caches.
enum RecordKind {
    Filter,
    TopK { order_column: String },
}

/// Collects a query's contributing partitions while it executes.
struct CacheRecorder {
    kind: RecordKind,
    /// Column names referenced by the plan's predicates (UPDATE rules).
    predicate_columns: Vec<String>,
    /// Version of the table snapshot the recorded partitions refer to;
    /// captured when the target scan compiles. `None` aborts recording.
    snapshot_version: Option<u64>,
    /// Other tables this query scanned (join build/probe sides), with the
    /// versions it saw. Recorded as auxiliary dependencies on the entry:
    /// a warm replay restricting the target scan is only sound while every
    /// other side of the join is byte-identical, so lookups reject the
    /// entry once any auxiliary table's version moves.
    aux: Vec<(String, u64)>,
    /// Set when an auxiliary table was seen at two different versions
    /// within one query (concurrent DML mid-run): the recording is not a
    /// consistent snapshot and must be discarded.
    aux_poisoned: bool,
    /// Filter shape: partitions that emitted at least one selected row
    /// (pooled scan workers insert concurrently).
    survivors: Arc<Mutex<HashSet<PartitionId>>>,
    /// TopK shape, set by `exec_topk` at heap drain: the source partition
    /// of every heap survivor plus of every row tied with the final
    /// boundary value. `None` provenance aborts recording.
    topk: Option<Vec<Option<PartitionId>>>,
}

impl CacheRecorder {
    fn is_topk(&self) -> bool {
        matches!(self.kind, RecordKind::TopK { .. })
    }

    /// Assemble the finished entry; `None` when recording never completed
    /// (the plan bypassed the expected execution path). `shape` is the
    /// plan's shape-mode key (shape mode only) and `partitions_total` the
    /// table's compiled scan-set size, from which the eviction policy's
    /// cost signal (loads a warm replay saves) is derived.
    fn finish(
        self,
        table: String,
        shape: Option<ShapeKey>,
        partitions_total: u64,
    ) -> Option<CacheEntry> {
        let CacheRecorder {
            kind,
            predicate_columns,
            snapshot_version,
            mut aux,
            aux_poisoned,
            survivors,
            topk,
        } = self;
        if aux_poisoned {
            return None;
        }
        let table_version = snapshot_version?;
        let (kind, mut partitions) = match kind {
            RecordKind::Filter => {
                let parts: Vec<PartitionId> =
                    std::mem::take(&mut *survivors.lock()).into_iter().collect();
                (EntryKind::Filter, parts)
            }
            RecordKind::TopK { order_column } => {
                let parts: Vec<PartitionId> = topk?.into_iter().collect::<Option<_>>()?;
                (EntryKind::TopK { order_column }, parts)
            }
        };
        partitions.sort_unstable();
        partitions.dedup();
        aux.sort();
        aux.dedup();
        let saved_loads = partitions_total.saturating_sub(partitions.len() as u64);
        Some(CacheEntry {
            kind,
            table,
            partitions,
            predicate_columns,
            table_version,
            appended: Vec::new(),
            shape,
            saved_loads,
            aux_tables: aux,
        })
    }
}

/// Which §8.2 shape a plan caches as: a top-k above a (filtered) scan —
/// including through a join, now that joined rows carry the spine side's
/// partition provenance — a filtered aggregation over one scan, or a plain
/// filter chain over one scan. LIMIT-without-ORDER-BY shapes and top-k
/// over GROUP BY are not cached: their contributing sets are either
/// timing-dependent (early stop) or not partition-attributable
/// (distinct-key filtering drops rows before the heap sees them).
fn cacheable_shape(plan: &Plan, topk_enabled: bool) -> Option<(String, RecordKind)> {
    if let Some(spec) = detect_topk(plan) {
        // Only the heap execution path records survivor provenance.
        if !topk_enabled {
            return None;
        }
        let provenance_exact = match spec.shape {
            TopKShape::AboveScan => true,
            // Joined rows carry the target-side partition per row, so the
            // heap records an exact contributor set — provided the target
            // table is scanned exactly once in the plan (a self-join's
            // second scan would be wrongly restricted on replay). The
            // other side's tables become auxiliary dependencies.
            TopKShape::JoinProbeSide | TopKShape::OuterJoinBuildSide => {
                count_scans_of(plan, &spec.target_table) == 1
            }
            TopKShape::AboveAggregation => false,
        };
        if provenance_exact {
            return Some((
                spec.target_table,
                RecordKind::TopK {
                    order_column: spec.order_column,
                },
            ));
        }
        return None;
    }
    // Filtered aggregation over one scan: the aggregate folds exactly the
    // chain's output rows, so the scan's filter survivors are a sound (and
    // exact) replay set for the whole aggregation.
    if let Plan::Aggregate { input, .. } = plan {
        if let Some((_, table, predicate)) = split_chain(input) {
            if predicate.is_some() {
                return Some((table.to_owned(), RecordKind::Filter));
            }
        }
        return None;
    }
    if let Some((_, table, predicate)) = split_chain(plan) {
        if predicate.is_some() {
            return Some((table.to_owned(), RecordKind::Filter));
        }
    }
    None
}

/// The pruning-aware query executor.
pub struct Executor {
    catalog: Catalog,
    cfg: ExecConfig,
    io: IoStats,
    /// Shared scan worker pool; `None` runs scans sequentially in the
    /// driver. [`Executor::new`] creates a private pool when
    /// `scan_threads > 1`; [`Executor::with_pool`] (used by
    /// [`crate::Session`]) shares one pool across many executors so
    /// concurrent queries share `scan_threads` workers instead of
    /// N×threads.
    pool: Option<Arc<MorselPool>>,
    /// §8.2 predicate cache. [`Executor::new`] creates a private cache
    /// when `cfg.predicate_cache` is set; [`crate::Session`] replaces it
    /// with the session-shared one via [`Executor::with_shared_cache`].
    cache: Option<Arc<Mutex<PredicateCache>>>,
}

impl Executor {
    /// An executor over `catalog` with a private pool (when
    /// `cfg.scan_threads > 1`) and a private predicate cache (when
    /// `cfg.predicate_cache` is set).
    pub fn new(catalog: Catalog, cfg: ExecConfig) -> Self {
        let pool = (cfg.scan_threads > 1).then(|| MorselPool::new(cfg.scan_threads));
        let cache = new_cache(&cfg);
        Executor {
            catalog,
            cfg,
            io: IoStats::new(),
            pool,
            cache,
        }
    }

    /// An executor drawing scan workers from an existing shared pool.
    pub fn with_pool(catalog: Catalog, cfg: ExecConfig, pool: Arc<MorselPool>) -> Self {
        let cache = new_cache(&cfg);
        Executor {
            catalog,
            cfg,
            io: IoStats::new(),
            pool: Some(pool),
            cache,
        }
    }

    /// Replace the executor's predicate cache with a shared one (or detach
    /// it with `None`). [`crate::Session`] uses this so every per-query
    /// executor consults the same session-owned cache.
    pub fn with_shared_cache(mut self, cache: Option<Arc<Mutex<PredicateCache>>>) -> Self {
        self.cache = cache;
        self
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// This executor's I/O counters (cumulative across its queries).
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// The attached worker pool, when scans run pooled.
    pub fn pool(&self) -> Option<&Arc<MorselPool>> {
        self.pool.as_ref()
    }

    /// The attached predicate cache, when one is enabled.
    pub fn cache(&self) -> Option<&Arc<Mutex<PredicateCache>>> {
        self.cache.as_ref()
    }

    /// Counters of the attached predicate cache (defaults when detached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.lock().stats())
            .unwrap_or_default()
    }

    /// Execute a plan, returning rows plus the pruning report.
    ///
    /// # Errors
    /// Besides the structural [`Plan::check`] errors, when
    /// [`ExecConfig::verify_plans`] is set (the default) the static plan
    /// analyzer runs at admission and ill-formed plans — unresolvable
    /// columns, provably-degenerate predicate typing, incomparable join
    /// keys, empty sort keys, mistyped aggregate inputs — are rejected
    /// with [`Error::PlanRejected`] before any morsel is generated.
    pub fn run(&self, plan: &Plan) -> Result<QueryOutput> {
        plan.check()?;
        let cacheability = if self.cfg.verify_plans {
            snowprune_analyze::verify_with(plan, self.cfg.enable_topk_pruning)?.cacheability
        } else {
            snowprune_analyze::explain_cacheability(plan, self.cfg.enable_topk_pruning)
        };
        // Keep the analyzer's public explanation and the executor's private
        // admission decision from drifting: every debug-mode run checks
        // they agree on both eligibility and the target table/shape.
        #[cfg(debug_assertions)]
        {
            let mirror = cacheable_shape(plan, self.cfg.enable_topk_pruning)
                .map(|(t, k)| (t, matches!(k, RecordKind::TopK { .. })));
            let analyzed = cacheability.shape.as_ref().map(|s| match s {
                snowprune_analyze::CacheShape::TopK { table, .. } => (table.clone(), true),
                snowprune_analyze::CacheShape::Filter { table } => (table.clone(), false),
            });
            debug_assert_eq!(
                analyzed, mirror,
                "static analyzer cacheability explanation drifted from the \
                 executor's cacheable_shape: {:?}",
                cacheability.reasons
            );
        }
        let io_before = self.io.snapshot();
        let start = Instant::now();
        let mut st = RunState {
            lane: self.pool.as_ref().map_or(0, |p| p.next_lane()),
            ..RunState::default()
        };
        st.report.cacheability = Some(cacheability);
        if let Some(cache) = &self.cache {
            st.cache = self.consult_cache(plan, cache, &mut st.report);
        }
        let topk = detect_topk(plan);
        st.report.pruning.topk_eligible = topk.is_some();
        st.report.pruning.limit_eligible =
            !matches!(limit_pushdown(plan), LimitPushdown::NotALimitQuery);
        st.report.pruning.join_eligible = has_join(plan);
        st.report.pruning.filter_eligible = has_predicate(plan);
        let rows = match (&topk, self.cfg.enable_topk_pruning) {
            (Some(spec), true) => self.exec_topk(plan, spec, &mut st)?,
            _ => self.exec_node(plan, &mut st)?,
        };
        // Population happens at query completion: a missed cacheable query
        // inserts the contributing-partition set it just recorded.
        if let Some(cr) = st.cache.take() {
            if let (Some(rec), Some(cache)) = (cr.record, self.cache.as_ref()) {
                if let Some(entry) =
                    rec.finish(cr.table, cr.shape, st.report.pruning.partitions_total)
                {
                    cache.lock().insert(cr.fingerprint, entry);
                }
            }
        }
        let wall = start.elapsed();
        let io = self.io.snapshot().since(&io_before);
        st.report.pruning.partitions_scanned = io.partitions_loaded;
        Ok(QueryOutput {
            rows,
            report: st.report,
            io,
            wall,
        })
    }

    /// Fingerprint a cacheable plan and look it up, arming either the
    /// scan-set restriction (exact or shape hit) or a recorder (miss). In
    /// [`PredicateCacheMode::Shape`], shape-eligible plans additionally
    /// carry their literal-abstracted signature: a miss on the exact
    /// fingerprint falls back to any same-shape entry whose recorded
    /// ranges subsume this query's, and a recorded entry is indexed for
    /// later subsumption lookups.
    fn consult_cache(
        &self,
        plan: &Plan,
        cache: &Arc<Mutex<PredicateCache>>,
        report: &mut ExecReport,
    ) -> Option<CacheRun> {
        let (table, kind) = cacheable_shape(plan, self.cfg.enable_topk_pruning)?;
        let live_version = self.catalog.get(&table).ok()?.read().version();
        let fp = fingerprint(plan, FingerprintMode::Exact);
        let shape = (self.cfg.predicate_cache_mode == PredicateCacheMode::Shape)
            .then(|| shape_signature(plan))
            .flatten();
        // Auxiliary-table freshness: entries recorded through a join also
        // pin the versions of every *other* table the query scanned; the
        // lookup rejects an entry whose auxiliary versions moved. (There is
        // an unavoidable window between this check and the aux scans
        // actually compiling — a DML in between falls back to the target
        // restriction being validated against a stale-but-sound superset
        // recorded at insert; the sequential test suites never race it.)
        let aux_live = |t: &str| self.catalog.get(t).ok().map(|h| h.read().version());
        let served = match cache
            .lock()
            .lookup_with_aux(fp, shape.as_ref(), live_version, &aux_live)
        {
            CacheLookup::Hit(parts) => Some((CacheOutcome::Hit, parts)),
            CacheLookup::ShapeHit(parts) => Some((CacheOutcome::ShapeHit, parts)),
            CacheLookup::Miss => None,
        };
        let (restrict, record) = match served {
            Some((outcome, parts)) => {
                report.cache = outcome;
                (Some((parts.into_iter().collect(), live_version)), None)
            }
            None => {
                report.cache = CacheOutcome::Miss;
                let recorder = CacheRecorder {
                    kind,
                    predicate_columns: predicate_column_names(plan),
                    snapshot_version: None,
                    aux: Vec::new(),
                    aux_poisoned: false,
                    survivors: Arc::new(Mutex::new(HashSet::new())),
                    topk: None,
                };
                (None, Some(recorder))
            }
        };
        Some(CacheRun {
            fingerprint: fp,
            table,
            shape,
            restrict,
            record,
        })
    }

    // ---- generic recursive execution ----------------------------------

    fn exec_node(&self, plan: &Plan, st: &mut RunState) -> Result<RowSet> {
        match plan {
            Plan::Scan {
                table, predicate, ..
            } => self.exec_scan(table, predicate.as_ref(), st),
            Plan::Filter { input, predicate } => {
                let input_rows = self.exec_node(input, st)?;
                let bound = predicate.bind(&input_rows.schema)?;
                let rows = input_rows
                    .rows
                    .into_iter()
                    .filter(|r| snowprune_expr::eval_predicate(&bound, r).qualifies())
                    .collect();
                Ok(RowSet {
                    schema: input_rows.schema,
                    rows,
                })
            }
            Plan::Project { input, columns } => {
                let input_rows = self.exec_node(input, st)?;
                let idxs: Vec<usize> = columns
                    .iter()
                    .map(|c| input_rows.schema.index_of(c))
                    .collect::<Result<_>>()?;
                let schema = plan.schema()?;
                let rows = input_rows
                    .rows
                    .into_iter()
                    .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                Ok(RowSet { schema, rows })
            }
            Plan::Join { .. } => self.exec_join(plan, st, None),
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                // Batch-native GROUP BY when the input is a chain over a
                // scan: columns fold straight into typed accumulators.
                if self.cfg.batch_native {
                    if let Some(out) = self.exec_batch_aggregate(plan, input, group_by, aggs, st)? {
                        return Ok(out);
                    }
                }
                let input_rows = self.exec_node(input, st)?;
                let rows =
                    aggregate_rows(&input_rows.schema, input_rows.rows, group_by, aggs, None)?;
                Ok(RowSet {
                    schema: plan.schema()?,
                    rows,
                })
            }
            Plan::Sort { input, keys } => {
                let input_rows = self.exec_node(input, st)?;
                sort_rows(input_rows, keys)
            }
            Plan::Limit { input, k, offset } => self.exec_limit(plan, input, *k, *offset, st),
        }
    }

    fn exec_limit(
        &self,
        whole: &Plan,
        input: &Plan,
        k: u64,
        offset: u64,
        st: &mut RunState,
    ) -> Result<RowSet> {
        let need = (k + offset) as usize;
        // Compile-time LIMIT pruning (§4).
        if self.cfg.enable_limit_pruning && self.cfg.enable_filter_pruning {
            match limit_pushdown(whole) {
                LimitPushdown::Supported {
                    table, predicates, ..
                } => {
                    let conj = predicates.into_iter().reduce(|a, b| a.and(b));
                    let handle = self.catalog.get(&table)?;
                    let snapshot = Arc::new(handle.read().clone());
                    let mut scan = CompiledScan::compile(
                        &table,
                        snapshot,
                        conj.as_ref(),
                        true,
                        &self.cfg.filter,
                        &self.io,
                        &self.cfg.io_cost,
                    )?;
                    st.report.pruning.partitions_total += scan.partitions_total as u64;
                    st.report.pruning.pruned_by_filter += scan.pruned_by_filter;
                    st.report.pruning.fully_matching += scan.fully_matching;
                    let res = prune_for_limit(&scan.scan_set, k + offset);
                    st.report.limit_outcome = Some(res.outcome);
                    st.report.pruning.pruned_by_limit +=
                        (res.partitions_before - res.scan_set.len()) as u64;
                    scan.scan_set = res.scan_set;
                    st.limit_override = Some(LimitOverride { table, scan });
                }
                LimitPushdown::Unsupported { .. } => {
                    st.report.limit_outcome = Some(LimitOutcome::Unsupported(
                        snowprune_core::limit::UnsupportedReason::PlanShape,
                    ));
                }
                LimitPushdown::NotALimitQuery => {}
            }
        }
        // Execute with early termination where the chain allows streaming.
        let rows = if let Some(streamed) = self.try_stream_limited(input, need, st)? {
            streamed
        } else {
            self.exec_node(input, st)?
        };
        let mut out = rows.rows;
        out.truncate(need);
        let final_rows = out.into_iter().skip(offset as usize).collect();
        st.limit_override = None;
        Ok(RowSet {
            schema: rows.schema,
            rows: final_rows,
        })
    }

    /// Stream a Filter*/Project* chain over a scan, stopping once `need`
    /// rows are produced ("most systems halt query processing when the
    /// LIMIT has been reached"). Returns `None` for non-streamable plans.
    fn try_stream_limited(
        &self,
        plan: &Plan,
        need: usize,
        st: &mut RunState,
    ) -> Result<Option<RowSet>> {
        let Some((chain, table, predicate)) = split_chain(plan) else {
            return Ok(None);
        };
        let scan = self.prepare_scan(table, predicate, st)?;
        let schema = plan.schema()?;
        let bound_chain = bind_chain(&chain, &scan.schema)?;
        if let Some(pool) = &self.pool {
            // Pooled morsels race to fill the limit — pre-assigned
            // partitions still model the §4.4 catch (n workers read at
            // least n partitions even if 1 would do). Row output is
            // reassembled in morsel order and truncated at the
            // deterministic prefix, so the result is byte-identical to the
            // sequential scan no matter how morsels interleave; only the
            // I/O overshoot is timing-dependent, exactly as in a real
            // warehouse.
            let pool = Arc::clone(pool);
            let (stats, mut out) =
                self.run_pooled_scan(&pool, st.lane, &scan, bound_chain, Some(need), None);
            st.report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
            st.report.scan_stats.merge(&stats);
            out.truncate(need);
            return Ok(Some(RowSet { schema, rows: out }));
        }
        let mut out = Vec::with_capacity(need.min(4096));
        let runtime_pruner = self.runtime_pruner_for(&scan).map(Mutex::new);
        let hooks = ScanHooks {
            boundary: None,
            runtime_pruner: runtime_pruner.as_ref(),
            prefetch_depth: self.cfg.prefetch_depth,
            batch_rows: self.cfg.batch_rows,
        };
        let stats = stream_scan(&scan, &self.io, &self.cfg.io_cost, &hooks, |batch| {
            let mut sel = batch.sel.clone();
            bound_chain.refine(&batch.part, &mut sel);
            for i in sel.iter() {
                if out.len() >= need {
                    break;
                }
                out.push(bound_chain.materialize(&batch.part, i));
            }
            if out.len() >= need {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        st.report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
        st.report.scan_stats.merge(&stats);
        out.truncate(need);
        Ok(Some(RowSet { schema, rows: out }))
    }

    // ---- scans ----------------------------------------------------------

    /// Compile (or fetch the LIMIT-pruned override for) a scan, recording
    /// report counters exactly once.
    fn prepare_scan(
        &self,
        table: &str,
        predicate: Option<&snowprune_expr::Expr>,
        st: &mut RunState,
    ) -> Result<CompiledScan> {
        if let Some(ov) = &st.limit_override {
            if ov.table == table {
                // Counted when the override was created.
                return Ok(ov.scan.clone());
            }
        }
        let handle = self.catalog.get(table)?;
        let snapshot = Arc::new(handle.read().clone());
        let mut scan = CompiledScan::compile(
            table,
            snapshot,
            predicate,
            self.cfg.enable_filter_pruning,
            &self.cfg.filter,
            &self.io,
            &self.cfg.io_cost,
        )?;
        st.report.pruning.partitions_total += scan.partitions_total as u64;
        st.report.pruning.pruned_by_filter += scan.pruned_by_filter;
        st.report.pruning.fully_matching += scan.fully_matching;
        // Auxiliary-dependency recording: while a recorder is armed, any
        // scan of a table *other than* the record target (a join's other
        // side) pins that table's version on the entry. Seeing the same
        // auxiliary table at two versions within one query means a DML
        // landed mid-run — the recording is inconsistent and is poisoned.
        if let Some(cr) = &mut st.cache {
            if let Some(rec) = &mut cr.record {
                if cr.table != table {
                    let v = scan.table.version();
                    match rec.aux.iter().find(|(t, _)| t == table) {
                        Some((_, seen)) if *seen != v => rec.aux_poisoned = true,
                        Some(_) => {}
                        None => rec.aux.push((table.to_owned(), v)),
                    }
                }
            }
        }
        // Cache hit: restrict the scan set to the cached contributors
        // before any morsel is generated — but only if the snapshot still
        // matches the version the lookup validated against (a concurrent
        // DML in between would make the restriction under-scan).
        if let Some(cr) = &st.cache {
            if let Some((parts, expected_version)) = &cr.restrict {
                if cr.table == table && scan.table.version() == *expected_version {
                    let before = scan.scan_set.len();
                    scan.scan_set.entries.retain(|e| parts.contains(&e.id));
                    st.report.pruned_by_cache += (before - scan.scan_set.len()) as u64;
                }
            }
        }
        Ok(scan)
    }

    fn runtime_pruner_for(&self, scan: &CompiledScan) -> Option<FilterPruner> {
        if scan.deferred_ids.is_empty() {
            return None;
        }
        scan.predicate
            .as_ref()
            .map(|p| FilterPruner::new(p, self.cfg.filter.clone()))
    }

    fn exec_scan(
        &self,
        table: &str,
        predicate: Option<&snowprune_expr::Expr>,
        st: &mut RunState,
    ) -> Result<RowSet> {
        let scan = self.prepare_scan(table, predicate, st)?;
        let schema = scan.schema.clone();
        // Filter-shape cache recording: remember every partition that
        // emits at least one selected row ("partitions containing rows
        // matching a filter predicate", §8.2).
        let survivors = match &mut st.cache {
            Some(cr) if cr.table == table => match &mut cr.record {
                Some(rec) if !rec.is_topk() => {
                    rec.snapshot_version = Some(scan.table.version());
                    Some(Arc::clone(&rec.survivors))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(pool) = &self.pool {
            let pool = Arc::clone(pool);
            let chain = BatchChain::identity(schema.len());
            let (stats, rows) = self.run_pooled_scan(&pool, st.lane, &scan, chain, None, survivors);
            st.report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
            st.report.scan_stats.merge(&stats);
            return Ok(RowSet { schema, rows });
        }
        let mut rows = Vec::new();
        let runtime_pruner = self.runtime_pruner_for(&scan).map(Mutex::new);
        let hooks = ScanHooks {
            boundary: None,
            runtime_pruner: runtime_pruner.as_ref(),
            prefetch_depth: self.cfg.prefetch_depth,
            batch_rows: self.cfg.batch_rows,
        };
        let stats = stream_scan(&scan, &self.io, &self.cfg.io_cost, &hooks, |batch| {
            if !batch.is_empty() {
                if let Some(s) = &survivors {
                    s.lock().insert(batch.part.meta.id);
                }
            }
            rows.extend(batch.sel.iter().map(|i| batch.part.row(i)));
            ControlFlow::Continue(())
        });
        st.report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
        st.report.scan_stats.merge(&stats);
        Ok(RowSet { schema, rows })
    }

    /// Run a scan as pooled morsels, applying `chain` worker-side and
    /// collecting rows per morsel so the returned vector is in exact
    /// scan-set order no matter which worker ran which morsel. With
    /// `need = Some(k)`, a [`LimitTracker`] arms the deterministic
    /// prefix-based early stop; with `None` the scan always runs to
    /// completion.
    fn run_pooled_scan(
        &self,
        pool: &Arc<MorselPool>,
        lane: QueryId,
        scan: &CompiledScan,
        chain: BatchChain,
        need: Option<usize>,
        survivors: Option<Arc<Mutex<HashSet<PartitionId>>>>,
    ) -> (ScanRunStats, Vec<Vec<Value>>) {
        let morsels = scan
            .scan_set
            .len()
            .div_ceil(self.cfg.morsel_partitions.max(1));
        let slots: Arc<Vec<Mutex<Vec<Vec<Value>>>>> =
            Arc::new((0..morsels).map(|_| Mutex::new(Vec::new())).collect());
        let tracker = need.map(|_| Arc::new(LimitTracker::new(morsels)));
        let sink_slots = Arc::clone(&slots);
        let sink_tracker = tracker.clone();
        let sink: Box<crate::pool::PartitionSink> = Box::new(move |mi, batch| {
            if !batch.is_empty() {
                if let Some(s) = &survivors {
                    s.lock().insert(batch.part.meta.id);
                }
            }
            let mut local = chain.apply(&batch);
            if let Some(t) = &sink_tracker {
                t.rows_per_morsel[mi].fetch_add(local.len(), Ordering::AcqRel);
            }
            sink_slots[mi].lock().append(&mut local);
        });
        let (stop, on_morsel_done): (
            Box<crate::pool::StopFn>,
            Option<Box<crate::pool::MorselDoneFn>>,
        ) = match (need, tracker) {
            (Some(need), Some(t)) => {
                let stop_t = Arc::clone(&t);
                (
                    Box::new(move || stop_t.prefix_rows() >= need),
                    Some(Box::new(move |mi| t.complete(mi))),
                )
            }
            _ => (Box::new(|| false), None),
        };
        let stats = pool
            .submit(
                lane,
                ScanJobSpec {
                    scan: scan.clone(),
                    io: self.io.clone(),
                    io_cost: self.cfg.io_cost,
                    boundary: None,
                    runtime_pruner: self.runtime_pruner_for(scan),
                    morsel_partitions: self.cfg.morsel_partitions,
                    prefetch_depth: self.cfg.prefetch_depth,
                    batch_rows: self.cfg.batch_rows,
                    sink,
                    stop,
                    on_morsel_done,
                },
            )
            .wait();
        let rows = slots
            .iter()
            .flat_map(|slot| std::mem::take(&mut *slot.lock()))
            .collect();
        (stats, rows)
    }

    /// Stream a scan's rows — after applying `chain` — into a driver-side
    /// sequential `sink`, using the morsel pool when one is attached and
    /// falling back to the in-driver sequential scan otherwise. This is
    /// the single streaming primitive behind the top-k spine and join
    /// probe sides, so the boundary and deferred-filter hooks behave
    /// identically on both paths: workers prune against the live (possibly
    /// stale) boundary, while heap updates flow back through the driver.
    /// Each row arrives with its source partition, which the predicate
    /// cache records alongside top-k heap survivors (§8.2).
    fn stream_chain_rows(
        &self,
        scan: &CompiledScan,
        lane: QueryId,
        boundary: Option<(&Arc<Boundary>, usize)>,
        chain: &BatchChain,
        sink: &mut dyn FnMut(Vec<Value>, PartitionId),
    ) -> ScanRunStats {
        if let Some(pool) = &self.pool {
            // Workers evaluate predicates/projections and funnel row
            // batches through a channel; the driver applies `sink`
            // sequentially while later morsels are still scanning, so
            // boundary tightenings from the heap reach the workers
            // mid-scan. The channel is bounded (a few batches per worker)
            // so a slow driver back-pressures the workers instead of
            // buffering the whole selected row set. Rows arrive in
            // morsel-completion order, which is timing-dependent: for a
            // top-k consumer this means ties at the k-th ORDER BY value
            // are broken by arrival rather than scan order (SQL-legal;
            // unique-key results stay fully deterministic).
            let (tx, rx) = std::sync::mpsc::sync_channel::<(PartitionId, Vec<Vec<Value>>)>(
                pool.worker_count() * 4,
            );
            let chain = Arc::new(chain.clone());
            let ticket: ScanTicket = pool.submit(
                lane,
                ScanJobSpec {
                    scan: scan.clone(),
                    io: self.io.clone(),
                    io_cost: self.cfg.io_cost,
                    boundary: boundary.map(|(b, col)| (Arc::clone(b), col)),
                    runtime_pruner: self.runtime_pruner_for(scan),
                    morsel_partitions: self.cfg.morsel_partitions,
                    prefetch_depth: self.cfg.prefetch_depth,
                    batch_rows: self.cfg.batch_rows,
                    sink: Box::new(move |_, batch| {
                        let rows = chain.apply(&batch);
                        if !rows.is_empty() {
                            // SyncSender sends through &self, so workers
                            // contend only on the channel itself.
                            let _ = tx.send((batch.part.meta.id, rows));
                        }
                    }),
                    stop: Box::new(|| false),
                    on_morsel_done: None,
                },
            );
            // The job (and with it the sender) drops when its last morsel
            // finishes, ending this loop.
            for (pid, batch) in rx {
                for row in batch {
                    sink(row, pid);
                }
            }
            return ticket.wait();
        }
        let runtime_pruner = self.runtime_pruner_for(scan).map(Mutex::new);
        let hooks = ScanHooks {
            boundary,
            runtime_pruner: runtime_pruner.as_ref(),
            prefetch_depth: self.cfg.prefetch_depth,
            batch_rows: self.cfg.batch_rows,
        };
        stream_scan(scan, &self.io, &self.cfg.io_cost, &hooks, |batch| {
            let pid = batch.part.meta.id;
            for r in chain.apply(&batch) {
                sink(r, pid);
            }
            ControlFlow::Continue(())
        })
    }

    // ---- joins ----------------------------------------------------------

    /// Execute a join. When `spine` is set, the given side streams through
    /// `spine`'s sink instead of materializing (top-k pipelines).
    fn exec_join(
        &self,
        plan: &Plan,
        st: &mut RunState,
        spine: Option<&mut SpineSink<'_>>,
    ) -> Result<RowSet> {
        let Plan::Join {
            build,
            probe,
            build_key,
            probe_key,
            join_type,
        } = plan
        else {
            return Err(Error::Invalid("exec_join on non-join".into()));
        };
        let out_schema = plan.schema()?;
        // Where joined rows go: materialized output, or straight into the
        // top-k spine sink so boundary updates apply mid-stream.
        let mut out: Vec<Vec<Value>> = Vec::new();
        let spine_hook = spine.as_ref().map(|s| (s.spec, Arc::clone(s.boundary)));
        match join_type {
            JoinType::Inner => {
                // Build side: batch-native bulk load when the side is a
                // chain over a scan, row-at-a-time fallback otherwise (or
                // when `batch_native` is off). Either way the same rows
                // arrive in the same order, so the §6 summary and Bloom
                // filter see identical key sequences.
                let jb = match self.try_batch_join_side(build, build_key, None, st)? {
                    Some(jb) => jb,
                    None => {
                        let build_rows = self.exec_node(build, st)?;
                        let bk = build_rows.schema.index_of(build_key)?;
                        let mut jb = JoinBuild::new();
                        for row in build_rows.rows {
                            let key = row[bk].clone();
                            jb.push_row(row, key);
                        }
                        jb
                    }
                };
                let summary = JoinSummary::build(jb.keys().iter(), self.cfg.join_summary);
                st.report.join_summary_bytes += summary.serialized_bytes() as u64;
                let mut bloom = self.cfg.join_bloom.then(|| {
                    let mut bf = BloomFilter::with_capacity(jb.rows().len());
                    for key in jb.keys() {
                        if !key.is_null() {
                            bf.insert(key);
                        }
                    }
                    bf
                });
                if bloom.is_some() && jb.no_matches_possible() {
                    bloom = None; // nothing to probe anyway
                }
                let mut bloom_skips = 0u64;
                let summary_opt = self.cfg.enable_join_pruning.then_some(&summary);
                let topk_hook = spine_hook.as_ref().map(|(spec, b)| (*spec, b));
                {
                    let mut mat_sink = |r: Vec<Value>, _: Option<PartitionId>| out.push(r);
                    let row_sink: RowSink<'_> = match spine {
                        Some(sp) => &mut *sp.f,
                        None => &mut mat_sink,
                    };
                    // Probe side. Joined rows carry the probe row's source
                    // partition — the spine side of a top-k-over-join — so
                    // §8.2 provenance survives the join (it used to be
                    // dropped here, which silently disqualified every join
                    // shape from cache admission).
                    let batch_probe = if self.cfg.batch_native {
                        self.prepare_side_scan(probe, summary_opt, probe_key, topk_hook, st)?
                    } else {
                        None
                    };
                    match batch_probe {
                        Some(side) => {
                            // Batch-native probe: rows stay column-major
                            // through the hash lookup and materialize only
                            // on a match (late materialization).
                            let key_col =
                                side.chain.column_of(probe.schema()?.index_of(probe_key)?);
                            let boundary_hook =
                                topk_hook.and_then(|(_, b)| side.order_col.map(|c| (b, c)));
                            let stats = self.stream_chain_batches(
                                &side.scan,
                                st.lane,
                                boundary_hook,
                                &side.chain,
                                &mut |batch| {
                                    let pid = batch.part.meta.id;
                                    bloom_skips += jb.probe_batch(
                                        &batch,
                                        key_col,
                                        bloom.as_ref(),
                                        |i, matches| {
                                            let probe_row = side.chain.materialize(&batch.part, i);
                                            for &bi in matches {
                                                let mut row = jb.rows()[bi].clone();
                                                row.extend(probe_row.iter().cloned());
                                                row_sink(row, Some(pid));
                                            }
                                        },
                                    );
                                },
                            );
                            merge_side_stats(&mut st.report, &stats, side.order_col.is_some());
                        }
                        None => {
                            let probe_schema = probe.schema()?;
                            let pk = probe_schema.index_of(probe_key)?;
                            let mut emit = |probe_row: Vec<Value>, pid: Option<PartitionId>| {
                                let pk_val = &probe_row[pk];
                                if pk_val.is_null() {
                                    return;
                                }
                                if let Some(bf) = &bloom {
                                    if !bf.might_contain(pk_val) {
                                        bloom_skips += 1;
                                        return;
                                    }
                                }
                                if let Some(matches) = jb.matches(pk_val) {
                                    for &bi in matches {
                                        let mut row = jb.rows()[bi].clone();
                                        row.extend(probe_row.iter().cloned());
                                        row_sink(row, pid);
                                    }
                                }
                            };
                            self.exec_side_with_pruning(
                                probe,
                                summary_opt,
                                probe_key,
                                topk_hook,
                                st,
                                &mut emit,
                            )?;
                        }
                    }
                }
                st.report.bloom_skipped_rows += bloom_skips;
                Ok(RowSet {
                    schema: out_schema,
                    rows: out,
                })
            }
            JoinType::OuterPreserveBuild => {
                // The preserved build side streams; the probe side is the
                // lookup table. Without a spine we can materialize the build
                // first and use its keys to join-prune the probe (§6); with
                // a top-k spine the build streams, so the probe is loaded
                // unpruned (its keys are needed before any build row flows).
                let build_schema = build.schema()?;
                let bk = build_schema.index_of(build_key)?;
                let probe_width = probe.schema()?.len();
                let (lookup, prebuilt) = match spine {
                    Some(_) => (self.outer_probe_lookup(probe, probe_key, None, st)?, None),
                    None => {
                        let build_rows = self.exec_node(build, st)?;
                        let keys: Vec<Value> =
                            build_rows.rows.iter().map(|r| r[bk].clone()).collect();
                        let summary = JoinSummary::build(keys.iter(), self.cfg.join_summary);
                        st.report.join_summary_bytes += summary.serialized_bytes() as u64;
                        let summary_opt = self.cfg.enable_join_pruning.then_some(&summary);
                        let lookup = self.outer_probe_lookup(probe, probe_key, summary_opt, st)?;
                        (lookup, Some(build_rows))
                    }
                };
                {
                    let mut mat_sink = |r: Vec<Value>, _: Option<PartitionId>| out.push(r);
                    let (row_sink, spine_parts): (RowSink<'_>, SpineParts<'_>) = match spine {
                        Some(sp) => (&mut *sp.f, Some((sp.spec, sp.boundary))),
                        None => (&mut mat_sink, None),
                    };
                    // Preserved rows keep their source partition — the
                    // build side is the spine of an OuterJoinBuildSide
                    // top-k, so dropping the pid here used to abort §8.2
                    // recording for every outer-join shape.
                    let mut join_one = |row: Vec<Value>, pid: Option<PartitionId>| {
                        let key = &row[bk];
                        // NULL build keys are never indexed, so a NULL key
                        // falls straight to the preserved (null-padded) arm.
                        match lookup.matches(key) {
                            Some(matches) => {
                                for &pi in matches {
                                    let mut joined = row.clone();
                                    joined.extend(lookup.rows()[pi].iter().cloned());
                                    row_sink(joined, pid);
                                }
                            }
                            None => {
                                let mut joined = row;
                                joined.extend(std::iter::repeat_n(Value::Null, probe_width));
                                row_sink(joined, pid);
                            }
                        }
                    };
                    match (spine_parts, prebuilt) {
                        (Some((spec, boundary)), _) => {
                            // Figure 7c: the build side streams through the
                            // spine so boundary pruning applies to it.
                            self.stream_spine_node(build, spec, boundary, st, &mut join_one)?;
                        }
                        (None, Some(build_rows)) => {
                            for r in build_rows.rows {
                                join_one(r, None);
                            }
                        }
                        // PANIC-OK: the planner prebuilds every non-spine side.
                        (None, None) => unreachable!("non-spine path prebuilds"),
                    }
                }
                Ok(RowSet {
                    schema: out_schema,
                    rows: out,
                })
            }
        }
    }

    /// Compile a join side that is a Filter*/Project* chain over a scan:
    /// apply §6 join pruning to its scan set and, when the side is the
    /// top-k spine target, install the Figure-7b machinery (scan-set
    /// ordering, boundary seeding, snapshot-version pinning for §8.2
    /// recording). Returns `None` for non-chain shapes, having touched
    /// nothing.
    fn prepare_side_scan(
        &self,
        plan: &Plan,
        summary: Option<&JoinSummary>,
        key_column: &str,
        topk: Option<(&TopKSpec, &Arc<Boundary>)>,
        st: &mut RunState,
    ) -> Result<Option<SideScan>> {
        let Some((chain, table, predicate)) = split_chain(plan) else {
            return Ok(None);
        };
        let mut scan = self.prepare_scan(table, predicate, st)?;
        if let Some(summary) = summary {
            if let Ok(key_idx) = scan.schema.index_of(key_column) {
                let metas: Vec<PartitionMeta> =
                    scan.table.metadata().into_iter().cloned().collect();
                let res = prune_probe_side(summary, &scan.scan_set, &metas, key_idx);
                st.report.pruning.pruned_by_join += res.pruned as u64;
                scan.scan_set = res.scan_set;
            }
        }
        // Figure 7b: when this side is the top-k spine target, install
        // the boundary hook, order the scan set, and seed the boundary.
        let mut order_col_hook = None;
        if let Some((spec, boundary)) = topk {
            if scan.table_name == spec.target_table {
                if let Ok(order_col) = scan.schema.index_of(&spec.order_column) {
                    let metas: Vec<PartitionMeta> =
                        scan.table.metadata().into_iter().cloned().collect();
                    order_scan_set(
                        &mut scan.scan_set,
                        &metas,
                        order_col,
                        spec.desc,
                        self.cfg.topk_order,
                    );
                    if self.cfg.topk_init_boundary {
                        if let Some(init) = initial_boundary(
                            &scan.scan_set,
                            &metas,
                            order_col,
                            spec.k + spec.offset,
                            spec.desc,
                        ) {
                            boundary.tighten(&init);
                        }
                    }
                    // Top-k cache recording through a join: the spine
                    // target is this side's scan, so the snapshot version
                    // the recorded partitions refer to pins here (without
                    // it, join-shape recordings could never complete).
                    if let Some(cr) = &mut st.cache {
                        if cr.table == scan.table_name {
                            if let Some(rec) = &mut cr.record {
                                if rec.is_topk() {
                                    rec.snapshot_version = Some(scan.table.version());
                                }
                            }
                        }
                    }
                    order_col_hook = Some(order_col);
                }
            }
        }
        let chain = bind_chain(&chain, &scan.schema)?;
        Ok(Some(SideScan {
            scan,
            chain,
            order_col: order_col_hook,
        }))
    }

    /// Execute a probe side (Filter*/Project* chain over a scan) with
    /// join pruning applied to its scan set, streaming rows into `sink`
    /// with their source partition. Falls back to materialized execution
    /// (no provenance) for other shapes.
    fn exec_side_with_pruning(
        &self,
        plan: &Plan,
        summary: Option<&JoinSummary>,
        key_column: &str,
        topk: Option<(&TopKSpec, &Arc<Boundary>)>,
        st: &mut RunState,
        sink: &mut dyn FnMut(Vec<Value>, Option<PartitionId>),
    ) -> Result<()> {
        if let Some(side) = self.prepare_side_scan(plan, summary, key_column, topk, st)? {
            let boundary_hook = topk.and_then(|(_, b)| side.order_col.map(|c| (b, c)));
            let stats = self.stream_chain_rows(
                &side.scan,
                st.lane,
                boundary_hook,
                &side.chain,
                &mut |r, pid| sink(r, Some(pid)),
            );
            merge_side_stats(&mut st.report, &stats, side.order_col.is_some());
            return Ok(());
        }
        let rows = self.exec_node(plan, st)?;
        for r in rows.rows {
            sink(r, None);
        }
        Ok(())
    }

    /// Batch-native bulk load of a join side into a [`JoinBuild`]: when
    /// `plan` is a Filter*/Project* chain over a scan (and the batch-native
    /// path is on), collect its refined batches in scan-set order and push
    /// rows + keys column-major. Returns `None` when the side needs the
    /// generic row fallback.
    fn try_batch_join_side(
        &self,
        plan: &Plan,
        key_column: &str,
        summary: Option<&JoinSummary>,
        st: &mut RunState,
    ) -> Result<Option<JoinBuild>> {
        if !self.cfg.batch_native {
            return Ok(None);
        }
        let Some(side) = self.prepare_side_scan(plan, summary, key_column, None, st)? else {
            return Ok(None);
        };
        let key_out = plan.schema()?.index_of(key_column)?;
        let mut jb = JoinBuild::new();
        let (stats, batches) = self.collect_chain_batches(&side.scan, st.lane, &side.chain, None);
        for b in &batches {
            jb.push_batch(b, &side.chain, key_out);
        }
        merge_side_stats(&mut st.report, &stats, false);
        Ok(Some(jb))
    }

    /// Load the outer join's probe (lookup) side into a [`JoinBuild`]:
    /// batch-native bulk load when the side is a chain over a scan, row
    /// streaming otherwise.
    fn outer_probe_lookup(
        &self,
        probe: &Plan,
        probe_key: &str,
        summary: Option<&JoinSummary>,
        st: &mut RunState,
    ) -> Result<JoinBuild> {
        if let Some(jb) = self.try_batch_join_side(probe, probe_key, summary, st)? {
            return Ok(jb);
        }
        let probe_schema = probe.schema()?;
        let pk = probe_schema.index_of(probe_key)?;
        let mut jb = JoinBuild::new();
        self.exec_side_with_pruning(probe, summary, probe_key, None, st, &mut |r, _| {
            let key = r[pk].clone();
            jb.push_row(r, key);
        })?;
        Ok(jb)
    }

    /// Stream a scan's *batches* — refined by `chain`'s filters but not
    /// materialized — into a driver-side sequential sink. The batch-native
    /// counterpart of [`Executor::stream_chain_rows`]: identical pooling,
    /// boundary, and arrival-order semantics, but rows stay column-major
    /// until the consumer (the join probe) decides what to materialize.
    fn stream_chain_batches(
        &self,
        scan: &CompiledScan,
        lane: QueryId,
        boundary: Option<(&Arc<Boundary>, usize)>,
        chain: &BatchChain,
        sink: &mut dyn FnMut(Batch),
    ) -> ScanRunStats {
        if let Some(pool) = &self.pool {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(pool.worker_count() * 4);
            let chain = Arc::new(chain.clone());
            let ticket: ScanTicket = pool.submit(
                lane,
                ScanJobSpec {
                    scan: scan.clone(),
                    io: self.io.clone(),
                    io_cost: self.cfg.io_cost,
                    boundary: boundary.map(|(b, col)| (Arc::clone(b), col)),
                    runtime_pruner: self.runtime_pruner_for(scan),
                    morsel_partitions: self.cfg.morsel_partitions,
                    prefetch_depth: self.cfg.prefetch_depth,
                    batch_rows: self.cfg.batch_rows,
                    sink: Box::new(move |_, batch| {
                        let mut sel = batch.sel.clone();
                        chain.refine(&batch.part, &mut sel);
                        if !sel.is_empty() {
                            let _ = tx.send(Batch {
                                part: batch.part,
                                sel,
                            });
                        }
                    }),
                    stop: Box::new(|| false),
                    on_morsel_done: None,
                },
            );
            // The job (and with it the sender) drops when its last morsel
            // finishes, ending this loop.
            for batch in rx {
                sink(batch);
            }
            return ticket.wait();
        }
        let runtime_pruner = self.runtime_pruner_for(scan).map(Mutex::new);
        let hooks = ScanHooks {
            boundary,
            runtime_pruner: runtime_pruner.as_ref(),
            prefetch_depth: self.cfg.prefetch_depth,
            batch_rows: self.cfg.batch_rows,
        };
        stream_scan(scan, &self.io, &self.cfg.io_cost, &hooks, |batch| {
            let mut sel = batch.sel.clone();
            chain.refine(&batch.part, &mut sel);
            if !sel.is_empty() {
                sink(Batch {
                    part: batch.part,
                    sel,
                });
            }
            ControlFlow::Continue(())
        })
    }

    /// Run a scan to completion and return its refined batches in exact
    /// scan-set order — the batch-native analogue of
    /// [`Executor::run_pooled_scan`]'s ordered row reassembly. Pooled
    /// workers refine batches morsel-locally and park them in per-morsel
    /// slots, so the returned order (and with it every order-sensitive
    /// consumer: float accumulation, join-summary construction) is
    /// byte-identical to the sequential scan no matter how morsels
    /// interleave. `survivors`, when armed, records partitions that
    /// emitted at least one scan-predicate-selected row *before* the chain
    /// refines (the same contract as `exec_scan`).
    fn collect_chain_batches(
        &self,
        scan: &CompiledScan,
        lane: QueryId,
        chain: &BatchChain,
        survivors: Option<Arc<Mutex<HashSet<PartitionId>>>>,
    ) -> (ScanRunStats, Vec<Batch>) {
        if let Some(pool) = &self.pool {
            let morsels = scan
                .scan_set
                .len()
                .div_ceil(self.cfg.morsel_partitions.max(1));
            let slots: Arc<Vec<Mutex<Vec<Batch>>>> =
                Arc::new((0..morsels).map(|_| Mutex::new(Vec::new())).collect());
            let sink_slots = Arc::clone(&slots);
            let chain = chain.clone();
            let sink: Box<crate::pool::PartitionSink> = Box::new(move |mi, batch| {
                if !batch.is_empty() {
                    if let Some(s) = &survivors {
                        s.lock().insert(batch.part.meta.id);
                    }
                }
                let mut sel = batch.sel.clone();
                chain.refine(&batch.part, &mut sel);
                if !sel.is_empty() {
                    sink_slots[mi].lock().push(Batch {
                        part: batch.part,
                        sel,
                    });
                }
            });
            let stats = pool
                .submit(
                    lane,
                    ScanJobSpec {
                        scan: scan.clone(),
                        io: self.io.clone(),
                        io_cost: self.cfg.io_cost,
                        boundary: None,
                        runtime_pruner: self.runtime_pruner_for(scan),
                        morsel_partitions: self.cfg.morsel_partitions,
                        prefetch_depth: self.cfg.prefetch_depth,
                        batch_rows: self.cfg.batch_rows,
                        sink,
                        stop: Box::new(|| false),
                        on_morsel_done: None,
                    },
                )
                .wait();
            let batches = slots
                .iter()
                .flat_map(|slot| std::mem::take(&mut *slot.lock()))
                .collect();
            return (stats, batches);
        }
        let mut batches = Vec::new();
        let runtime_pruner = self.runtime_pruner_for(scan).map(Mutex::new);
        let hooks = ScanHooks {
            boundary: None,
            runtime_pruner: runtime_pruner.as_ref(),
            prefetch_depth: self.cfg.prefetch_depth,
            batch_rows: self.cfg.batch_rows,
        };
        let stats = stream_scan(scan, &self.io, &self.cfg.io_cost, &hooks, |batch| {
            if !batch.is_empty() {
                if let Some(s) = &survivors {
                    s.lock().insert(batch.part.meta.id);
                }
            }
            let mut sel = batch.sel.clone();
            chain.refine(&batch.part, &mut sel);
            if !sel.is_empty() {
                batches.push(Batch {
                    part: batch.part,
                    sel,
                });
            }
            ControlFlow::Continue(())
        });
        (stats, batches)
    }

    /// Batch-native GROUP BY over a Filter*/Project* chain: columns fold
    /// straight into typed per-group accumulators
    /// ([`crate::agg::fold_chunk_grouped`]) without ever materializing
    /// input rows. Returns `None` for non-chain inputs (the row path
    /// handles them).
    fn exec_batch_aggregate(
        &self,
        plan: &Plan,
        input: &Plan,
        group_by: &[String],
        aggs: &[AggFunc],
        st: &mut RunState,
    ) -> Result<Option<RowSet>> {
        let Some((chain, table, predicate)) = split_chain(input) else {
            return Ok(None);
        };
        let scan = self.prepare_scan(table, predicate, st)?;
        // Filter-shape cache recording, same contract as `exec_scan`:
        // remember every partition that emitted at least one selected row
        // and pin the snapshot version the recording refers to.
        let survivors = match &mut st.cache {
            Some(cr) if cr.table == table => match &mut cr.record {
                Some(rec) if !rec.is_topk() => {
                    rec.snapshot_version = Some(scan.table.version());
                    Some(Arc::clone(&rec.survivors))
                }
                _ => None,
            },
            _ => None,
        };
        let bound_chain = bind_chain(&chain, &scan.schema)?;
        let input_schema = input.schema()?;
        let mut agg = BatchAggregator::new(&bound_chain, &input_schema, group_by, aggs)?;
        let (stats, batches) = self.collect_chain_batches(&scan, st.lane, &bound_chain, survivors);
        for b in &batches {
            agg.update(b);
        }
        merge_side_stats(&mut st.report, &stats, false);
        Ok(Some(RowSet {
            schema: plan.schema()?,
            rows: agg.finish(),
        }))
    }

    // ---- top-k ----------------------------------------------------------

    fn exec_topk(&self, plan: &Plan, spec: &TopKSpec, st: &mut RunState) -> Result<RowSet> {
        let Plan::Limit { input, k, offset } = plan else {
            return self.exec_node(plan, st);
        };
        let Plan::Sort { input: below, .. } = input.as_ref() else {
            return self.exec_node(plan, st);
        };
        let n = (k + offset) as usize;
        st.report.topk_shape = Some(spec.shape);
        let boundary = Boundary::new(spec.desc);

        if spec.shape == TopKShape::AboveAggregation {
            return self.exec_topk_aggregation(below, spec, n, *offset as usize, &boundary, st);
        }

        let below_schema = below.schema()?;
        let order_idx = below_schema.index_of(&spec.order_column)?;
        // Heap payloads carry each row's source partition ("recording
        // partition information alongside each tuple in the top-k heap",
        // §8.2) so a cache recorder can read survivors' partitions off the
        // final heap.
        let heap = Mutex::new(TopKHeap::new(n, spec.desc, Arc::clone(&boundary)));
        let recording = st
            .cache
            .as_ref()
            .and_then(|c| c.record.as_ref())
            .is_some_and(CacheRecorder::is_topk);
        // Ties-or-better filter against a bound: a row that compares worse
        // can never equal the final boundary value (bounds only tighten).
        let desc = spec.desc;
        let ties_or_better = move |v: &Value, b: &Value| {
            let ord = v.total_ord_cmp(b);
            if desc {
                ord != std::cmp::Ordering::Less
            } else {
                ord != std::cmp::Ordering::Greater
            }
        };
        // Exact boundary-tie tracking: a row equal to the final k-th value
        // may be rejected or evicted by the heap (first-seen ties win) yet
        // the engine could draw the boundary row from its partition on a
        // replay — log such candidates, compacting as the bound tightens.
        let mut tie_log: Vec<(Value, PartitionId)> = Vec::new();
        let tie_cap = 4 * n.max(16) + 64;
        let mut sink = |row: Vec<Value>, pid: Option<PartitionId>| {
            let key = row[order_idx].clone();
            if recording && !key.is_null() {
                if let Some(pid) = pid {
                    let keep = boundary.get().is_none_or(|b| ties_or_better(&key, &b));
                    if keep {
                        tie_log.push((key.clone(), pid));
                        if tie_log.len() > tie_cap {
                            if let Some(b) = boundary.get() {
                                tie_log.retain(|(v, _)| ties_or_better(v, &b));
                            }
                        }
                    }
                }
            }
            heap.lock().insert(key, (row, pid));
        };
        self.stream_spine_node(below, spec, &boundary, st, &mut sink)?;

        let survivors = heap.into_inner().into_sorted();
        if recording {
            // The k-th value only bounds the result when the heap actually
            // filled; a short heap already holds every qualifying row.
            let bound = (n > 0 && survivors.len() == n)
                .then(|| survivors.last().map(|(v, _)| v.clone()))
                .flatten();
            let mut pids: Vec<Option<PartitionId>> =
                survivors.iter().map(|(_, (_, pid))| *pid).collect();
            if let Some(b) = &bound {
                pids.extend(
                    tie_log
                        .iter()
                        .filter(|(v, _)| v.total_ord_cmp(b) == std::cmp::Ordering::Equal)
                        .map(|(_, pid)| Some(*pid)),
                );
            }
            if let Some(rec) = st.cache.as_mut().and_then(|c| c.record.as_mut()) {
                rec.topk = Some(pids);
            }
        }
        let rows: Vec<Vec<Value>> = survivors
            .into_iter()
            .map(|(_, (r, _))| r)
            .skip(*offset as usize)
            .collect();
        Ok(RowSet {
            schema: below_schema,
            rows,
        })
    }

    /// Figure 7d: TopK over GROUP BY with the ORDER BY column among the
    /// grouping keys. The aggregation filters groups through a distinct-key
    /// top-k which shares the scan's pruning boundary.
    fn exec_topk_aggregation(
        &self,
        agg_plan: &Plan,
        spec: &TopKSpec,
        n: usize,
        offset: usize,
        boundary: &Arc<Boundary>,
        st: &mut RunState,
    ) -> Result<RowSet> {
        let Plan::Aggregate {
            input,
            group_by,
            aggs,
        } = agg_plan
        else {
            // Shape said aggregation but the node is not: fall back on an
            // isolated state (no limit-override leakage) that keeps this
            // query's pool lane, then merge its pruning counters back.
            let mut st2 = RunState {
                lane: st.lane,
                ..RunState::default()
            };
            let r = self.exec_node(agg_plan, &mut st2)?;
            let p = &mut st.report.pruning;
            let p2 = &st2.report.pruning;
            p.partitions_total += p2.partitions_total;
            p.pruned_by_filter += p2.pruned_by_filter;
            p.pruned_by_limit += p2.pruned_by_limit;
            p.pruned_by_join += p2.pruned_by_join;
            p.pruned_by_topk += p2.pruned_by_topk;
            p.fully_matching += p2.fully_matching;
            st.report.scan_stats.merge(&st2.report.scan_stats);
            return Ok(r);
        };
        let input_schema = input.schema()?;
        let key_pos = group_by
            .iter()
            .position(|g| *g == spec.order_column)
            .ok_or_else(|| Error::Invalid("order column not in group by".into()))?;
        let key_idx = input_schema.index_of(&group_by[key_pos])?;
        let mut topk_keys = DistinctKeyTopK::new(n, spec.desc, Arc::clone(boundary));
        let mut staged: Vec<Vec<Value>> = Vec::new();
        {
            let mut sink = |row: Vec<Value>, _: Option<PartitionId>| {
                if topk_keys.offer(&row[key_idx]) {
                    staged.push(row);
                }
            };
            self.stream_spine_node(input, spec, boundary, st, &mut sink)?;
        }
        let grouped = aggregate_rows(&input_schema, staged, group_by, aggs, None)?;
        let schema = agg_plan.schema()?;
        let order_in_out = schema.index_of(&spec.order_column)?;
        let mut rows = grouped;
        rows.sort_by(|a, b| {
            let ord = a[order_in_out].total_ord_cmp(&b[order_in_out]);
            if spec.desc {
                ord.reverse()
            } else {
                ord
            }
        });
        rows.truncate(n);
        let rows = rows.into_iter().skip(offset).collect();
        Ok(RowSet { schema, rows })
    }

    /// Stream the top-k spine: rows flow partition-at-a-time from the
    /// target scan up through filters/projections/joins into `sink`, so
    /// boundary updates from the heap immediately affect later partitions.
    /// Rows off the target scan carry their source partition (predicate-
    /// cache provenance); rows from joins or materialized fallbacks have
    /// none.
    fn stream_spine_node(
        &self,
        plan: &Plan,
        spec: &TopKSpec,
        boundary: &Arc<Boundary>,
        st: &mut RunState,
        sink: &mut dyn FnMut(Vec<Value>, Option<PartitionId>),
    ) -> Result<()> {
        // Vectorized fast path: a Filter*/Project* chain directly over the
        // target scan compiles into a [`BatchChain`] and streams column-
        // major — filters run as selection-vector kernels next to the scan
        // (worker-side on pooled runs) and rows materialize only at the
        // heap insert. Rows keep per-batch partition provenance, so §8.2
        // recording is unchanged.
        if let Some((chain, table, predicate)) = split_chain(plan) {
            if table == spec.target_table {
                return self
                    .stream_spine_target(&chain, table, predicate, spec, boundary, st, sink);
            }
        }
        match plan {
            Plan::Scan { .. } => {
                let rows = self.exec_node(plan, st)?;
                for r in rows.rows {
                    sink(r, None);
                }
                Ok(())
            }
            Plan::Filter { input, predicate } => {
                let schema = input.schema()?;
                let bound = predicate.bind(&schema)?;
                let mut wrapped = |row: Vec<Value>, pid: Option<PartitionId>| {
                    if snowprune_expr::eval_predicate(&bound, &row).qualifies() {
                        sink(row, pid);
                    }
                };
                self.stream_spine_node(input, spec, boundary, st, &mut wrapped)
            }
            Plan::Project { input, columns } => {
                let schema = input.schema()?;
                let idxs: Vec<usize> = columns
                    .iter()
                    .map(|c| schema.index_of(c))
                    .collect::<Result<_>>()?;
                let mut wrapped = |row: Vec<Value>, pid: Option<PartitionId>| {
                    sink(idxs.iter().map(|&i| row[i].clone()).collect(), pid);
                };
                self.stream_spine_node(input, spec, boundary, st, &mut wrapped)
            }
            Plan::Join { .. } => {
                let mut spine_sink = SpineSink {
                    spec,
                    boundary,
                    f: sink,
                };
                self.exec_join(plan, st, Some(&mut spine_sink))?;
                Ok(())
            }
            other => {
                let rows = self.exec_node(other, st)?;
                for r in rows.rows {
                    sink(r, None);
                }
                Ok(())
            }
        }
    }

    /// The spine's target scan plus its Filter*/Project* chain: install
    /// the boundary hook, order the scan set, seed the boundary, pin the
    /// cache-recording snapshot version, and stream the chain's output
    /// rows (with source-partition provenance) into `sink`.
    #[allow(clippy::too_many_arguments)]
    fn stream_spine_target(
        &self,
        chain: &[ChainOp],
        table: &str,
        predicate: Option<&snowprune_expr::Expr>,
        spec: &TopKSpec,
        boundary: &Arc<Boundary>,
        st: &mut RunState,
        sink: &mut dyn FnMut(Vec<Value>, Option<PartitionId>),
    ) -> Result<()> {
        let mut scan = self.prepare_scan(table, predicate, st)?;
        let order_col = scan.schema.index_of(&spec.order_column)?;
        let metas: Vec<PartitionMeta> = scan.table.metadata().into_iter().cloned().collect();
        order_scan_set(
            &mut scan.scan_set,
            &metas,
            order_col,
            spec.desc,
            self.cfg.topk_order,
        );
        if self.cfg.topk_init_boundary {
            if let Some(init) = initial_boundary(
                &scan.scan_set,
                &metas,
                order_col,
                spec.k + spec.offset,
                spec.desc,
            ) {
                boundary.tighten(&init);
            }
        }
        // Top-k cache recording: pin the snapshot version the recorded
        // partitions refer to.
        if let Some(cr) = &mut st.cache {
            if cr.table == table {
                if let Some(rec) = &mut cr.record {
                    if rec.is_topk() {
                        rec.snapshot_version = Some(scan.table.version());
                    }
                }
            }
        }
        let bound_chain = bind_chain(chain, &scan.schema)?;
        let stats = self.stream_chain_rows(
            &scan,
            st.lane,
            Some((boundary, order_col)),
            &bound_chain,
            &mut |r, pid| sink(r, Some(pid)),
        );
        let topk_pruned = stats.skipped_by_boundary + stats.cancelled_by_boundary;
        st.report.topk_stats.partitions_considered += stats.considered;
        st.report.topk_stats.partitions_skipped += topk_pruned;
        st.report.pruning.pruned_by_topk += topk_pruned;
        st.report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
        st.report.scan_stats.merge(&stats);
        Ok(())
    }
}

/// Accounting for deterministic pooled-LIMIT early stop: rows produced by
/// the contiguous *completed* morsel prefix. Once that prefix covers the
/// LIMIT's `need`, later morsels can stop — every row of the final
/// (ordered, truncated) result is already pinned down, so early
/// termination cannot change the result, only how much extra I/O the
/// in-flight morsels perform. The prefix cursor advances once per
/// completed morsel (under a tiny mutex), keeping the hot per-partition
/// stop check a single atomic load instead of an O(morsels) walk.
struct LimitTracker {
    /// Post-chain row count per morsel (atomic so readers can observe
    /// while workers write).
    rows_per_morsel: Vec<AtomicUsize>,
    /// Morsel-complete flags.
    done: Vec<AtomicBool>,
    /// (next morsel index to absorb, rows absorbed so far).
    cursor: Mutex<(usize, usize)>,
    prefix_rows: AtomicUsize,
}

impl LimitTracker {
    fn new(morsels: usize) -> Self {
        LimitTracker {
            rows_per_morsel: (0..morsels).map(|_| AtomicUsize::new(0)).collect(),
            done: (0..morsels).map(|_| AtomicBool::new(false)).collect(),
            cursor: Mutex::new((0, 0)),
            prefix_rows: AtomicUsize::new(0),
        }
    }

    /// Mark morsel `mi` finished and absorb any newly-contiguous prefix.
    fn complete(&self, mi: usize) {
        self.done[mi].store(true, Ordering::Release);
        let mut state = self.cursor.lock();
        let (mut cursor, mut total) = *state;
        while cursor < self.done.len() && self.done[cursor].load(Ordering::Acquire) {
            total += self.rows_per_morsel[cursor].load(Ordering::Acquire);
            cursor += 1;
        }
        *state = (cursor, total);
        self.prefix_rows.store(total, Ordering::Release);
    }

    fn prefix_rows(&self) -> usize {
        self.prefix_rows.load(Ordering::Acquire)
    }
}

/// A join side compiled by [`Executor::prepare_side_scan`]: the (join- and
/// cache-restricted) scan, the bound filter/project chain above it, and
/// the order column when the Figure-7b boundary hook installed.
struct SideScan {
    scan: CompiledScan,
    chain: BatchChain,
    order_col: Option<usize>,
}

/// Merge one join-side scan's counters into the query report; `hooked`
/// adds the top-k boundary tallies when the Figure-7b hook was installed.
fn merge_side_stats(report: &mut ExecReport, stats: &ScanRunStats, hooked: bool) {
    if hooked {
        let topk_pruned = stats.skipped_by_boundary + stats.cancelled_by_boundary;
        report.topk_stats.partitions_considered += stats.considered;
        report.topk_stats.partitions_skipped += topk_pruned;
        report.pruning.pruned_by_topk += topk_pruned;
    }
    report.pruning.pruned_by_filter += stats.cancelled_by_runtime_filter;
    report.scan_stats.merge(stats);
}

/// A row consumer on the streaming path, with optional source-partition
/// provenance (None for joined or materialized rows).
type RowSink<'a> = &'a mut dyn FnMut(Vec<Value>, Option<PartitionId>);

/// Top-k spec and boundary carried alongside a spine sink.
type SpineParts<'a> = Option<(&'a TopKSpec, &'a Arc<Boundary>)>;

/// A streaming sink handed through joins on the top-k spine.
struct SpineSink<'a> {
    spec: &'a TopKSpec,
    boundary: &'a Arc<Boundary>,
    f: &'a mut dyn FnMut(Vec<Value>, Option<PartitionId>),
}

// ---- helpers -------------------------------------------------------------

/// Fresh predicate cache per the config knob (also used by
/// [`crate::Session`] to build its shared cache).
pub(crate) fn new_cache(cfg: &ExecConfig) -> Option<Arc<Mutex<PredicateCache>>> {
    cfg.predicate_cache.then(|| {
        Arc::new(Mutex::new(PredicateCache::new(
            cfg.predicate_cache_capacity,
        )))
    })
}

/// Chain operators (bottom-up application order).
enum ChainOp {
    Filter(snowprune_expr::Expr),
    Project(Vec<String>),
}

/// Decompose a Filter*/Project* chain over a single scan. Returns ops in
/// bottom-up order plus the scan's table and predicate.
fn split_chain(plan: &Plan) -> Option<(Vec<ChainOp>, &str, Option<&snowprune_expr::Expr>)> {
    match plan {
        Plan::Scan {
            table, predicate, ..
        } => Some((Vec::new(), table.as_str(), predicate.as_ref())),
        Plan::Filter { input, predicate } => {
            let (mut ops, t, p) = split_chain(input)?;
            ops.push(ChainOp::Filter(predicate.clone()));
            Some((ops, t, p))
        }
        Plan::Project { input, columns } => {
            let (mut ops, t, p) = split_chain(input)?;
            ops.push(ChainOp::Project(columns.clone()));
            Some((ops, t, p))
        }
        _ => None,
    }
}

/// Compile a chain into a [`BatchChain`], binding each filter against the
/// schema in force where it appears and composing projections into one
/// column map.
fn bind_chain(ops: &[ChainOp], scan_schema: &Schema) -> Result<BatchChain> {
    let mut schema = scan_schema.clone();
    let mut chain = BatchChain::identity(schema.len());
    for op in ops {
        match op {
            ChainOp::Filter(e) => chain.push_filter(&e.bind(&schema)?),
            ChainOp::Project(cols) => {
                let idxs: Vec<usize> = cols
                    .iter()
                    .map(|c| schema.index_of(c))
                    .collect::<Result<_>>()?;
                let fields = idxs
                    .iter()
                    .map(|&i| schema.fields()[i].clone())
                    .collect::<Vec<_>>();
                schema = Schema::new(fields);
                chain.push_project(&idxs);
            }
        }
    }
    Ok(chain)
}

fn sort_rows(input: RowSet, keys: &[SortKey]) -> Result<RowSet> {
    let bound: Vec<(snowprune_expr::Expr, bool)> = keys
        .iter()
        .map(|k| Ok((k.expr.bind(&input.schema)?, k.desc)))
        .collect::<Result<_>>()?;
    let mut rows = input.rows;
    rows.sort_by(|a, b| {
        for (expr, desc) in &bound {
            let va = snowprune_expr::eval_value(expr, a);
            let vb = snowprune_expr::eval_value(expr, b);
            let ord = va.total_ord_cmp(&vb);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(RowSet {
        schema: input.schema,
        rows,
    })
}

/// How many `Scan` nodes of `table` appear in the plan. Cache admission of
/// join shapes requires exactly one (self-joins scan the target twice, and
/// restricting both scans to one side's contributors would be unsound).
fn count_scans_of(plan: &Plan, table: &str) -> usize {
    let mut n = 0;
    plan.visit(&mut |p| {
        if let Plan::Scan { table: t, .. } = p {
            if t == table {
                n += 1;
            }
        }
    });
    n
}

fn has_join(plan: &Plan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| {
        if matches!(p, Plan::Join { .. }) {
            found = true;
        }
    });
    found
}

fn has_predicate(plan: &Plan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| match p {
        Plan::Filter { .. } => found = true,
        Plan::Scan {
            predicate: Some(_), ..
        } => found = true,
        _ => {}
    });
    found
}

/// Convenience: snapshot a table out of a catalog (test helper).
pub fn snapshot_table(catalog: &Catalog, name: &str) -> Result<Arc<Table>> {
    Ok(Arc::new(catalog.get(name)?.read().clone()))
}
